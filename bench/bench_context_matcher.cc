// Experiment E4 (DESIGN.md): the context matcher's contribution.
//
// The context matcher "builds a set of terms from neighboring elements,
// and tries to capture matches when neighboring-element sets are similar"
// (paper Sec. 2). Its signal is structural context, so it should matter
// most when element names alone are ambiguous: many corpus schemas share
// generic attribute names ("name", "date", "id") and only the
// neighborhood disambiguates. This bench compares ensembles with and
// without the context matcher on fragment queries (where the query itself
// has context) and reports the soft-vs-hard alignment trade-off.

#include <cstdio>

#include "bench_common.h"
#include "match/context_matcher.h"
#include "match/name_matcher.h"
#include "util/timer.h"

namespace schemr {
namespace {

MatcherEnsemble NameOnly() {
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<NameMatcher>(), 1.0);
  return ensemble;
}

MatcherEnsemble NamePlusContext(bool soft) {
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<NameMatcher>(), 1.0);
  ContextMatcherOptions options;
  options.soft_alignment = soft;
  ensemble.AddMatcher(std::make_unique<ContextMatcher>(options), 1.0);
  return ensemble;
}

int Run() {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 1500;
  corpus_options.seed = 83;
  // Extra generic attributes make bare names ambiguous.
  corpus_options.generic_attributes_per_entity = 2.0;
  auto fixture = CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed\n");
    return 1;
  }

  // Fragment-bearing workload: the query graph carries neighborhoods.
  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 44;
  workload_options.seed = 29;
  workload_options.fragment_prob = 1.0;
  workload_options.keywords_per_query = 2;  // weak keywords, strong fragment
  auto workload = GenerateQueryWorkload(workload_options);

  std::printf("\n=== E4 context matcher (corpus=%zu, fragment queries) ===\n",
              fixture->corpus.size());
  std::printf("  %-28s %7s %7s %7s %10s\n", "ensemble", "P@5", "MRR",
              "nDCG10", "ms/query");

  struct Config {
    const char* label;
    MatcherEnsemble ensemble;
  };
  Config configs[] = {
      {"name only", NameOnly()},
      {"name + context (soft)", NamePlusContext(true)},
      {"name + context (exact)", NamePlusContext(false)},
  };
  for (Config& config : configs) {
    SearchEngine engine(fixture->repository.get(), &fixture->index(),
                        std::move(config.ensemble));
    Timer timer;
    QualitySummary q = *EvaluateEngine(engine, *fixture, workload);
    double ms_per_query =
        timer.ElapsedMillis() / static_cast<double>(q.num_queries);
    std::printf("  %-28s %7.3f %7.3f %7.3f %10.1f\n", config.label,
                q.precision_at_5, q.mrr, q.ndcg_at_10, ms_per_query);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
