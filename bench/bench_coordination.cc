// Experiment E7 (DESIGN.md): the coordination factor.
//
// "A coordination factor, defined as the number of terms matched divided
// by the number of terms in the query, is multiplied into the coarse-grain
// score in order to reward results which match the most terms in the
// original query." (paper Sec. 2)
//
// Measures phase-1 ranking quality with the factor on vs off, sweeping
// query length -- the factor matters more the more terms a query has.
// Also sweeps the proximity boost (the index stores proximity data; the
// paper leaves its use implicit).

#include <cstdio>

#include "bench_common.h"
#include "core/candidate_extractor.h"
#include "core/query_parser.h"
#include "eval/ir_metrics.h"

namespace schemr {
namespace {

QualitySummary EvaluatePhase1(const CorpusFixture& fixture,
                              const std::vector<WorkloadQuery>& workload,
                              const CandidateExtractorOptions& options) {
  CandidateExtractor extractor(&fixture.index());
  std::vector<double> p5, p10, r10, mrr, ap, ndcg;
  for (const WorkloadQuery& wq : workload) {
    auto rel_it = fixture.relevance.find(wq.concept_id);
    if (rel_it == fixture.relevance.end() || rel_it->second.empty()) continue;
    RelevantSet relevant(rel_it->second.begin(), rel_it->second.end());
    auto query = ParseQuery(wq.keywords);
    if (!query.ok()) continue;
    std::vector<uint64_t> ranking;
    for (const Candidate& c : extractor.Extract(*query, options)) {
      ranking.push_back(c.schema_id);
    }
    p5.push_back(PrecisionAtK(ranking, relevant, 5));
    p10.push_back(PrecisionAtK(ranking, relevant, 10));
    r10.push_back(RecallAtK(ranking, relevant, 10));
    mrr.push_back(ReciprocalRank(ranking, relevant));
    ap.push_back(AveragePrecision(ranking, relevant));
    ndcg.push_back(NdcgAtK(ranking, relevant, 10));
  }
  QualitySummary s;
  s.precision_at_5 = Mean(p5);
  s.precision_at_10 = Mean(p10);
  s.recall_at_10 = Mean(r10);
  s.mrr = Mean(mrr);
  s.map = Mean(ap);
  s.ndcg_at_10 = Mean(ndcg);
  s.num_queries = p5.size();
  return s;
}

int Run() {
  const CorpusFixture& fixture = bench::SharedFixture(2000);

  std::printf("\n=== E7 coordination factor (corpus=%zu) ===\n",
              fixture.corpus.size());
  std::printf("  %-10s %-8s %7s %7s %7s %7s\n", "keywords", "coord", "P@5",
              "MRR", "MAP", "nDCG10");
  for (size_t num_keywords : {2ul, 4ul, 6ul}) {
    QueryWorkloadOptions workload_options;
    workload_options.num_queries = 44;
    workload_options.seed = 3;
    workload_options.keywords_per_query = num_keywords;
    auto workload = GenerateQueryWorkload(workload_options);
    for (bool coord : {true, false}) {
      CandidateExtractorOptions options;
      options.pool_size = 50;
      options.index_options.use_coordination_factor = coord;
      QualitySummary q = EvaluatePhase1(fixture, workload, options);
      std::printf("  %-10zu %-8s %7.3f %7.3f %7.3f %7.3f\n", num_keywords,
                  coord ? "on" : "off", q.precision_at_5, q.mrr, q.map,
                  q.ndcg_at_10);
    }
  }

  std::printf("\n  proximity boost sweep (4 keywords):\n");
  std::printf("  %-8s %7s %7s %7s\n", "boost", "P@5", "MRR", "nDCG10");
  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 44;
  workload_options.seed = 3;
  workload_options.keywords_per_query = 4;
  auto workload = GenerateQueryWorkload(workload_options);
  for (double boost : {0.0, 0.25, 0.5, 1.0}) {
    CandidateExtractorOptions options;
    options.index_options.proximity_boost = boost;
    QualitySummary q = EvaluatePhase1(fixture, workload, options);
    std::printf("  %-8.2f %7.3f %7.3f %7.3f\n", boost, q.precision_at_5,
                q.mrr, q.ndcg_at_10);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
