// Experiment E12 (DESIGN.md): visualization scalability -- "to ensure
// Schemr scales to very large schemas, we cap the displayed graph depth to
// 3".
//
// Measures view construction + layout + serialization time against schema
// size, with and without the depth cap, for both layouts and all three
// output formats. Expected shape: with the cap, cost is bounded by the
// visible node count regardless of total schema size; without it, cost
// grows with the schema.

#include <benchmark/benchmark.h>

#include "schema/schema.h"
#include "util/rng.h"
#include "viz/dot_writer.h"
#include "viz/graph_view.h"
#include "viz/graphml_writer.h"
#include "viz/layout.h"
#include "viz/summarizer.h"
#include "viz/svg_writer.h"

namespace schemr {
namespace {

/// A deep/wide synthetic schema: a tree of nested entities with
/// attributes, `total` elements overall.
Schema MakeLargeSchema(size_t total) {
  Schema schema("large");
  Rng rng(99);
  std::vector<ElementId> entities;
  entities.push_back(schema.AddEntity("root"));
  while (schema.size() < total) {
    ElementId parent = entities[rng.NextBelow(entities.size())];
    if (rng.NextBool(0.3)) {
      entities.push_back(
          schema.AddEntity("entity" + std::to_string(schema.size()), parent));
    } else {
      schema.AddAttribute("attr" + std::to_string(schema.size()), parent);
    }
  }
  return schema;
}

void BM_BuildViewCapped(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  GraphViewOptions options;
  options.max_depth = 3;  // the paper's cap
  for (auto _ : state) {
    SchemaGraphView view = BuildGraphView(schema, {}, options);
    benchmark::DoNotOptimize(view.nodes.size());
  }
  SchemaGraphView view = BuildGraphView(schema, {}, options);
  state.counters["visible_nodes"] = static_cast<double>(view.nodes.size());
  state.counters["schema_size"] = static_cast<double>(schema.size());
}
BENCHMARK(BM_BuildViewCapped)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_BuildViewUncapped(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  GraphViewOptions options;
  options.max_depth = 1000000;
  for (auto _ : state) {
    SchemaGraphView view = BuildGraphView(schema, {}, options);
    benchmark::DoNotOptimize(view.nodes.size());
  }
  state.counters["schema_size"] = static_cast<double>(schema.size());
}
BENCHMARK(BM_BuildViewUncapped)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_TreeLayout(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  GraphViewOptions options;
  options.max_depth = 1000000;
  SchemaGraphView base = BuildGraphView(schema, {}, options);
  for (auto _ : state) {
    SchemaGraphView view = base;
    ApplyTreeLayout(&view);
    benchmark::DoNotOptimize(view.nodes[0].x);
  }
}
BENCHMARK(BM_TreeLayout)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_RadialLayout(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  GraphViewOptions options;
  options.max_depth = 1000000;
  SchemaGraphView base = BuildGraphView(schema, {}, options);
  for (auto _ : state) {
    SchemaGraphView view = base;
    ApplyRadialLayout(&view);
    benchmark::DoNotOptimize(view.nodes[0].x);
  }
}
BENCHMARK(BM_RadialLayout)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_WriteGraphMl(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  SchemaGraphView view = BuildGraphView(schema);
  ApplyTreeLayout(&view);
  for (auto _ : state) {
    std::string out = WriteGraphMl(view);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_WriteGraphMl)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

void BM_WriteSvg(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  SchemaGraphView view = BuildGraphView(schema);
  ApplyTreeLayout(&view);
  for (auto _ : state) {
    std::string out = WriteSvg(view);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_WriteSvg)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_WriteDot(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  SchemaGraphView view = BuildGraphView(schema);
  for (auto _ : state) {
    std::string out = WriteDot(view);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_WriteDot)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Summarization (the paper's cited plan for very large schemas): cost of
// importance computation + top-k summary view versus schema size.
void BM_BuildSummaryView(benchmark::State& state) {
  Schema schema = MakeLargeSchema(static_cast<size_t>(state.range(0)));
  SummaryOptions options;
  options.max_entities = 8;
  for (auto _ : state) {
    SchemaGraphView view = BuildSummaryView(schema, {}, options);
    benchmark::DoNotOptimize(view.nodes.size());
  }
  state.counters["schema_size"] = static_cast<double>(schema.size());
}
BENCHMARK(BM_BuildSummaryView)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

// The full visualization request path on a capped view: what one GUI
// click costs (view + layout + GraphML).
void BM_FullVisualizationRequest(benchmark::State& state) {
  Schema schema = MakeLargeSchema(10000);
  GraphViewOptions options;
  options.max_depth = 3;
  for (auto _ : state) {
    SchemaGraphView view = BuildGraphView(schema, {}, options);
    ApplyTreeLayout(&view);
    std::string out = WriteGraphMl(view);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_FullVisualizationRequest)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
