// Experiment E3 (DESIGN.md): the name matcher on hard name variation.
//
// "We found this matcher to be particularly helpful for properly ranking
// schemas containing abbreviated terms, alternate grammatical forms, and
// delimiter characters not in the original query." (paper Sec. 2)
//
// This bench quantifies that sentence: ranking quality with the name
// matcher in vs out of the ensemble, across query sets that stress each
// variation class. Expected shape: on clean names the delta is small; on
// abbreviated/truncated names the name matcher recovers most of the loss.

#include <cstdio>

#include "bench_common.h"
#include "match/context_matcher.h"
#include "match/name_matcher.h"

namespace schemr {
namespace {

MatcherEnsemble WithoutNameMatcher() {
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<ContextMatcher>(), 1.0);
  return ensemble;
}

int Run() {
  struct QuerySpecFull {
    const char* label;
    double abbreviation_prob;
    double truncation_prob;
    double synonym_prob;
  };
  const QuerySpecFull specs[] = {
      {"clean keywords", 0.0, 0.0, 0.0},
      {"abbreviated keywords (p=0.4)", 0.4, 0.0, 0.0},
      {"ad-hoc truncations (p=0.4)", 0.0, 0.4, 0.0},
      {"synonym swaps (p=0.5)", 0.0, 0.0, 0.5},
      {"all three (p=0.3 each)", 0.3, 0.3, 0.3},
  };

  // Noisy corpus: schema element names themselves carry abbreviations and
  // style variation, as real repositories do.
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 2000;
  corpus_options.seed = 71;
  corpus_options.name_noise.abbreviation_prob = 0.3;
  auto fixture = CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed\n");
    return 1;
  }

  SearchEngine with_name(fixture->repository.get(), &fixture->index(),
                         MatcherEnsemble::PaperMinimal());
  SearchEngine without_name(fixture->repository.get(), &fixture->index(),
                            WithoutNameMatcher());

  std::printf("\n=== E3 name matcher vs name variation (corpus=%zu) ===\n",
              fixture->corpus.size());
  std::printf("  %-30s %12s %12s %9s\n", "query set", "MRR(with)",
              "MRR(without)", "delta");
  for (const QuerySpecFull& spec : specs) {
    QueryWorkloadOptions workload_options;
    workload_options.num_queries = 44;
    workload_options.seed = 13;
    workload_options.keyword_noise.abbreviation_prob =
        spec.abbreviation_prob;
    workload_options.keyword_noise.truncation_prob = spec.truncation_prob;
    workload_options.keyword_noise.synonym_prob = spec.synonym_prob;
    auto workload = GenerateQueryWorkload(workload_options);

    QualitySummary with = *EvaluateEngine(with_name, *fixture, workload);
    QualitySummary without =
        *EvaluateEngine(without_name, *fixture, workload);
    std::printf("  %-30s %12.3f %12.3f %+9.3f\n", spec.label, with.mrr,
                without.mrr, with.mrr - without.mrr);
  }

  // Micro-level: pairwise similarity of canonical names vs their hard
  // variants, name matcher in its banded and exhaustive (paper) modes.
  std::printf("\n  pairwise name similarities (banded / exhaustive):\n");
  NameMatcher banded;
  NameMatcherOptions exhaustive_options;
  exhaustive_options.exhaustive_ngrams = true;
  NameMatcher exhaustive(exhaustive_options);
  const std::pair<const char*, const char*> pairs[] = {
      {"patient", "pat"},          {"date_of_birth", "dob"},
      {"date_of_birth", "dateOfBirth"}, {"diagnosis", "diagnoses"},
      {"height", "ht"},            {"patient_name", "PatientName"},
      {"quantity", "qty"},         {"gender", "sex"},
      {"customer", "client"},      {"patient", "order"},
  };
  for (const auto& [a, b] : pairs) {
    std::printf("    %-16s vs %-16s  %.3f / %.3f\n", a, b,
                banded.NameSimilarity(a, b), exhaustive.NameSimilarity(a, b));
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
