// Parallel match pipeline experiments (E16, DESIGN.md §11): phase-2/3
// scoring speedup vs scoring_threads, score-bound pruning effectiveness,
// and the result-cache hit path vs the full pipeline.
//
// Expected shape: with a pool large enough to amortize the hand-off
// (>= a few hundred candidates), phase-2/3 wall time drops near-linearly
// up to the physical core count -- the candidates are independent and
// each lands in its own pre-sized slot, so no merge step serializes the
// tail. Pruning only pays when the bound tracks a spread-out coarse
// distribution (high coarse_blend); at the default blend the bound floor
// is 0.75 and pruning is a no-op by design. A cache hit skips all three
// phases and should answer in the time of a fingerprint + map lookup.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"
#include "core/query_parser.h"
#include "core/result_cache.h"
#include "core/search_engine.h"
#include "core/serving_corpus.h"

namespace schemr {
namespace {

ServingCorpus& SharedCorpus() {
  static ServingCorpus* corpus = [] {
    CorpusOptions options;
    options.num_schemas = 2000;
    options.seed = 20090629;
    auto fixture = CorpusFixture::Build(options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed: %s\n",
                   fixture.status().ToString().c_str());
      std::abort();
    }
    auto built = ServingCorpus::Create(std::move(fixture->repository));
    if (!built.ok()) {
      std::fprintf(stderr, "corpus build failed: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    return built->release();
  }();
  return *corpus;
}

const SearchEngine& SharedEngine() {
  static const SearchEngine* engine = new SearchEngine(&SharedCorpus());
  return *engine;
}

/// One full search, pool size x scoring threads. The speedup of interest
/// is phase2+phase3 (reported as a counter); total time includes the
/// serial phase-1 extraction.
void BM_ParallelScoring(benchmark::State& state) {
  const SearchEngine& engine = SharedEngine();
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngineOptions options;
  options.extraction.pool_size = static_cast<size_t>(state.range(0));
  options.scoring_threads = static_cast<size_t>(state.range(1));
  options.top_k = 10;

  double match_seconds = 0.0;
  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    SearchStats stats;
    SearchEngineOptions per_call = options;
    per_call.stats = &stats;
    auto results = engine.Search(*query, per_call);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
    match_seconds += stats.phase2_seconds + stats.phase3_seconds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["pool"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  // Summed per-worker CPU seconds across phases 2/3, per search. Constant
  // across thread counts = perfect work conservation; the wall-time
  // speedup shows up in the per-iteration time.
  state.counters["match_cpu_s"] = benchmark::Counter(
      match_seconds, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ParallelScoring)
    ->ArgsProduct({{100, 500}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Score-bound pruning at a coarse-heavy blend: range(0) is the blend in
/// percent, range(1) toggles pruning. The skip fraction is reported so
/// the table shows how much of the pool the bound discharges.
void BM_PruningEffect(benchmark::State& state) {
  const SearchEngine& engine = SharedEngine();
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngineOptions options;
  options.extraction.pool_size = 500;
  options.top_k = 10;
  options.coarse_blend = static_cast<double>(state.range(0)) / 100.0;
  options.enable_pruning = state.range(1) != 0;

  size_t skipped = 0;
  size_t pool_seen = 0;
  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    SearchStats stats;
    SearchEngineOptions per_call = options;
    per_call.stats = &stats;
    auto results = engine.Search(*query, per_call);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
    skipped += stats.candidates_skipped;
    pool_seen += options.extraction.pool_size;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["blend"] = static_cast<double>(state.range(0)) / 100.0;
  state.counters["pruned"] = static_cast<double>(state.range(1));
  state.counters["skip_frac"] =
      pool_seen > 0 ? static_cast<double>(skipped) / pool_seen : 0.0;
  state.SetLabel(options.enable_pruning ? "pruning on" : "pruning off");
}
BENCHMARK(BM_PruningEffect)
    ->ArgsProduct({{25, 90}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// The cache hit path against the full pipeline on the same query:
/// range(0) == 1 serves from the snapshot-keyed cache, 0 bypasses it.
void BM_ResultCachePath(benchmark::State& state) {
  static SearchEngine* engine = [] {
    auto* e = new SearchEngine(&SharedCorpus());
    e->EnableResultCache(64);
    return e;
  }();
  const auto& workload = bench::SharedWorkload(0.0);
  const bool cached = state.range(0) != 0;
  SearchEngineOptions options;
  options.extraction.pool_size = 100;
  options.top_k = 10;
  options.cache_bypass = !cached;

  // Warm the cache so the cached runs measure pure hits.
  auto warm = ParseQuery(workload[0].keywords);
  if (!engine->Search(*warm, options).ok()) {
    state.SkipWithError("warmup search failed");
    return;
  }

  size_t hits = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[0].keywords);
    SearchStats stats;
    SearchEngineOptions per_call = options;
    per_call.stats = &stats;
    auto results = engine->Search(*query, per_call);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
    if (stats.cache_hit) ++hits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["hit_frac"] =
      state.iterations() > 0
          ? static_cast<double>(hits) / state.iterations()
          : 0.0;
  state.SetLabel(cached ? "cache hit" : "cache bypass");
}
BENCHMARK(BM_ResultCachePath)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
