// Experiment E5 (DESIGN.md): matcher weighting -- uniform vs learned.
//
// "We combine the scores from each matcher with a weighting scheme, which
// is initially uniform. As Schemr is utilized in practice, we can record
// search histories to create a training set ... we may then determine an
// appropriate weighting scheme" (paper Sec. 2, citing Madhavan et al's
// logistic-regression meta-learner).
//
// Trains the logistic model on simulated search histories of increasing
// size and reports: (a) pair-classification accuracy vs the uniform-score
// threshold baseline, (b) the learned per-matcher weights, and (c)
// end-to-end retrieval quality with uniform, learned-weight, and
// logistic-combiner ensembles.

#include <cstdio>

#include "bench_common.h"
#include "corpus/search_history.h"
#include "util/timer.h"

namespace schemr {
namespace {

/// Uniform baseline: predict relevant iff mean matcher score ≥ 0.5.
double UniformBaselineAccuracy(const std::vector<TrainingRecord>& records) {
  size_t correct = 0;
  for (const TrainingRecord& r : records) {
    double mean = 0.0;
    for (double f : r.features) mean += f;
    mean /= static_cast<double>(r.features.size());
    if ((mean >= 0.5) == r.relevant) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(records.size());
}

int Run() {
  MatcherEnsemble feature_ensemble = MatcherEnsemble::Default();

  std::printf("\n=== E5 meta-learner: search-history training ===\n");
  std::printf("  %-10s %10s %10s %10s %10s\n", "records", "train_ms",
              "acc(train)", "acc(test)", "acc(unif)");
  LogisticModel final_model;
  for (size_t n : {50ul, 200ul, 800ul}) {
    SearchHistoryOptions history_options;
    history_options.num_records = n;
    history_options.seed = 1001;
    auto train = SimulateSearchHistory(feature_ensemble, history_options);
    history_options.seed = 2002;  // held-out histories
    auto test = SimulateSearchHistory(feature_ensemble, history_options);

    Timer timer;
    auto model = TrainLogisticModel(train);
    double train_ms = timer.ElapsedMillis();
    if (!model.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-10zu %10.1f %10.3f %10.3f %10.3f\n", n, train_ms,
                EvaluateAccuracy(*model, train),
                EvaluateAccuracy(*model, test),
                UniformBaselineAccuracy(test));
    final_model = *model;
  }

  std::printf("\n  learned weights (name, context, type, structure): ");
  for (double w : final_model.NormalizedWeights()) std::printf("%.3f ", w);
  std::printf("\n  bias: %.3f\n", final_model.bias);

  // End-to-end effect on retrieval.
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 1500;
  corpus_options.seed = 55;
  corpus_options.name_noise.abbreviation_prob = 0.3;
  auto fixture = CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) return 1;
  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 44;
  workload_options.keyword_noise.abbreviation_prob = 0.2;
  auto workload = GenerateQueryWorkload(workload_options);

  std::printf("\n  end-to-end retrieval (corpus=%zu):\n",
              fixture->corpus.size());
  std::printf("  %-26s %7s %7s %7s\n", "ensemble weighting", "P@5", "MRR",
              "nDCG10");

  {
    SearchEngine engine(fixture->repository.get(), &fixture->index());
    QualitySummary q = *EvaluateEngine(engine, *fixture, workload);
    std::printf("  %-26s %7.3f %7.3f %7.3f\n", "uniform", q.precision_at_5,
                q.mrr, q.ndcg_at_10);
  }
  {
    MatcherEnsemble ensemble = MatcherEnsemble::Default();
    ensemble.SetWeights(final_model.NormalizedWeights());
    SearchEngine engine(fixture->repository.get(), &fixture->index(),
                        std::move(ensemble));
    QualitySummary q = *EvaluateEngine(engine, *fixture, workload);
    std::printf("  %-26s %7.3f %7.3f %7.3f\n", "learned weights",
                q.precision_at_5, q.mrr, q.ndcg_at_10);
  }
  {
    MatcherEnsemble ensemble = MatcherEnsemble::Default();
    ensemble.SetLogisticModel(final_model);
    SearchEngine engine(fixture->repository.get(), &fixture->index(),
                        std::move(ensemble));
    QualitySummary q = *EvaluateEngine(engine, *fixture, workload);
    std::printf("  %-26s %7.3f %7.3f %7.3f\n", "logistic combiner",
                q.precision_at_5, q.mrr, q.ndcg_at_10);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
