// Experiments F4 + E6 (DESIGN.md): tightness-of-fit cost and quality.
//
// The cost side: TOF iterates over all anchor entities for every matched
// element, so its cost grows with #entities × #matched elements. This
// bench sweeps both. The quality side (does TOF improve ranking?) lives
// in bench_quality_ablation; here a micro-table also reports the Fig. 4
// example value as a sanity anchor.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/tightness_of_fit.h"
#include "match/context_matcher.h"
#include "match/ensemble.h"
#include "match/name_matcher.h"
#include "match/structure_matcher.h"
#include "match/type_matcher.h"
#include "schema/schema_builder.h"
#include "util/rng.h"

namespace schemr {
namespace {

/// Schema with `entities` FK-chained entities of `attrs` attributes each.
Schema MakeChainSchema(size_t entities, size_t attrs) {
  Schema schema("chain");
  ElementId previous = kNoElement;
  for (size_t e = 0; e < entities; ++e) {
    ElementId entity = schema.AddEntity("entity" + std::to_string(e));
    for (size_t a = 0; a < attrs; ++a) {
      ElementId attr = schema.AddAttribute(
          "attr" + std::to_string(e) + "_" + std::to_string(a), entity);
      if (a == 0 && previous != kNoElement) {
        schema.AddForeignKey(attr, previous);
      }
    }
    previous = entity;
  }
  return schema;
}

/// Random similarity matrix with `fraction` of elements matched.
SimilarityMatrix MakeSimilarity(const Schema& schema, double fraction,
                                uint64_t seed) {
  Rng rng(seed);
  SimilarityMatrix m(4, schema.size());
  for (ElementId e = 0; e < schema.size(); ++e) {
    if (rng.NextBool(fraction)) {
      m.set(rng.NextBelow(4), e, 0.5 + 0.5 * rng.NextDouble());
    }
  }
  return m;
}

void BM_TightnessVsEntities(benchmark::State& state) {
  Schema schema = MakeChainSchema(static_cast<size_t>(state.range(0)), 6);
  SimilarityMatrix m = MakeSimilarity(schema, 0.5, 11);
  EntityGraph graph(schema);
  for (auto _ : state) {
    TightnessResult result = ComputeTightnessOfFit(schema, graph, m);
    benchmark::DoNotOptimize(result.score);
  }
  state.counters["entities"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TightnessVsEntities)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_TightnessVsMatchedFraction(benchmark::State& state) {
  Schema schema = MakeChainSchema(16, 8);
  double fraction = static_cast<double>(state.range(0)) / 100.0;
  SimilarityMatrix m = MakeSimilarity(schema, fraction, 13);
  EntityGraph graph(schema);
  for (auto _ : state) {
    TightnessResult result = ComputeTightnessOfFit(schema, graph, m);
    benchmark::DoNotOptimize(result.score);
  }
  state.counters["matched_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TightnessVsMatchedFraction)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_TightnessIncludingGraphBuild(benchmark::State& state) {
  // The search engine builds EntityGraph per candidate; include that cost.
  Schema schema = MakeChainSchema(16, 8);
  SimilarityMatrix m = MakeSimilarity(schema, 0.5, 17);
  for (auto _ : state) {
    TightnessResult result = ComputeTightnessOfFit(schema, m);
    benchmark::DoNotOptimize(result.score);
  }
}
BENCHMARK(BM_TightnessIncludingGraphBuild)->Unit(benchmark::kMicrosecond);

// Matcher ensemble throughput per candidate (the phase-2 unit of work).
void BM_EnsembleMatchPerCandidate(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(1000);
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  Schema query = SchemaBuilder("q")
                     .Entity("patient")
                     .Attribute("height", DataType::kDouble)
                     .Attribute("gender")
                     .Attribute("diagnosis")
                     .Build();
  size_t i = 0;
  for (auto _ : state) {
    const Schema& candidate =
        fixture.corpus[i++ % fixture.corpus.size()].schema;
    SimilarityMatrix m = ensemble.MatchCombined(query, candidate);
    benchmark::DoNotOptimize(m.Mean());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnsembleMatchPerCandidate)->Unit(benchmark::kMicrosecond);

// Individual matcher costs, for the phase-2 budget breakdown.
template <typename MatcherT>
void MatcherThroughput(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(1000);
  MatcherT matcher;
  Schema query = SchemaBuilder("q")
                     .Entity("patient")
                     .Attribute("height", DataType::kDouble)
                     .Attribute("gender")
                     .Attribute("diagnosis")
                     .Build();
  size_t i = 0;
  for (auto _ : state) {
    const Schema& candidate =
        fixture.corpus[i++ % fixture.corpus.size()].schema;
    SimilarityMatrix m = matcher.Match(query, candidate);
    benchmark::DoNotOptimize(m.Mean());
  }
}

void BM_NameMatcherThroughput(benchmark::State& state) {
  MatcherThroughput<NameMatcher>(state);
}
void BM_ContextMatcherThroughput(benchmark::State& state) {
  MatcherThroughput<ContextMatcher>(state);
}
void BM_TypeMatcherThroughput(benchmark::State& state) {
  MatcherThroughput<TypeMatcher>(state);
}
void BM_StructureMatcherThroughput(benchmark::State& state) {
  MatcherThroughput<StructureMatcher>(state);
}
BENCHMARK(BM_NameMatcherThroughput)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ContextMatcherThroughput)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TypeMatcherThroughput)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StructureMatcherThroughput)->Unit(benchmark::kMicrosecond);

// Quality side of E6: a corpus salted with "scattered" distractors --
// schemas containing the right vocabulary spread over unrelated entities.
// TF/IDF and pure name matching cannot tell them from genuine concept
// schemas; tightness-of-fit penalizes the scattering. Prints a small
// table before the microbenchmarks run.
void RunScatteredDistractorExperiment() {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 400;
  corpus_options.seed = 2061;
  auto fixture = CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed\n");
    return;
  }

  // For every concept add scattered distractors: its core attribute names
  // distributed one-per-entity with no foreign keys.
  Rng rng(5);
  size_t distractors = 0;
  for (const DomainConcept& dc : BuiltinConcepts()) {
    for (int copy = 0; copy < 6; ++copy) {
      Schema scattered("misc_" + dc.domain + "_" + std::to_string(copy));
      size_t entity_index = 0;
      for (const ConceptEntity& entity : dc.entities) {
        for (const ConceptAttribute& attr : entity.attributes) {
          if (!attr.core || rng.NextBool(0.4)) continue;
          ElementId island = scattered.AddEntity(
              "section" + std::to_string(entity_index++));
          scattered.AddAttribute(attr.name, island, attr.type);
        }
      }
      if (scattered.NumAttributes() < 4) continue;
      // Distractors are NOT in the relevance set: they are wrong answers
      // that share vocabulary.
      if (!fixture->repository->Insert(std::move(scattered)).ok()) continue;
      ++distractors;
    }
  }
  if (!fixture->indexer->Refresh(*fixture->repository).ok()) return;

  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 44;
  workload_options.seed = 19;
  auto workload = GenerateQueryWorkload(workload_options);

  SearchEngine engine(fixture->repository.get(), &fixture->index());
  SearchEngineOptions no_tof;
  no_tof.enable_tightness = false;
  SearchEngineOptions with_tof;

  QualitySummary without = *EvaluateEngine(engine, *fixture, workload, no_tof);
  QualitySummary with = *EvaluateEngine(engine, *fixture, workload, with_tof);

  std::printf(
      "\n=== E6 tightness-of-fit vs scattered distractors "
      "(corpus=%zu + %zu distractors) ===\n",
      fixture->corpus.size(), distractors);
  std::printf("  %-18s %7s %7s %7s %7s\n", "ranking", "P@5", "P@10", "MRR",
              "nDCG10");
  std::printf("  %-18s %7.3f %7.3f %7.3f %7.3f\n", "without TOF",
              without.precision_at_5, without.precision_at_10, without.mrr,
              without.ndcg_at_10);
  std::printf("  %-18s %7.3f %7.3f %7.3f %7.3f\n", "with TOF",
              with.precision_at_5, with.precision_at_10, with.mrr,
              with.ndcg_at_10);
  std::printf("\n");
}

}  // namespace
}  // namespace schemr

int main(int argc, char** argv) {
  schemr::RunScatteredDistractorExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
