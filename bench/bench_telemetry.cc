// Introspection-plane overhead experiment (E17, DESIGN.md §12): what the
// always-on telemetry sampler and tail-based trace retention cost the
// serving path, plus the isolated price of each primitive (one registry
// snapshot, the window math, the per-request sampling decision, one
// retention offer, one /statusz render).
//
// Expected shape: ShouldSample is one relaxed fetch_add (~ns) and an
// unsampled request pays nothing else, so end-to-end p50 with the
// introspection plane live should sit within 1% of the bare serving path
// (the E17 acceptance bar). The sampler's registry Collect runs once per
// interval on its own thread — it shows up here as a per-call cost, not a
// per-request one. Endpoint renders are scrape-rate work (O(1/s)), shown
// to bound what a dashboard costs the process.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/serving_corpus.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

constexpr size_t kSchemas = 2000;

/// One lazily built serving corpus shared by the serving-path benches.
ServingCorpus& SharedCorpus() {
  static ServingCorpus* corpus = [] {
    CorpusOptions options;
    options.num_schemas = kSchemas;
    options.seed = 20090629;
    auto fixture = CorpusFixture::Build(options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed: %s\n",
                   fixture.status().ToString().c_str());
      std::abort();
    }
    auto built = ServingCorpus::Create(std::move(fixture->repository));
    if (!built.ok()) {
      std::fprintf(stderr, "corpus build failed: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    return built->release();
  }();
  return *corpus;
}

SchemrService* ServingService(uint32_t sample_every_n, int introspection_port) {
  auto* service = new SchemrService(&SharedCorpus());
  ServingOptions serving;
  serving.executor.num_workers = 2;
  serving.trace_retention.sample_every_n = sample_every_n;
  serving.introspection_port = introspection_port;
  if (!service->StartServing(serving).ok()) {
    std::fprintf(stderr, "StartServing failed\n");
    std::abort();
  }
  return service;
}

void RunWorkload(benchmark::State& state, const SchemrService& service) {
  const auto& workload = bench::SharedWorkload(0.0);
  size_t qi = 0;
  for (auto _ : state) {
    SearchRequest request;
    const auto& query = workload[qi++ % workload.size()];
    request.keywords = query.keywords;
    request.candidate_pool = 25;
    const std::string xml = service.HandleSearchXml(request, 5.0);
    benchmark::DoNotOptimize(xml.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/// E16 shape, re-measured here as the baseline: serving path with trace
/// sampling disabled and no listener.
void BM_SearchXml_IntrospectionOff(benchmark::State& state) {
  static SchemrService* service = ServingService(/*sample_every_n=*/0,
                                                 /*introspection_port=*/-1);
  RunWorkload(state, *service);
}
BENCHMARK(BM_SearchXml_IntrospectionOff)->Unit(benchmark::kMicrosecond);

/// The shipped default: sampler thread live, tail sampling at 1/16, the
/// HTTP listener bound (idle — scrape cost is measured separately).
void BM_SearchXml_IntrospectionOn(benchmark::State& state) {
  static SchemrService* service = ServingService(/*sample_every_n=*/16,
                                                 /*introspection_port=*/0);
  RunWorkload(state, *service);
}
BENCHMARK(BM_SearchXml_IntrospectionOn)->Unit(benchmark::kMicrosecond);

/// Worst case: every request carries a live SearchTrace.
void BM_SearchXml_TraceEverything(benchmark::State& state) {
  static SchemrService* service = ServingService(/*sample_every_n=*/1,
                                                 /*introspection_port=*/0);
  RunWorkload(state, *service);
}
BENCHMARK(BM_SearchXml_TraceEverything)->Unit(benchmark::kMicrosecond);

/// One registry snapshot into the ring — the sampler thread's per-interval
/// cost, against the real (fully populated) global registry.
void BM_TelemetrySampleNow(benchmark::State& state) {
  TelemetryOptions options;
  options.sample_interval_seconds = 3600;  // never fires on its own
  TelemetrySampler sampler(options);
  for (auto _ : state) {
    auto sample = sampler.SampleNow();
    benchmark::DoNotOptimize(sample.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetrySampleNow)->Unit(benchmark::kMicrosecond);

/// The 1m/5m/15m window math over two real registry samples — what one
/// /statusz render spends beyond string formatting.
void BM_ComputeWindow(benchmark::State& state) {
  TelemetryOptions options;
  options.sample_interval_seconds = 3600;
  TelemetrySampler sampler(options);
  auto older = sampler.SampleNow();
  auto newer = sampler.SampleNow();
  for (auto _ : state) {
    WindowedView view = ComputeWindow(*older, *newer);
    benchmark::DoNotOptimize(view.metrics.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ComputeWindow)->Unit(benchmark::kMicrosecond);

/// The per-request sampling decision — the only telemetry cost an
/// unsampled request pays.
void BM_TraceShouldSample(benchmark::State& state) {
  TraceRetention retention;
  for (auto _ : state) {
    bool sample = retention.ShouldSample();
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceShouldSample)->Unit(benchmark::kNanosecond);

/// One retention offer for an interesting (retained) outcome: the
/// classification plus a ring insert under the mutex.
void BM_TraceRetain(benchmark::State& state) {
  TraceRetention retention;
  RetainedTrace trace;
  trace.timestamp_micros = 1700000000000000ull;
  trace.fingerprint = 0xabcdef;
  trace.outcome = "degraded";
  trace.total_seconds = 0.012;
  for (auto _ : state) {
    retention.Retain(trace);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRetain)->Unit(benchmark::kNanosecond);

/// A full /statusz render (registry windows + JSON formatting): the cost
/// of one dashboard refresh or scrape.
void BM_StatuszRender(benchmark::State& state) {
  static SchemrService* service = ServingService(/*sample_every_n=*/16,
                                                 /*introspection_port=*/-1);
  service->telemetry()->SampleNow();
  service->telemetry()->SampleNow();
  for (auto _ : state) {
    std::string body = service->StatuszJson();
    benchmark::DoNotOptimize(body.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatuszRender)->Unit(benchmark::kMicrosecond);

/// A full /metrics render for comparison (the Prometheus scrape body).
void BM_MetricsRender(benchmark::State& state) {
  static SchemrService* service = ServingService(/*sample_every_n=*/16,
                                                 /*introspection_port=*/-1);
  for (auto _ : state) {
    std::string body = service->MetricsText();
    benchmark::DoNotOptimize(body.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsRender)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
