// Experiment E11 (DESIGN.md): the storage engine and repository that play
// Yggdrasil's role (paper Fig. 5).
//
// Measures the access patterns the architecture exercises: point put/get
// (schema upload and visualization lookup), full scan (the offline
// indexer), compaction, and recovery (reopen after many updates).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "corpus/schema_generator.h"
#include "repo/schema_repository.h"
#include "schema/schema_codec.h"
#include "store/kv_store.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

fs::path BenchDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / (std::string("schemr_bench_") +
                                              name);
  fs::remove_all(dir);
  return dir;
}

std::string ValueOfSize(size_t n) { return std::string(n, 'v'); }

void BM_StorePut(benchmark::State& state) {
  fs::path dir = BenchDir("put");
  auto store = *KvStore::Open(dir.string());
  std::string value = ValueOfSize(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    if (!store->Put("key" + std::to_string(i++), value).ok()) {
      state.SkipWithError("put failed");
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  store.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_StorePut)->Arg(128)->Arg(1024)->Arg(8192)->Unit(
    benchmark::kMicrosecond);

void BM_StoreGet(benchmark::State& state) {
  fs::path dir = BenchDir("get");
  auto store = *KvStore::Open(dir.string());
  const size_t num_keys = 10000;
  std::string value = ValueOfSize(1024);
  for (size_t i = 0; i < num_keys; ++i) {
    (void)store->Put("key" + std::to_string(i), value);
  }
  Rng rng(1);
  for (auto _ : state) {
    auto result = store->Get("key" + std::to_string(rng.NextBelow(num_keys)));
    if (!result.ok()) state.SkipWithError("get failed");
    benchmark::DoNotOptimize(result->size());
  }
  store.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreGet)->Unit(benchmark::kMicrosecond);

void BM_StoreScan(benchmark::State& state) {
  fs::path dir = BenchDir("scan");
  auto store = *KvStore::Open(dir.string());
  for (size_t i = 0; i < 5000; ++i) {
    (void)store->Put("key" + std::to_string(i), ValueOfSize(512));
  }
  for (auto _ : state) {
    size_t total = 0;
    auto st = store->ForEach([&total](std::string_view, std::string_view v) {
      total += v.size();
      return Status::OK();
    });
    if (!st.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
  store.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreScan)->Unit(benchmark::kMillisecond);

void BM_StoreCompaction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    fs::path dir = BenchDir("compact");
    auto store = *KvStore::Open(dir.string());
    // 50% dead weight: every key overwritten once.
    for (int round = 0; round < 2; ++round) {
      for (size_t i = 0; i < 2000; ++i) {
        (void)store->Put("key" + std::to_string(i), ValueOfSize(512));
      }
    }
    state.ResumeTiming();
    if (!store->Compact().ok()) state.SkipWithError("compact failed");
    state.PauseTiming();
    store.reset();
    fs::remove_all(dir);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_StoreCompaction)->Unit(benchmark::kMillisecond);

void BM_StoreRecovery(benchmark::State& state) {
  fs::path dir = BenchDir("recovery");
  {
    auto store = *KvStore::Open(dir.string());
    for (size_t i = 0; i < static_cast<size_t>(state.range(0)); ++i) {
      (void)store->Put("key" + std::to_string(i), ValueOfSize(512));
    }
  }
  for (auto _ : state) {
    auto store = KvStore::Open(dir.string());
    if (!store.ok()) state.SkipWithError("open failed");
    benchmark::DoNotOptimize((*store)->Size());
  }
  state.counters["keys"] = static_cast<double>(state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreRecovery)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

// The fault-injection shims sit on every write/fsync in the store; these
// two benchmarks bound what that costs when no faults are armed. Disarmed
// is the production configuration (one relaxed atomic load); armed-elsewhere
// is the worst idle case (site table consulted, nothing fires).
void BM_FaultShimDisarmed(benchmark::State& state) {
  FaultInjector::Global().DisarmAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultInjector::Global().Check("bench/idle"));
  }
}
BENCHMARK(BM_FaultShimDisarmed);

void BM_FaultShimArmedElsewhere(benchmark::State& state) {
  FaultInjector::Global().DisarmAll();
  FaultInjector::Global().Arm("bench/other", FaultSpec{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultInjector::Global().Check("bench/idle"));
  }
  FaultInjector::Global().DisarmAll();
}
BENCHMARK(BM_FaultShimArmedElsewhere);

// Repository-level: schema encode+put and get+decode round trips.
void BM_RepositoryInsert(benchmark::State& state) {
  CorpusOptions options;
  options.num_schemas = 200;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  fs::path dir = BenchDir("repo_insert");
  auto repo = *SchemaRepository::Open(dir.string());
  size_t i = 0;
  for (auto _ : state) {
    if (!repo->Insert(corpus[i++ % corpus.size()].schema).ok()) {
      state.SkipWithError("insert failed");
    }
  }
  repo.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_RepositoryInsert)->Unit(benchmark::kMicrosecond);

void BM_RepositoryGet(benchmark::State& state) {
  CorpusOptions options;
  options.num_schemas = 1000;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  fs::path dir = BenchDir("repo_get");
  auto repo = *SchemaRepository::Open(dir.string());
  std::vector<SchemaId> ids;
  for (const GeneratedSchema& g : corpus) {
    ids.push_back(*repo->Insert(g.schema));
  }
  Rng rng(2);
  for (auto _ : state) {
    auto schema = repo->Get(ids[rng.NextBelow(ids.size())]);
    if (!schema.ok()) state.SkipWithError("get failed");
    benchmark::DoNotOptimize(schema->size());
  }
  repo.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_RepositoryGet)->Unit(benchmark::kMicrosecond);

void BM_SchemaCodecEncode(benchmark::State& state) {
  CorpusOptions options;
  options.num_schemas = 100;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeSchema(corpus[i++ % corpus.size()].schema));
  }
}
BENCHMARK(BM_SchemaCodecEncode)->Unit(benchmark::kMicrosecond);

void BM_SchemaCodecDecode(benchmark::State& state) {
  CorpusOptions options;
  options.num_schemas = 100;
  std::vector<std::string> encoded;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    encoded.push_back(EncodeSchema(g.schema));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto schema = DecodeSchema(encoded[i++ % encoded.size()]);
    if (!schema.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(schema->size());
  }
}
BENCHMARK(BM_SchemaCodecDecode)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
