// Experiment E9 (DESIGN.md): the headline quality table.
//
// The paper's central claim is that the *combination* -- document
// filtering + schema matching + structure-aware scoring -- is what makes
// schema search work. This bench regenerates that claim as a table:
// ranking quality per pipeline stage, on a clean and on a noisy
// (abbreviation-heavy) workload, over a mixed-domain ground-truth corpus.
//
// Expected shape: on clean workloads TF/IDF is already strong and the
// later stages roughly hold the line; on noisy workloads the matcher
// ensemble (n-gram name matching) recovers what exact-term TF/IDF loses,
// and tightness-of-fit sharpens early precision.

#include <cstdio>

#include "bench_common.h"

namespace schemr {
namespace {

void PrintRow(const char* stage, const QualitySummary& q) {
  std::printf("  %-22s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n", stage,
              q.precision_at_5, q.precision_at_10, q.recall_at_10, q.mrr,
              q.map, q.ndcg_at_10);
}

int Run() {
  struct WorkloadSpec {
    const char* label;
    double abbrev_prob;
    double corpus_abbrev;
    uint64_t corpus_seed;
  };
  const WorkloadSpec specs[] = {
      {"clean queries, mild corpus noise", 0.0, 0.2, 41},
      {"abbreviated queries, noisy corpus", 0.7, 0.6, 43},
  };

  for (const WorkloadSpec& spec : specs) {
    CorpusOptions corpus_options;
    // Small per-concept populations plus heavy name noise keep the task
    // from saturating (P@k of 1.0 would hide stage differences).
    corpus_options.num_schemas = 700;
    corpus_options.seed = spec.corpus_seed;
    corpus_options.name_noise.abbreviation_prob = spec.corpus_abbrev;
    corpus_options.name_noise.synonym_prob = 0.25;
    corpus_options.name_noise.truncation_prob = 0.15;
    corpus_options.generic_attributes_per_entity = 1.5;
    auto fixture = CorpusFixture::Build(corpus_options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture failed: %s\n",
                   fixture.status().ToString().c_str());
      return 1;
    }

    QueryWorkloadOptions workload_options;
    workload_options.num_queries = 44;
    workload_options.seed = 7;
    workload_options.keywords_per_query = 2;
    workload_options.keyword_noise.abbreviation_prob = spec.abbrev_prob;
    workload_options.keyword_noise.truncation_prob = spec.abbrev_prob / 2;
    auto workload = GenerateQueryWorkload(workload_options);

    SearchEngine engine(fixture->repository.get(), &fixture->index());

    std::printf("\n=== E9 quality ablation: %s (corpus=%zu schemas) ===\n",
                spec.label, fixture->corpus.size());
    std::printf("  %-22s %7s %7s %7s %7s %7s %7s\n", "pipeline stage", "P@5",
                "P@10", "R@10", "MRR", "MAP", "nDCG10");

    SearchEngineOptions phase1;
    phase1.enable_matching = false;
    PrintRow("tf-idf only",
             *EvaluateEngine(engine, *fixture, workload, phase1));

    SearchEngineOptions matching;
    matching.enable_tightness = false;
    PrintRow("+ matcher ensemble",
             *EvaluateEngine(engine, *fixture, workload, matching));

    SearchEngineOptions full;
    PrintRow("+ tightness-of-fit",
             *EvaluateEngine(engine, *fixture, workload, full));

    // Pure structural ranking (no coarse blend): how far structure alone
    // carries.
    SearchEngineOptions structural;
    structural.coarse_blend = 0.0;
    PrintRow("tightness only (no blend)",
             *EvaluateEngine(engine, *fixture, workload, structural));
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
