// Experiment E1 (DESIGN.md): the candidate-extraction phase as "a fast
// and scalable filter for relevant candidate schemas".
//
// Measures phase-1 query latency against corpus sizes from 1k to 30k
// schemas (the paper's deployment scale), contrasted with a brute-force
// linear scan over all schema documents -- the thing the inverted index
// exists to avoid. Expected shape: index lookup grows far slower than the
// scan as the corpus grows.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/candidate_extractor.h"
#include "core/query_parser.h"
#include "match/name_matcher.h"

namespace schemr {
namespace {

void BM_CandidateExtraction(benchmark::State& state) {
  const CorpusFixture& fixture =
      bench::SharedFixture(static_cast<size_t>(state.range(0)));
  const auto& workload = bench::SharedWorkload(0.0);
  CandidateExtractor extractor(&fixture.index());
  CandidateExtractorOptions options;
  options.pool_size = 50;

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    benchmark::DoNotOptimize(extractor.Extract(*query, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["corpus"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CandidateExtraction)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(30000)
    ->Unit(benchmark::kMicrosecond);

// The baseline the index replaces: score every schema by running the name
// matcher against the merged query (what a matcher-only system without a
// document filter would do).
void BM_BruteForceScanBaseline(benchmark::State& state) {
  const CorpusFixture& fixture =
      bench::SharedFixture(static_cast<size_t>(state.range(0)));
  const auto& workload = bench::SharedWorkload(0.0);
  NameMatcher matcher;

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    double best = 0.0;
    for (const GeneratedSchema& g : fixture.corpus) {
      SimilarityMatrix m = matcher.Match(query->AsSchema(), g.schema);
      best = std::max(best, m.Mean());
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["corpus"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BruteForceScanBaseline)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// Pool size sweep: phase-1 cost versus how many candidates are handed to
// the expensive match phase.
void BM_CandidatePoolSize(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(10000);
  const auto& workload = bench::SharedWorkload(0.0);
  CandidateExtractor extractor(&fixture.index());
  CandidateExtractorOptions options;
  options.pool_size = static_cast<size_t>(state.range(0));

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    benchmark::DoNotOptimize(extractor.Extract(*query, options));
  }
  state.counters["pool"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CandidatePoolSize)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
