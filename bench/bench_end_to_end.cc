// Experiments F3 + E8 (DESIGN.md): the full three-phase pipeline of
// Fig. 3, end to end -- "efficiently search ... large schema
// repositories".
//
// Measures complete query latency (candidate extraction → matcher
// ensemble → tightness-of-fit → ranking) against corpus size and
// candidate-pool size, plus the per-phase breakdown at the default
// configuration. Expected shape: total latency is dominated by the match
// phase and scales linearly with the candidate pool, while corpus size
// mainly affects phase 1 (mildly).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/query_parser.h"
#include "core/search_engine.h"

namespace schemr {
namespace {

void BM_EndToEndSearch(benchmark::State& state) {
  const CorpusFixture& fixture =
      bench::SharedFixture(static_cast<size_t>(state.range(0)));
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngine engine(fixture.repository.get(), &fixture.index());
  SearchEngineOptions options;
  options.extraction.pool_size = 50;

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    auto results = engine.Search(*query, options);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["corpus"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndSearch)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndPoolSweep(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(10000);
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngine engine(fixture.repository.get(), &fixture.index());
  SearchEngineOptions options;
  options.extraction.pool_size = static_cast<size_t>(state.range(0));

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    auto results = engine.Search(*query, options);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
  }
  state.counters["pool"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndPoolSweep)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

// Per-phase breakdown: phase 1 alone, phases 1-2, phases 1-3.
void BM_PhaseBreakdown(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(10000);
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngine engine(fixture.repository.get(), &fixture.index());
  SearchEngineOptions options;
  options.enable_matching = state.range(0) >= 1;
  options.enable_tightness = state.range(0) >= 2;

  size_t qi = 0;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    auto results = engine.Search(*query, options);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
  }
  state.SetLabel(state.range(0) == 0   ? "phase1_only"
                 : state.range(0) == 1 ? "phase1+matching"
                                       : "full_pipeline");
}
BENCHMARK(BM_PhaseBreakdown)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

// Fragment queries: the query graph carries structure, phase 2 matrices
// get more rows.
void BM_EndToEndFragmentQuery(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(10000);
  SearchEngine engine(fixture.repository.get(), &fixture.index());
  auto query = ParseQuery(
      "diagnosis",
      "CREATE TABLE patient (height DOUBLE, gender VARCHAR(8), "
      "date_of_birth DATE, village VARCHAR(40));");
  if (!query.ok()) {
    state.SkipWithError("query parse failed");
    return;
  }
  for (auto _ : state) {
    auto results = engine.Search(*query);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
  }
}
BENCHMARK(BM_EndToEndFragmentQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
