// Concurrent serving experiments (E14, DESIGN.md §9): snapshot-isolated
// search throughput vs thread count, the copy-on-write cost of a corpus
// commit, and the latency of the admission shed path.
//
// Expected shape: search QPS scales with threads up to the physical core
// count because readers share an immutable snapshot and take no lock
// (the paper's interactive-search workload, now concurrent). Ingest pays
// the full index copy per publish -- the price of never blocking a
// reader -- so commit cost grows with corpus size. The shed path does no
// pipeline work and should answer in microseconds even when saturated.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/query_parser.h"
#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

/// One lazily built serving corpus shared by every thread of a bench run
/// (magic-static init is thread-safe; the corpus itself is the unit
/// under test for concurrent access).
ServingCorpus& SharedCorpus() {
  static ServingCorpus* corpus = [] {
    CorpusOptions options;
    options.num_schemas = 2000;
    options.seed = 20090629;
    auto fixture = CorpusFixture::Build(options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed: %s\n",
                   fixture.status().ToString().c_str());
      std::abort();
    }
    auto built = ServingCorpus::Create(std::move(fixture->repository));
    if (!built.ok()) {
      std::fprintf(stderr, "corpus build failed: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    return built->release();
  }();
  return *corpus;
}

/// Search QPS against one live corpus from N concurrent threads.
void BM_SnapshotSearch(benchmark::State& state) {
  ServingCorpus& corpus = SharedCorpus();
  static const SearchEngine* engine = new SearchEngine(&SharedCorpus());
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngineOptions options;
  options.extraction.pool_size = 25;
  options.top_k = 10;

  size_t qi = static_cast<size_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    auto query = ParseQuery(workload[qi % workload.size()].keywords);
    ++qi;
    auto results = engine->Search(*query, options);
    if (!results.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(results->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["corpus_version"] = static_cast<double>(corpus.version());
}
BENCHMARK(BM_SnapshotSearch)->ThreadRange(1, 8)->UseRealTime();

/// Same workload, but one of the threads ingests continuously: measures
/// how much live commits cost the readers (they should barely notice --
/// writers swap snapshots, readers keep the old one).
void BM_SnapshotSearchWhileIngest(benchmark::State& state) {
  ServingCorpus& corpus = SharedCorpus();
  static const SearchEngine* engine = new SearchEngine(&SharedCorpus());
  const auto& workload = bench::SharedWorkload(0.0);
  SearchEngineOptions options;
  options.extraction.pool_size = 25;

  if (state.thread_index() == 0) {
    // Writer thread: back-to-back ingests for the whole measurement.
    size_t i = 0;
    for (auto _ : state) {
      CorpusOptions one;
      one.num_schemas = 1;
      one.seed = 977 + i;
      auto generated = GenerateCorpus(one);
      auto id = corpus.Ingest(std::move(generated.front().schema));
      if (!id.ok()) state.SkipWithError("ingest failed");
      auto removed = corpus.Remove(*id);  // keep the corpus size stable
      if (!removed.ok()) state.SkipWithError("remove failed");
      ++i;
    }
  } else {
    size_t qi = static_cast<size_t>(state.thread_index()) * 7;
    for (auto _ : state) {
      auto query = ParseQuery(workload[qi % workload.size()].keywords);
      ++qi;
      auto results = engine->Search(*query, options);
      if (!results.ok()) state.SkipWithError("search failed");
      benchmark::DoNotOptimize(results->size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotSearchWhileIngest)->Threads(2)->Threads(4)->UseRealTime();

/// The copy-on-write commit itself: one ingest+remove pair (two snapshot
/// publications) against a corpus of `range(0)` schemas.
void BM_CorpusCommit(benchmark::State& state) {
  CorpusOptions options;
  options.num_schemas = static_cast<size_t>(state.range(0));
  options.seed = 20090629;
  auto fixture = CorpusFixture::Build(options);
  if (!fixture.ok()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  auto corpus = ServingCorpus::Create(std::move(fixture->repository));
  if (!corpus.ok()) {
    state.SkipWithError("corpus build failed");
    return;
  }
  CorpusOptions one;
  one.num_schemas = 1;
  one.seed = 41;
  auto extra = GenerateCorpus(one);
  for (auto _ : state) {
    auto id = (*corpus)->Ingest(extra.front().schema);
    if (!id.ok()) state.SkipWithError("ingest failed");
    auto removed = (*corpus)->Remove(*id);
    if (!removed.ok()) state.SkipWithError("remove failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
  state.counters["corpus"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CorpusCommit)->Arg(100)->Arg(1000)->Arg(5000);

/// Latency of a shed response: admission refuses before any pipeline
/// work, so overloaded clients get their retry hint almost for free.
void BM_ShedPathLatency(benchmark::State& state) {
  static SchemrService* service = [] {
    auto* s = new SchemrService(&SharedCorpus());
    ServingOptions serving;
    serving.executor.num_workers = 1;
    serving.executor.queue_capacity = 1;
    // A zero queue bound sheds every request: the bench measures pure
    // refusal latency, not pipeline time.
    serving.admission.max_queue_depth = 0;
    if (!s->StartServing(serving).ok()) {
      std::fprintf(stderr, "StartServing failed\n");
      std::abort();
    }
    return s;
  }();
  SearchRequest request;
  request.keywords = "customer order lineitem";
  for (auto _ : state) {
    std::string xml = service->HandleSearchXml(request, 1.0);
    benchmark::DoNotOptimize(xml.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShedPathLatency)->ThreadRange(1, 4)->UseRealTime();

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
