// Shared helpers for the benchmark suite: cached corpus fixtures (building
// a 30k-schema index takes seconds; benches reuse one per size) and
// standard workloads.

#ifndef SCHEMR_BENCH_BENCH_COMMON_H_
#define SCHEMR_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace schemr {
namespace bench {

/// Returns a cached fixture with `num_schemas` generated schemas indexed
/// in memory. Seed is fixed so all benches see the same corpora. Build
/// time lands in the `schemr_bench_fixture_build_seconds` histogram
/// (visible in any bench that dumps the registry).
inline const CorpusFixture& SharedFixture(size_t num_schemas) {
  static std::map<size_t, std::unique_ptr<CorpusFixture>>* cache =
      new std::map<size_t, std::unique_ptr<CorpusFixture>>();
  auto it = cache->find(num_schemas);
  if (it == cache->end()) {
    ScopedTimer<Histogram> build_timer(MetricsRegistry::Global().GetHistogram(
        "schemr_bench_fixture_build_seconds",
        "Corpus fixture build time (generate + index)."));
    CorpusOptions options;
    options.num_schemas = num_schemas;
    options.seed = 20090629;  // SIGMOD 2009 demo week
    auto fixture = CorpusFixture::Build(options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed: %s\n",
                   fixture.status().ToString().c_str());
      std::abort();
    }
    it = cache->emplace(num_schemas,
                        std::make_unique<CorpusFixture>(
                            std::move(fixture).value()))
             .first;
  }
  return *it->second;
}

/// Standard keyword workload (no fragments), cached per configuration.
inline const std::vector<WorkloadQuery>& SharedWorkload(double abbrev_prob) {
  static std::map<int, std::vector<WorkloadQuery>>* cache =
      new std::map<int, std::vector<WorkloadQuery>>();
  int key = static_cast<int>(abbrev_prob * 100);
  auto it = cache->find(key);
  if (it == cache->end()) {
    QueryWorkloadOptions options;
    options.num_queries = 44;  // 2 per concept
    options.seed = 7;
    options.keyword_noise.abbreviation_prob = abbrev_prob;
    it = cache->emplace(key, GenerateQueryWorkload(options)).first;
  }
  return it->second;
}

}  // namespace bench
}  // namespace schemr

#endif  // SCHEMR_BENCH_BENCH_COMMON_H_
