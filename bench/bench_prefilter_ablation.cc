// Experiment E20 (DESIGN.md §16): what the approximate signature
// pre-filter costs in quality, as a function of its threshold.
//
// Exact mode (threshold 0) is digest-identical to the legacy pipeline by
// construction, so the only quality question is about the explicit
// opt-in screen: when a caller trades recall for latency, how much recall
// goes, and where is the knee? Two recall notions are reported:
//
//   - concept recall (R@10 against the generator's relevance sets): the
//     standard IR metric, comparable with E5/E9;
//   - window retention: the fraction of the EXACT top-10 that survives
//     the screen — the direct "what did the screen cost me" number that
//     justifies the documented default threshold.
//
// The rejection column shows what buys the speedup: the fraction of the
// phase-1 pool the screen discards before any matcher runs.

#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "eval/harness.h"
#include "eval/ir_metrics.h"
#include "index/indexer.h"
#include "match/features.h"
#include "repo/schema_repository.h"
#include "util/timer.h"

namespace schemr {
namespace {

int Run() {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 2000;
  corpus_options.seed = 20090629;
  auto fixture = CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed: %s\n",
                 fixture->indexer ? "index" : "corpus");
    return 1;
  }

  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 60;
  workload_options.seed = 71;
  workload_options.fragment_prob = 0.3;
  std::vector<WorkloadQuery> workload =
      GenerateQueryWorkload(workload_options);

  // One pinned snapshot with the feature catalog: the engine every
  // configuration runs against.
  CatalogBuilder builder;
  std::shared_ptr<const RepositoryView> view = fixture->repository->View();
  Status added = view->ForEach([&](const Schema& s) {
    builder.Add(s);
    return Status::OK();
  });
  if (!added.ok()) {
    std::fprintf(stderr, "catalog failed: %s\n", added.ToString().c_str());
    return 1;
  }
  auto snapshot = std::make_shared<CorpusSnapshot>();
  snapshot->version = fixture->repository->version();
  snapshot->index = std::shared_ptr<const InvertedIndex>(
      std::shared_ptr<const InvertedIndex>(), &fixture->index());
  snapshot->schemas = view;
  snapshot->match_features = builder.Build();
  SearchEngine engine(snapshot);

  // The exact top-10 of every query, for window retention.
  std::vector<std::vector<uint64_t>> exact_windows;
  for (const WorkloadQuery& q : workload) {
    SearchEngineOptions exact;
    auto results = engine.SearchKeywords(q.keywords, exact);
    std::vector<uint64_t> window;
    if (results.ok()) {
      for (const SearchResult& r : *results) window.push_back(r.schema_id);
    }
    exact_windows.push_back(std::move(window));
  }

  std::printf(
      "\n=== E20 signature pre-filter ablation (corpus=%zu, %zu queries)"
      " ===\n",
      fixture->corpus.size(), workload.size());
  std::printf("  %-9s %7s %7s %7s %7s %9s %9s %10s\n", "threshold", "P@5",
              "R@10", "nDCG10", "MRR", "retained", "rej/query", "ms/query");

  const double thresholds[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (double threshold : thresholds) {
    SearchEngineOptions options;
    options.prefilter = threshold;
    auto summary = EvaluateEngine(engine, *fixture, workload, options);
    if (!summary.ok()) {
      std::fprintf(stderr, "evaluate failed\n");
      return 1;
    }

    // Window retention + rejections + latency, measured directly.
    double retained_sum = 0.0;
    size_t retained_n = 0;
    size_t rejected = 0;
    Timer timer;
    for (size_t i = 0; i < workload.size(); ++i) {
      SearchStats stats;
      SearchEngineOptions timed = options;
      timed.stats = &stats;
      auto results = engine.SearchKeywords(workload[i].keywords, timed);
      if (!results.ok()) continue;
      rejected += stats.prefilter_rejected;
      if (!exact_windows[i].empty()) {
        std::unordered_set<uint64_t> got;
        for (const SearchResult& r : *results) got.insert(r.schema_id);
        size_t kept = 0;
        for (uint64_t id : exact_windows[i]) kept += got.count(id);
        retained_sum +=
            static_cast<double>(kept) /
            static_cast<double>(exact_windows[i].size());
        ++retained_n;
      }
    }
    const double ms_per_query =
        workload.empty() ? 0.0
                         : timer.ElapsedSeconds() * 1e3 / workload.size();

    std::printf("  %-9.2f %7.3f %7.3f %7.3f %7.3f %8.1f%% %9.1f %10.3f\n",
                threshold, summary->precision_at_5, summary->recall_at_10,
                summary->ndcg_at_10, summary->mrr,
                retained_n == 0 ? 0.0 : 100.0 * retained_sum / retained_n,
                workload.empty() ? 0.0
                                 : static_cast<double>(rejected) /
                                       static_cast<double>(workload.size()),
                ms_per_query);
  }
  std::printf(
      "\n  threshold 0 is exact mode (bit-identical to legacy; the gate\n"
      "  enforces it); retained = fraction of the exact top-10 surviving\n"
      "  the screen; rej/query = mean candidates screened out before any\n"
      "  matcher ran.\n");
  return 0;
}

}  // namespace
}  // namespace schemr

int main() { return schemr::Run(); }
