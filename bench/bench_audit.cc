// Audit-log overhead experiment (E15, DESIGN.md §10): the same
// HandleSearchXml workload with auditing off, auditing on (the always-on
// default), and auditing on with fsync-per-record, plus the raw cost of
// one Record() call and of the fingerprint/digest computation.
//
// Expected shape: the audit path adds one fingerprint + digest (a few
// microseconds) and one buffered append under a mutex, so end-to-end
// request latency should move by well under 2% -- the acceptance bar the
// always-on default rests on. sync_on_write pays an fsync per request and
// exists to show why it is off by default.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "bench_common.h"
#include "core/fingerprint.h"
#include "core/query_parser.h"
#include "obs/audit_log.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

constexpr size_t kSchemas = 2000;

fs::path AuditDir(const char* tag) {
  fs::path dir = fs::temp_directory_path() /
                 (std::string("schemr_bench_audit_") + tag);
  fs::remove_all(dir);
  return dir;
}

SearchRequest RequestFor(const WorkloadQuery& query) {
  SearchRequest request;
  request.keywords = query.keywords;
  request.fragment = query.ddl_fragment;
  request.top_k = 10;
  request.candidate_pool = 25;
  return request;
}

void RunWorkload(benchmark::State& state, const SchemrService& service) {
  const auto& workload = bench::SharedWorkload(0.0);
  size_t qi = 0;
  size_t handled = 0;
  for (auto _ : state) {
    const std::string xml =
        service.HandleSearchXml(RequestFor(workload[qi++ % workload.size()]));
    benchmark::DoNotOptimize(xml.data());
    ++handled;
  }
  state.SetItemsProcessed(static_cast<int64_t>(handled));
}

/// Baseline: the serving path with no audit log attached.
void BM_SearchXml_AuditOff(benchmark::State& state) {
  const auto& fixture = bench::SharedFixture(kSchemas);
  SchemrService service(fixture.repository.get(), &fixture.index());
  RunWorkload(state, service);
}
BENCHMARK(BM_SearchXml_AuditOff)->Unit(benchmark::kMicrosecond);

/// The always-on configuration: buffered appends, default thresholds.
void BM_SearchXml_AuditOn(benchmark::State& state) {
  const auto& fixture = bench::SharedFixture(kSchemas);
  SchemrService service(fixture.repository.get(), &fixture.index());
  fs::path dir = AuditDir("on");
  if (Status s = service.EnableAudit(dir.string()); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  RunWorkload(state, service);
  service.audit()->Close();
  fs::remove_all(dir);
}
BENCHMARK(BM_SearchXml_AuditOn)->Unit(benchmark::kMicrosecond);

/// Worst case: fsync after every record (off by default; quantifies why).
void BM_SearchXml_AuditSync(benchmark::State& state) {
  const auto& fixture = bench::SharedFixture(kSchemas);
  SchemrService service(fixture.repository.get(), &fixture.index());
  fs::path dir = AuditDir("sync");
  AuditLogOptions options;
  options.sync_on_write = true;
  if (Status s = service.EnableAudit(dir.string(), options); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  RunWorkload(state, service);
  service.audit()->Close();
  fs::remove_all(dir);
}
BENCHMARK(BM_SearchXml_AuditSync)->Unit(benchmark::kMicrosecond);

/// One Record() call in isolation (frame + CRC + buffered append).
void BM_AuditRecordAppend(benchmark::State& state) {
  fs::path dir = AuditDir("append");
  auto log = AuditLog::Open(dir.string());
  if (!log.ok()) {
    state.SkipWithError(log.status().ToString().c_str());
    return;
  }
  AuditRecord record;
  record.timestamp_micros = 1700000000000000ull;
  record.fingerprint = 0xabcdef;
  record.total_micros = 1500;
  record.phase1_micros = 200;
  record.phase2_micros = 1100;
  record.phase3_micros = 200;
  record.result_digest = 0x12345678;
  record.result_count = 10;
  record.keywords = "customer order invoice";
  for (auto _ : state) {
    (*log)->Record(record);
  }
  (*log)->Close();
  fs::remove_all(dir);
}
BENCHMARK(BM_AuditRecordAppend)->Unit(benchmark::kNanosecond);

/// Fingerprint + digest cost per request (the CPU the audit path adds to
/// the pipeline before the append).
void BM_FingerprintAndDigest(benchmark::State& state) {
  auto query = ParseQuery("customer order invoice payment history");
  if (!query.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  std::vector<SearchResult> results(10);
  for (size_t i = 0; i < results.size(); ++i) {
    results[i].schema_id = static_cast<SchemaId>(i + 1);
    results[i].score = 1.0 / static_cast<double>(i + 1);
  }
  for (auto _ : state) {
    uint64_t fp = FingerprintQuery(*query);
    uint64_t digest = DigestResults(results);
    benchmark::DoNotOptimize(fp);
    benchmark::DoNotOptimize(digest);
  }
}
BENCHMARK(BM_FingerprintAndDigest)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
