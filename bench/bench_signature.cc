// Experiment E20 microbenchmarks (DESIGN.md §16): the signature
// pre-filter and columnar match features, measured at their sources.
//
// Four costs matter:
//   1. signature build throughput — the index-time price of the
//      subsystem (amortized once per schema, persisted across runs);
//   2. the screen itself — EstimatedSimilarity per candidate, which must
//      be orders of magnitude under a matcher invocation for the
//      pre-filter to be worth anything;
//   3. the prepared (columnar) ensemble vs the legacy per-candidate
//      ensemble — the phase-2 kernel this PR rewrites;
//   4. packed-profile Dice vs hash-map Dice — the innermost loop.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "match/ensemble.h"
#include "match/features.h"
#include "match/signature.h"
#include "text/ngram.h"

namespace schemr {
namespace {

/// Features + signatures for the first `n` schemas of the shared fixture,
/// cached per size (building 1k feature sets takes ~100ms; benches reuse).
struct FeatureSet {
  std::vector<const Schema*> schemas;
  std::vector<std::shared_ptr<SchemaFeatures>> features;
  DfTable df;
};

const FeatureSet& SharedFeatures(size_t n) {
  static std::map<size_t, std::unique_ptr<FeatureSet>>* cache =
      new std::map<size_t, std::unique_ptr<FeatureSet>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto set = std::make_unique<FeatureSet>();
    const CorpusFixture& fixture = bench::SharedFixture(n);
    FeatureBuildOptions options;
    for (const GeneratedSchema& g : fixture.corpus) {
      set->schemas.push_back(&g.schema);
      set->features.push_back(BuildSchemaFeatures(g.schema, options));
      set->df.AddDocument(*set->features.back());
    }
    for (auto& f : set->features) ComputeSignature(f.get(), &set->df);
    it = cache->emplace(n, std::move(set)).first;
  }
  return *it->second;
}

// --- 1. index-time signature build ------------------------------------------------

void BM_SignatureBuild(benchmark::State& state) {
  const CorpusFixture& fixture =
      bench::SharedFixture(static_cast<size_t>(state.range(0)));
  FeatureBuildOptions options;
  size_t i = 0;
  for (auto _ : state) {
    const Schema& schema = fixture.corpus[i % fixture.corpus.size()].schema;
    ++i;
    auto features = BuildSchemaFeatures(schema, options);
    ComputeSignature(features.get(), nullptr);
    benchmark::DoNotOptimize(features->signature.crc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureBuild)->Arg(1000)->Unit(benchmark::kMicrosecond);

// --- 2. the screen ----------------------------------------------------------------

void BM_SignatureScreen(benchmark::State& state) {
  const FeatureSet& set = SharedFeatures(1000);
  const SchemaSignature& query = set.features[0]->signature;
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += EstimatedSimilarity(query,
                                set.features[i % set.features.size()]
                                    ->signature);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureScreen)->Unit(benchmark::kNanosecond);

// --- 3. the phase-2 kernel --------------------------------------------------------

void BM_EnsembleLegacy(benchmark::State& state) {
  const FeatureSet& set = SharedFeatures(1000);
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  const Schema& query = *set.schemas[0];
  size_t i = 1;
  for (auto _ : state) {
    const size_t c = 1 + (i % (set.schemas.size() - 1));
    ++i;
    benchmark::DoNotOptimize(ensemble.Match(query, *set.schemas[c]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnsembleLegacy)->Unit(benchmark::kMicrosecond);

void BM_EnsemblePrepared(benchmark::State& state) {
  const FeatureSet& set = SharedFeatures(1000);
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  const Schema& query = *set.schemas[0];
  MatchScratch scratch;
  size_t i = 1;
  for (auto _ : state) {
    const size_t c = 1 + (i % (set.schemas.size() - 1));
    ++i;
    MatchContext context{set.features[0].get(), set.features[c].get(),
                         &scratch};
    benchmark::DoNotOptimize(
        ensemble.Match(query, *set.schemas[c], nullptr, nullptr, &context));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnsemblePrepared)->Unit(benchmark::kMicrosecond);

// --- 4. the innermost loop --------------------------------------------------------

void BM_DiceLegacy(benchmark::State& state) {
  NgramProfile a = BuildNgramProfile("patient_record_history", 2, 4);
  NgramProfile b = BuildNgramProfile("patientrecordhistoric", 2, 4);
  double sink = 0.0;
  for (auto _ : state) sink += DiceSimilarity(a, b);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DiceLegacy)->Unit(benchmark::kNanosecond);

void BM_DicePacked(benchmark::State& state) {
  PackedProfile a =
      PackProfile(BuildNgramProfile("patient_record_history", 2, 4));
  PackedProfile b =
      PackProfile(BuildNgramProfile("patientrecordhistoric", 2, 4));
  double sink = 0.0;
  for (auto _ : state) sink += PackedDice(a, b);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DicePacked)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
