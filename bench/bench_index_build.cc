// Experiment E2 (DESIGN.md): the offline text indexer that runs "at
// scheduled intervals" (paper Fig. 5).
//
// Measures full rebuild throughput versus corpus size, incremental
// Refresh() cost when little changed, and segment save/load -- the three
// operations a scheduled indexer performs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "index/indexer.h"

namespace schemr {
namespace {

void BM_IndexRebuild(benchmark::State& state) {
  const CorpusFixture& fixture =
      bench::SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Indexer indexer;
    auto stats = indexer.RebuildFromRepository(*fixture.repository);
    if (!stats.ok()) state.SkipWithError("rebuild failed");
    benchmark::DoNotOptimize(indexer.index().NumTerms());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["schemas"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IndexRebuild)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_IndexRefreshNoChanges(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(5000);
  Indexer indexer;
  if (!indexer.RebuildFromRepository(*fixture.repository).ok()) {
    state.SkipWithError("rebuild failed");
    return;
  }
  for (auto _ : state) {
    auto stats = indexer.Refresh(*fixture.repository);
    if (!stats.ok()) state.SkipWithError("refresh failed");
    benchmark::DoNotOptimize(stats->schemas_indexed);
  }
}
BENCHMARK(BM_IndexRefreshNoChanges)->Unit(benchmark::kMillisecond);

void BM_IndexIncrementalOneSchema(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(5000);
  Indexer indexer;
  if (!indexer.RebuildFromRepository(*fixture.repository).ok()) {
    state.SkipWithError("rebuild failed");
    return;
  }
  Schema schema = fixture.corpus[0].schema;
  schema.set_id(fixture.ids[0]);
  for (auto _ : state) {
    if (!indexer.IndexSchema(schema).ok()) {
      state.SkipWithError("index failed");
    }
  }
}
BENCHMARK(BM_IndexIncrementalOneSchema)->Unit(benchmark::kMicrosecond);

void BM_IndexSegmentSave(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(5000);
  std::string path =
      (std::filesystem::temp_directory_path() / "schemr_bench.idx").string();
  for (auto _ : state) {
    if (!fixture.index().Save(path).ok()) state.SkipWithError("save failed");
  }
  state.counters["bytes"] =
      static_cast<double>(std::filesystem::file_size(path));
  std::filesystem::remove(path);
}
BENCHMARK(BM_IndexSegmentSave)->Unit(benchmark::kMillisecond);

void BM_IndexSegmentLoad(benchmark::State& state) {
  const CorpusFixture& fixture = bench::SharedFixture(5000);
  std::string path =
      (std::filesystem::temp_directory_path() / "schemr_bench.idx").string();
  if (!fixture.index().Save(path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = InvertedIndex::Load(path);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded->NumDocs());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_IndexSegmentLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
