// Experiment E10 (DESIGN.md): corpus preparation -- the paper filtered
// 10M raw web tables down to 30,000 quality schemas by dropping
// non-alphabetic headers, singletons, and trivial (≤3-element) tables.
//
// Measures raw generation and filter throughput at increasing crawl sizes
// and reports the selectivity of each rule as counters, so the filter's
// shape (most of a raw crawl is junk/duplicates) is visible.

#include <benchmark/benchmark.h>

#include "corpus/web_tables.h"

namespace schemr {
namespace {

void BM_GenerateRawCrawl(benchmark::State& state) {
  WebTableGenOptions options;
  options.num_tables = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto tables = GenerateRawWebTables(options);
    benchmark::DoNotOptimize(tables.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateRawCrawl)->Arg(10000)->Arg(50000)->Unit(
    benchmark::kMillisecond);

void BM_FilterWebTables(benchmark::State& state) {
  WebTableGenOptions options;
  options.num_tables = static_cast<size_t>(state.range(0));
  std::vector<RawWebTable> raw = GenerateRawWebTables(options);
  WebTableFilterStats stats;
  for (auto _ : state) {
    auto schemas = FilterWebTables(raw, &stats);
    benchmark::DoNotOptimize(schemas.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["kept"] = static_cast<double>(stats.kept);
  state.counters["non_alpha"] =
      static_cast<double>(stats.dropped_non_alphabetic);
  state.counters["trivial"] = static_cast<double>(stats.dropped_trivial);
  state.counters["singleton"] = static_cast<double>(stats.dropped_singleton);
  state.counters["dups"] = static_cast<double>(stats.duplicates_collapsed);
}
BENCHMARK(BM_FilterWebTables)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_FingerprintTable(benchmark::State& state) {
  WebTableGenOptions options;
  options.num_tables = 1000;
  std::vector<RawWebTable> raw = GenerateRawWebTables(options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TableFingerprint(raw[i++ % raw.size()]));
  }
}
BENCHMARK(BM_FingerprintTable)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace schemr

BENCHMARK_MAIN();
