#include "service/http_introspection.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace schemr {

namespace {

struct IntrospectionMetrics {
  Counter* requests;
  Counter* errors;
  Counter* rejected;

  static const IntrospectionMetrics& Get() {
    static const IntrospectionMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new IntrospectionMetrics{
          r.GetCounter("schemr_introspection_requests_total",
                       "HTTP requests handled by the introspection "
                       "listener."),
          r.GetCounter("schemr_introspection_errors_total",
                       "Introspection responses with a non-200 status."),
          r.GetCounter("schemr_introspection_rejected_total",
                       "Connections answered 503 because the handler pool "
                       "was saturated."),
      };
    }();
    return *metrics;
  }
};

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

void SetSocketTimeout(int fd, double seconds) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Sends all of `data`, tolerating short writes. False on any error.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Reads until the end of the request head (CRLFCRLF) or `max_bytes`.
/// Returns false on socket error/timeout before a complete head arrived.
bool ReadRequestHead(int fd, size_t max_bytes, std::string* head) {
  char buf[1024];
  while (head->size() < max_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  // Head overran the cap; the caller answers 431.
  return true;
}

/// Parses "GET /path?query HTTP/1.1" (the first line of the head).
bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const size_t eol = head.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? head : head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    request->path = std::move(target);
  } else {
    request->path = target.substr(0, q);
    request->query = target.substr(q + 1);
  }
  return true;
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionOptions options)
    : options_(options) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status IntrospectionServer::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::InvalidArgument("introspection server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("introspection socket() failed");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad introspection bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot bind introspection port " +
                           std::to_string(options_.port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("introspection listen() failed: ") +
                           std::strerror(err));
  }
  // Resolve the actually bound port (meaningful when port was 0).
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  BoundedExecutor::Options pool;
  pool.num_workers = std::max<size_t>(1, options_.handler_threads);
  pool.queue_capacity = std::max<size_t>(1, options_.max_pending_connections);
  handlers_ = std::make_unique<BoundedExecutor>(pool);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&IntrospectionServer::AcceptLoop, this);
  return Status::OK();
}

void IntrospectionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Give in-flight handlers a moment; stragglers are cancelled (their
  // connection is closed without a response, which a scraper treats like
  // any other connection loss).
  if (handlers_ != nullptr) (void)handlers_->Shutdown(1.0);
}

void IntrospectionServer::AcceptLoop() {
  // Poll with a short tick instead of blocking in accept(): Stop() only
  // has to flip a flag, never race a close() against a blocked accept.
  struct pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    SetSocketTimeout(conn, options_.io_timeout_seconds);
    Status submitted = handlers_->TrySubmit([this, conn](bool cancelled) {
      if (cancelled) {
        ::close(conn);
        return;
      }
      ServeConnection(conn);
    });
    if (!submitted.ok()) {
      // Handler pool saturated: shed on the acceptor thread with a tiny
      // fixed response, mirroring the search plane's overload behavior.
      IntrospectionMetrics::Get().rejected->Increment();
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = "introspection overloaded\n";
      WriteResponse(conn, overloaded);
      ::close(conn);
    }
  }
}

void IntrospectionServer::WriteResponse(int fd, const HttpResponse& response) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                response.status, ReasonPhrase(response.status),
                response.content_type.c_str(), response.body.size());
  if (SendAll(fd, head)) (void)SendAll(fd, response.body);
}

void IntrospectionServer::ServeConnection(int fd) {
  IntrospectionMetrics::Get().requests->Increment();
  std::string head;
  HttpResponse response;
  HttpRequest request;
  if (!ReadRequestHead(fd, options_.max_request_bytes, &head)) {
    ::close(fd);  // peer vanished or stalled past the timeout; no answer
    return;
  }
  if (head.size() >= options_.max_request_bytes) {
    response.status = 431;
    response.body = "request head too large\n";
  } else if (!ParseRequestLine(head, &request)) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else if (request.method != "GET") {
    response.status = 405;
    response.body = "introspection endpoints are GET-only\n";
  } else {
    auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "no such endpoint: " + request.path + "\n";
      response.body += "endpoints:";
      for (const auto& [path, handler] : routes_) {
        (void)handler;
        response.body += " " + path;
      }
      response.body += "\n";
    } else {
      response = it->second(request);
    }
  }
  if (response.status != 200) {
    IntrospectionMetrics::Get().errors->Increment();
  }
  WriteResponse(fd, response);
  ::close(fd);
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path,
                            double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  SetSocketTimeout(fd, timeout_seconds);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host +
                                   "' (dotted IPv4 expected)");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port) + ": " + std::strerror(err));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\n"
                              "Host: " +
                              host +
                              "\r\n"
                              "Connection: close\r\n"
                              "\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IOError("request write failed");
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t body_at = reply.find("\r\n\r\n");
  size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = reply.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) {
    return Status::IOError("malformed HTTP response (no header terminator)");
  }
  // "HTTP/1.1 200 OK"
  int status = 0;
  const size_t sp = reply.find(' ');
  if (sp != std::string::npos) status = std::atoi(reply.c_str() + sp + 1);
  std::string body = reply.substr(body_at + skip);
  if (status != 200) {
    return Status::Unavailable("http " + std::to_string(status) + ": " +
                               body.substr(0, 120));
  }
  return body;
}

}  // namespace schemr
