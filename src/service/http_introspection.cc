#include "service/http_introspection.h"

#include <utility>

namespace schemr {

namespace {

HttpServerOptions ToServerOptions(const IntrospectionOptions& options) {
  HttpServerOptions server;
  server.port = options.port;
  server.bind_address = options.bind_address;
  server.handler_threads = options.handler_threads;
  server.max_pending_connections = options.max_pending_connections;
  server.max_request_bytes = options.max_request_bytes;
  server.max_body_bytes = 0;  // introspection requests carry no body
  server.header_timeout_seconds = options.io_timeout_seconds;
  server.body_timeout_seconds = options.io_timeout_seconds;
  server.write_timeout_seconds = options.io_timeout_seconds;
  return server;
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionOptions options)
    : options_(std::move(options)),
      server_(std::make_unique<HttpServer>(ToServerOptions(options_))) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Route(std::string path, Handler handler) {
  server_->Route("GET", std::move(path), std::move(handler));
}

Status IntrospectionServer::Start() { return server_->Start(); }

void IntrospectionServer::Stop() { server_->Stop(/*drain_seconds=*/1.0); }

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path,
                            double timeout_seconds) {
  HttpCallOptions options;
  options.attempt_timeout_seconds = timeout_seconds;
  Result<HttpReply> reply = HttpCall(host, port, path, options);
  if (!reply.ok()) return reply.status();
  if (reply->status == 200) return std::move(reply->body);
  std::string prefix = reply->body.substr(0, 120);
  return Status::Unavailable("http " + std::to_string(reply->status) + ": " +
                             prefix);
}

}  // namespace schemr
