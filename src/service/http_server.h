// Shared, hardened HTTP/1.1 server (DESIGN.md §13).
//
// PR 6's introspection listener proved the shape — a dedicated acceptor
// thread feeding a BoundedExecutor handler pool, inline 503 shedding, one
// request per connection — but it only ever faced cooperative loopback
// scrapers. This module promotes that plumbing into a front end fit for
// misbehaving clients, because the search plane now serves over it:
//
//   * Timeout ladder: separate header, body, and write deadlines per
//     connection (slowloris defense). A peer that stalls past a deadline
//     gets 408 and the socket back.
//   * Bounded input: the request head is capped (431 beyond it) and the
//     body is capped (413), with Content-Length validated strictly —
//     non-numeric, signed, duplicated-and-disagreeing, or overflowing
//     values are refused before a single body byte is read.
//   * Hard connection cap: accepted sockets beyond `max_connections` are
//     answered 503 with Retry-After inline on the acceptor thread, the
//     same shape the admission layer uses for search sheds.
//   * Robust acceptor: transient accept() failures (EINTR, ECONNABORTED,
//     EMFILE/ENFILE, ENOBUFS) back off briefly and retry instead of
//     looping hot or killing the listener; accepted sockets are
//     FD_CLOEXEC so serving never leaks fds into forked children.
//   * Fault injection: every socket op threads through the net/* fault
//     sites (util/fault_injection.h), so the chaos harness can reset,
//     truncate, and stall real connections under sanitizers.
//   * Graceful drain: BeginDrain() refuses new connections (the listener
//     closes, so clients see a clean connect failure they may retry
//     elsewhere) while in-flight responses finish; Stop() then joins the
//     handler pool under a deadline.
//
// Still deliberately NOT a general web server: no keep-alive, no chunked
// encoding, no TLS; one exact-match-routed request per connection,
// GET/POST only. Anything fancier belongs in a reverse proxy.
//
// Thread safety: Route before Start; Start/BeginDrain/Stop may race with
// each other and are idempotent; handlers run concurrently on the pool
// and must be thread-safe themselves.

#ifndef SCHEMR_SERVICE_HTTP_SERVER_H_
#define SCHEMR_SERVICE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/executor.h"
#include "util/status.h"

namespace schemr {

/// One parsed request.
struct HttpRequest {
  std::string method;  ///< "GET" or "POST"
  std::string path;    ///< "/search" (query string stripped)
  std::string query;   ///< "window=60" (without the '?'; may be empty)
  /// Header fields, names lowercased, values trimmed of surrounding
  /// whitespace. Later duplicates overwrite earlier ones, except
  /// Content-Length, where a disagreeing duplicate is a 400.
  std::map<std::string, std::string> headers;
  std::string body;  ///< exactly Content-Length bytes (empty without one)

  /// Header value by lowercase name, or nullptr.
  const std::string* FindHeader(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? nullptr : &it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// When >= 0, emitted as a Retry-After header (whole seconds).
  double retry_after_seconds = -1.0;
  /// Extra response headers, emitted verbatim (name, value).
  std::vector<std::pair<std::string, std::string>> headers;
};

struct HttpServerOptions {
  /// Port to bind (0 = kernel-assigned ephemeral; read port() after
  /// Start).
  int port = 0;
  /// Loopback by default; a search front end fronting real clients binds
  /// wider explicitly.
  std::string bind_address = "127.0.0.1";
  /// Handler pool size: connections served concurrently.
  size_t handler_threads = 2;
  /// Accepted connections waiting for a handler beyond this are answered
  /// 503 by the acceptor itself.
  size_t max_pending_connections = 16;
  /// Hard cap on accepted connections alive at once (queued + in
  /// handlers). Beyond it the acceptor sheds inline with 503 Retry-After.
  size_t max_connections = 128;
  /// Request head larger than this is answered 431.
  size_t max_request_bytes = 8192;
  /// Declared (or implied) body larger than this is answered 413.
  size_t max_body_bytes = 1 << 20;
  /// The complete request head must arrive within this (slowloris
  /// defense); a stall past it is answered 408.
  double header_timeout_seconds = 5.0;
  /// The complete body must arrive within this after the head; 408 on
  /// stall.
  double body_timeout_seconds = 10.0;
  /// Per-send socket timeout while writing the response.
  double write_timeout_seconds = 5.0;
  /// Retry-After value on inline acceptor sheds, in seconds.
  double shed_retry_after_seconds = 1.0;
};

// --- pure request-head parsing (fuzzable without sockets) -------------------

/// Outcome of parsing a (possibly incomplete) request head.
enum class HttpParseOutcome {
  kComplete,        ///< head parsed; request line + headers valid
  kNeedMore,        ///< no head terminator yet; read more bytes
  kBadRequest,      ///< 400: malformed request line, header, or length
  kHeadTooLarge,    ///< 431: no terminator within the head cap
  kBodyTooLarge,    ///< 413: Content-Length beyond the body cap
  kUnsupported,     ///< 501: Transfer-Encoding (chunked) requested
};

struct ParsedRequestHead {
  HttpRequest request;    ///< filled on kComplete (body NOT read here)
  size_t head_bytes = 0;  ///< bytes consumed through the terminator
  /// Declared body length; a request without Content-Length has a
  /// zero-length body (no Transfer-Encoding support).
  uint64_t content_length = 0;
};

/// Parses the request head at the front of `data`. Never reads past
/// `data.size()`, never throws; `max_head_bytes`/`max_body_bytes` bound
/// what it will accept. Exposed so the property tests can feed it
/// truncated, flipped, pipelined, and oversized inputs directly.
HttpParseOutcome ParseRequestHead(std::string_view data,
                                  size_t max_head_bytes,
                                  size_t max_body_bytes,
                                  ParsedRequestHead* out);

/// The HTTP status a non-kComplete outcome maps to (400/431/413/501;
/// stalls become 408 in the socket layer, not here). kNeedMore maps to
/// 0 (keep reading).
int HttpStatusForOutcome(HttpParseOutcome outcome);

// --- pure response-head parsing (fuzzable without sockets) ------------------

/// Outcome of parsing a (possibly incomplete) response head. The client
/// treats kMalformed as a mid-exchange failure — never retried, because
/// the server may have executed the request before garbling its answer.
enum class HttpResponseOutcome {
  kComplete,   ///< status line + headers parsed
  kNeedMore,   ///< no head terminator within the data yet
  kMalformed,  ///< bad status line, status code, or header field
};

struct ParsedResponseHead {
  int status = 0;  ///< 100..599 on kComplete
  /// Header fields, names lowercased, values trimmed. Later duplicates
  /// overwrite earlier ones (a duplicate Retry-After last-wins and is
  /// still clamped by HttpCallOptions::max_retry_after_seconds), except
  /// Content-Length, where a disagreeing duplicate is kMalformed — the
  /// same smuggling defense the request parser applies.
  std::map<std::string, std::string> headers;
  size_t head_bytes = 0;  ///< bytes consumed through the terminator
};

/// Parses the response head at the front of `data`: status line
/// (`HTTP/x.y NNN reason`, status strictly three digits in 100..599, the
/// reason phrase free-form but bounded by the head cap) followed by
/// header fields. Never reads past `data.size()`, never throws. This
/// parser sits on the coordinator's failover hot path, so it is exposed
/// for the same seeded property fuzz ParseRequestHead gets — truncated
/// status lines, oversized reason phrases, and duplicate Retry-After
/// included.
HttpResponseOutcome ParseResponseHead(std::string_view data,
                                      size_t max_head_bytes,
                                      ParsedResponseHead* out);

// --- the server -------------------------------------------------------------

/// Point-in-time counters for one server instance (process-wide series
/// with the same names live in the metrics registry as schemr_http_*).
struct HttpServerStats {
  uint64_t connections = 0;  ///< accepted sockets, lifetime
  uint64_t shed = 0;         ///< inline 503s (connection cap or pool full)
  uint64_t timeouts = 0;     ///< 408s (header or body stall)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t active = 0;       ///< accepted sockets currently alive
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match route for one method ("GET", "/statusz").
  /// A path registered under a different method answers 405; an unknown
  /// path 404. Call before Start.
  void Route(std::string method, std::string path, Handler handler);

  /// Binds, listens, and starts the acceptor thread and handler pool.
  /// IOError when the address cannot be bound; InvalidArgument when
  /// already started.
  Status Start();

  /// Graceful-drain entry: stops accepting and closes the listener (new
  /// connects fail cleanly) while in-flight handlers keep running.
  /// Idempotent; safe to race with Stop.
  void BeginDrain();

  /// BeginDrain, then gives in-flight handlers up to `drain_seconds` to
  /// finish before cancelling stragglers (their connections close without
  /// a response). Idempotent.
  void Stop(double drain_seconds = 1.0);

  /// The actually bound port (resolves port 0), or 0 before Start.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  HttpServerStats Stats() const;

  const HttpServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Formats and writes one response; returns false when the connection
  /// died mid-write (the server never retries a response).
  bool WriteResponse(int fd, const HttpResponse& response);
  /// `lingering` half-closes and drains unread input first, so a
  /// just-written response (e.g. an early 503/413 while the peer is
  /// still sending) survives instead of being discarded by an RST.
  void CloseConnection(int fd, bool lingering = false);

  const HttpServerOptions options_;
  /// path → (method → handler); two-level so 405 and 404 stay distinct.
  std::map<std::string, std::map<std::string, Handler>> routes_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::mutex lifecycle_mutex_;  ///< serializes Start/BeginDrain/Stop
  std::thread acceptor_;
  std::unique_ptr<BoundedExecutor> handlers_;

  // Per-instance stats (also mirrored into the global schemr_http_*
  // metrics).
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> active_{0};
};

// --- client -----------------------------------------------------------------

/// One HTTP exchange's result, whatever the status code.
struct HttpReply {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased names
  std::string body;
  int attempts = 1;  ///< how many attempts HttpCall spent (retries + 1)
};

/// Retry/backoff policy for HttpCall. The retry contract is deliberately
/// narrow: an attempt is retried ONLY when it is provably safe —
/// (a) connect() itself failed, so no request bytes ever left, or
/// (b) the server answered a complete 503 carrying Retry-After, an
/// explicit "come back later". Mid-exchange failures (send/recv errors,
/// truncated responses) are NEVER retried: the server may have executed
/// the request, and a search front end must not double-execute on
/// ambiguity. Backoff is capped exponential with deterministic jitter
/// (seeded, so tests and the load generator replay identical schedules).
struct HttpCallOptions {
  std::string method = "GET";
  std::string body;
  std::string content_type = "application/xml";
  /// Extra request headers (name, value), emitted verbatim.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Wall-clock budget per attempt (connect + send + receive).
  double attempt_timeout_seconds = 5.0;
  /// Total attempts (1 = never retry).
  int max_attempts = 1;
  /// Backoff before retry k (1-based): min(base * 2^(k-1), max), scaled
  /// by a deterministic jitter in [0.5, 1.0].
  double backoff_base_ms = 50.0;
  double backoff_max_ms = 2000.0;
  /// Seed for the jitter stream (same seed → same backoff schedule).
  uint64_t jitter_seed = 1;
  /// A 503's Retry-After floor is honored up to this many seconds (a
  /// hostile or confused server cannot park the client for minutes).
  double max_retry_after_seconds = 5.0;
};

/// Cancellation handle for one in-flight HttpAttempt, built for request
/// hedging: the coordinator launches a backup attempt after a
/// p95-derived delay and cancels the loser by closing its socket. The
/// token owns the race between Cancel() and the attempt's own close():
/// the attempt registers its socket under the token's lock and
/// deregisters before closing, so Cancel never touches a reused fd.
class HttpCancelToken {
 public:
  HttpCancelToken() = default;
  HttpCancelToken(const HttpCancelToken&) = delete;
  HttpCancelToken& operator=(const HttpCancelToken&) = delete;

  /// Shuts down the registered attempt socket (if any), making the
  /// attempt fail promptly with kBroken. An attempt started after
  /// Cancel() fails before connecting. Idempotent, thread-safe.
  void Cancel();
  bool cancelled() const;

  /// Internal registration by HttpAttempt. RegisterFd returns false when
  /// the token is already cancelled (the attempt must not proceed).
  bool RegisterFd(int fd);
  void DeregisterFd();

 private:
  mutable std::mutex mutex_;
  int fd_ = -1;
  bool cancelled_ = false;
};

/// One HTTP exchange's outcome, classified for the retry/failover
/// decision. kConnectFailed is the only "nothing was sent" class; kOk is
/// any complete response (the caller branches on status); kBroken is a
/// mid-exchange failure — ambiguous, because the server may have
/// executed the request.
struct HttpAttemptResult {
  enum class Kind {
    kOk,             ///< complete response parsed (any status)
    kConnectFailed,  ///< connect() failed: nothing was sent, safe to retry
    kBroken,         ///< failed mid-exchange: ambiguous, never retried here
  };
  Kind kind = Kind::kBroken;
  HttpReply reply;
  std::string error;
};

/// Performs exactly one HTTP/1.1 exchange (Connection: close), no
/// retries, no backoff. This is the coordinator's building block: it
/// decides failover itself from the returned Kind, and threads a cancel
/// token through for hedging. Counts into schemr_client_attempts_total.
HttpAttemptResult HttpAttempt(const std::string& host, int port,
                              const std::string& path,
                              const HttpCallOptions& options = {},
                              HttpCancelToken* cancel = nullptr);

/// Performs one HTTP/1.1 call (Connection: close) with the retry policy
/// above. Returns the final reply for ANY complete response, 200 or not —
/// callers branch on reply.status. IOError only when no attempt produced
/// a complete response.
Result<HttpReply> HttpCall(const std::string& host, int port,
                           const std::string& path,
                           const HttpCallOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_SERVICE_HTTP_SERVER_H_
