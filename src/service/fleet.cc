#include "service/fleet.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "service/http_server.h"
#include "util/timer.h"

namespace schemr {

namespace {

/// Parses "introspection: http://127.0.0.1:PORT ..." and
/// "search: http://127.0.0.1:PORT/search" from a replica's stdout.
bool ParsePortLine(const std::string& line, const char* prefix, int* port) {
  const std::string needle = std::string(prefix) + ": http://127.0.0.1:";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *port = std::atoi(line.c_str() + at + needle.size());
  return *port > 0;
}

}  // namespace

Fleet::Fleet(FleetOptions options, CoordinatorOptions coordinator)
    : options_(std::move(options)),
      coordinator_options_(std::move(coordinator)) {}

Fleet::~Fleet() { Shutdown(); }

std::string Fleet::ReplicaRepoDir(int id) const {
  if (!options_.copy_repo) return options_.repo_dir;
  return options_.repo_dir + ".replica" + std::to_string(id);
}

Result<Fleet::Replica> Fleet::Spawn(int id, const std::string& repo_dir) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe() failed: ") +
                           std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IOError(std::string("fork() failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout → pipe (the parent reads the port lines), stderr
    // inherited so drain logs land in the operator's terminal.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    const std::string workers = std::to_string(options_.serve_workers);
    const std::string cache = std::to_string(options_.serve_cache);
    const std::string sample_every =
        std::to_string(options_.serve_sample_every);
    std::vector<const char*> argv = {options_.binary_path.c_str(),
                                     "serve",
                                     repo_dir.c_str(),
                                     "--port",
                                     "0",
                                     "--search-port",
                                     "0",
                                     "--workers",
                                     workers.c_str(),
                                     "--cache",
                                     cache.c_str()};
    if (options_.serve_sample_every > 0) {
      argv.push_back("--sample-every");
      argv.push_back(sample_every.c_str());
    }
    argv.push_back(nullptr);
    ::execv(options_.binary_path.c_str(), const_cast<char**>(argv.data()));
    std::fprintf(stderr, "fleet: execv(%s) failed: %s\n",
                 options_.binary_path.c_str(), std::strerror(errno));
    ::_exit(127);
  }

  // Parent: read the two port lines with a deadline. The pipe stays
  // open for the replica's lifetime (it writes nothing further).
  ::close(pipe_fds[1]);
  const int flags = ::fcntl(pipe_fds[0], F_GETFL, 0);
  (void)::fcntl(pipe_fds[0], F_SETFL, flags | O_NONBLOCK);
  Replica replica;
  replica.pid = pid;
  replica.stdout_fd = pipe_fds[0];
  replica.repo_dir = repo_dir;
  replica.config.host = "127.0.0.1";
  replica.config.name = "replica" + std::to_string(id);

  std::string buffered;
  const Timer timer;
  while (timer.ElapsedSeconds() < options_.ready_timeout_seconds) {
    struct pollfd pfd = {pipe_fds[0], POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready > 0) {
      char buf[512];
      const ssize_t n = ::read(pipe_fds[0], buf, sizeof(buf));
      if (n > 0) buffered.append(buf, static_cast<size_t>(n));
      if (n == 0) break;  // EOF: the child died before printing ports
    }
    size_t eol;
    while ((eol = buffered.find('\n')) != std::string::npos) {
      const std::string line = buffered.substr(0, eol);
      buffered.erase(0, eol + 1);
      int port = 0;
      if (ParsePortLine(line, "introspection", &port)) {
        replica.config.introspection_port = port;
      } else if (ParsePortLine(line, "search", &port)) {
        replica.config.search_port = port;
      }
    }
    if (replica.config.introspection_port > 0 &&
        replica.config.search_port > 0) {
      return replica;
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      ::close(pipe_fds[0]);
      return Status::IOError("replica " + std::to_string(id) +
                             " exited before serving (status " +
                             std::to_string(status) + ")");
    }
  }
  // Timed out: put the child down before reporting.
  ::kill(pid, SIGKILL);
  (void)::waitpid(pid, nullptr, 0);
  ::close(pipe_fds[0]);
  return Status::Unavailable("replica " + std::to_string(id) +
                                  " did not report its ports within " +
                                  std::to_string(
                                      options_.ready_timeout_seconds) +
                                  "s");
}

Status Fleet::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return Status::InvalidArgument("fleet already started");
    started_ = true;
  }
  if (options_.replicas < 1) {
    return Status::InvalidArgument("fleet needs at least one replica");
  }
  std::vector<BackendConfig> configs;
  std::vector<Replica> replicas;
  for (int i = 0; i < options_.replicas; ++i) {
    const std::string dir = ReplicaRepoDir(i);
    if (options_.copy_repo) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      std::filesystem::copy(options_.repo_dir, dir,
                            std::filesystem::copy_options::recursive, ec);
      if (ec) {
        for (Replica& r : replicas) {
          ::kill(r.pid, SIGKILL);
          (void)::waitpid(r.pid, nullptr, 0);
          ::close(r.stdout_fd);
        }
        return Status::IOError("copying repo for replica " +
                               std::to_string(i) + ": " + ec.message());
      }
    }
    Result<Replica> spawned = Spawn(i, dir);
    if (!spawned.ok()) {
      for (Replica& r : replicas) {
        ::kill(r.pid, SIGKILL);
        (void)::waitpid(r.pid, nullptr, 0);
        ::close(r.stdout_fd);
      }
      return spawned.status();
    }
    configs.push_back(spawned->config);
    replicas.push_back(std::move(*spawned));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    replicas_ = std::move(replicas);
  }
  coordinator_ =
      std::make_unique<Coordinator>(std::move(configs), coordinator_options_);
  Status started = coordinator_->Start();
  if (!started.ok()) return started;
  for (int i = 0; i < options_.replicas; ++i) {
    Status ready = WaitRoutable(i, options_.ready_timeout_seconds);
    if (!ready.ok()) return ready;
  }
  return Status::OK();
}

void Fleet::ReapLocked(Replica* replica) {
  if (replica->pid > 0) (void)::waitpid(replica->pid, nullptr, 0);
  if (replica->stdout_fd >= 0) ::close(replica->stdout_fd);
  replica->pid = -1;
  replica->stdout_fd = -1;
}

void Fleet::StopReplica(int id, double timeout_seconds) {
  pid_t pid;
  int introspection_port;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || static_cast<size_t>(id) >= replicas_.size()) return;
    pid = replicas_[id].pid;
    introspection_port = replicas_[id].config.introspection_port;
  }
  if (pid <= 0) return;
  ::kill(pid, SIGINT);
  // Wait for the drain: the process exits once Shutdown() completes; on
  // the way there /healthz reports `shut_down`. Escalate past the
  // deadline — a wedged drain must not wedge the restart.
  const Timer timer;
  bool exited = false;
  while (timer.ElapsedSeconds() < timeout_seconds) {
    if (::waitpid(pid, nullptr, WNOHANG) == pid) {
      exited = true;
      break;
    }
    HttpCallOptions probe;
    probe.attempt_timeout_seconds = 0.5;
    auto health = HttpCall("127.0.0.1", introspection_port, "/healthz", probe);
    if (health.ok() && health->body.find("shut_down") != std::string::npos) {
      // Drained; the exit follows immediately.
      (void)::waitpid(pid, nullptr, 0);
      exited = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!exited) {
    ::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (replicas_[id].stdout_fd >= 0) ::close(replicas_[id].stdout_fd);
  replicas_[id].pid = -1;
  replicas_[id].stdout_fd = -1;
}

Status Fleet::RestartReplica(int id) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || static_cast<size_t>(id) >= replicas_.size()) {
      return Status::InvalidArgument("no replica " + std::to_string(id));
    }
    ReapLocked(&replicas_[id]);
    dir = replicas_[id].repo_dir;
  }
  Result<Replica> spawned = Spawn(id, dir);
  if (!spawned.ok()) return spawned.status();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    replicas_[id] = std::move(*spawned);
  }
  if (coordinator_ != nullptr) {
    coordinator_->pool().UpdateBackend(id, ReplicaConfig(id));
  }
  return Status::OK();
}

Status Fleet::WaitRoutable(int id, double timeout_seconds) {
  if (coordinator_ == nullptr) {
    return Status::InvalidArgument("fleet not started");
  }
  const Timer timer;
  while (timer.ElapsedSeconds() < timeout_seconds) {
    const auto snapshot = coordinator_->pool().Snapshot();
    if (id >= 0 && static_cast<size_t>(id) < snapshot.size() &&
        snapshot[id].routable) {
      return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Status::Unavailable("replica " + std::to_string(id) +
                                  " not routable after " +
                                  std::to_string(timeout_seconds) + "s");
}

Status Fleet::RollingRestart() {
  if (coordinator_ == nullptr) {
    return Status::InvalidArgument("fleet not started");
  }
  for (int i = 0; i < options_.replicas; ++i) {
    BackendPool& pool = coordinator_->pool();
    // 1. Stop routing to it (in-flight requests finish normally).
    pool.SetDraining(i, true);
    // 2+3. SIGINT and wait for the drain to complete.
    StopReplica(i, options_.ready_timeout_seconds);
    // 4. Respawn over the same repo copy and re-point the pool slot.
    Status restarted = RestartReplica(i);
    if (!restarted.ok()) {
      pool.SetDraining(i, false);
      return restarted;
    }
    // 5. Only move to the next replica once this one is back: that is
    // the N−1 invariant.
    pool.SetDraining(i, false);
    Status ready = WaitRoutable(i, options_.ready_timeout_seconds);
    if (!ready.ok()) return ready;
  }
  return Status::OK();
}

int Fleet::SupervisePass() {
  int respawned = 0;
  for (int i = 0; i < options_.replicas; ++i) {
    pid_t pid;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (static_cast<size_t>(i) >= replicas_.size()) break;
      pid = replicas_[i].pid;
    }
    if (pid <= 0) continue;  // planned stop in progress
    if (::waitpid(pid, nullptr, WNOHANG) == pid) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (replicas_[i].pid == pid) {
          if (replicas_[i].stdout_fd >= 0) ::close(replicas_[i].stdout_fd);
          replicas_[i].pid = -1;
          replicas_[i].stdout_fd = -1;
        }
      }
      if (RestartReplica(i).ok()) ++respawned;
    }
  }
  return respawned;
}

Status Fleet::KillReplica(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= replicas_.size() ||
      replicas_[id].pid <= 0) {
    return Status::InvalidArgument("no live replica " + std::to_string(id));
  }
  ::kill(replicas_[id].pid, SIGKILL);
  return Status::OK();
}

Status Fleet::StallReplica(int id, bool stalled) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= replicas_.size() ||
      replicas_[id].pid <= 0) {
    return Status::InvalidArgument("no live replica " + std::to_string(id));
  }
  ::kill(replicas_[id].pid, stalled ? SIGSTOP : SIGCONT);
  return Status::OK();
}

pid_t Fleet::ReplicaPid(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= replicas_.size()) return -1;
  return replicas_[id].pid;
}

BackendConfig Fleet::ReplicaConfig(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= replicas_.size()) return {};
  return replicas_[id].config;
}

void Fleet::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || shut_down_) return;
    shut_down_ = true;
  }
  if (coordinator_ != nullptr) coordinator_->Shutdown(1.0);
  std::vector<Replica> replicas;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    replicas = std::move(replicas_);
    replicas_.clear();
  }
  // SIGINT everyone in parallel (SIGCONT first: a stalled replica
  // cannot drain), then reap with a shared deadline.
  for (Replica& r : replicas) {
    if (r.pid > 0) {
      ::kill(r.pid, SIGCONT);
      ::kill(r.pid, SIGINT);
    }
  }
  const Timer timer;
  for (Replica& r : replicas) {
    if (r.pid <= 0) {
      if (r.stdout_fd >= 0) ::close(r.stdout_fd);
      continue;
    }
    bool exited = false;
    while (timer.ElapsedSeconds() < 10.0) {
      if (::waitpid(r.pid, nullptr, WNOHANG) == r.pid) {
        exited = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!exited) {
      ::kill(r.pid, SIGKILL);
      (void)::waitpid(r.pid, nullptr, 0);
    }
    if (r.stdout_fd >= 0) ::close(r.stdout_fd);
  }
  if (options_.copy_repo && options_.cleanup_copies) {
    for (int i = 0; i < options_.replicas; ++i) {
      std::error_code ec;
      std::filesystem::remove_all(ReplicaRepoDir(i), ec);
    }
  }
}

}  // namespace schemr
