// Fault-tolerant serving tier over a replica fleet (DESIGN.md §14).
//
// A Coordinator fronts N independent `schemr serve` processes behind one
// HttpServer and exposes the same byte-identical POST /search: whatever
// bytes the chosen backend answered are what the client receives —
// status, body, Content-Type, Retry-After, and X-Schemr-* headers pass
// through untouched. On top of the BackendPool's health view it adds the
// forwarding policy:
//
//   * Deadline propagation: the client's X-Schemr-Deadline-Ms arrives
//     with some of its budget already spent here; each hop forwards the
//     REMAINING budget (original minus elapsed), so a failover chain
//     cannot overspend what the client granted.
//   * Failover: a connect failure (nothing was sent) or a complete 503
//     (the backend refused before executing — shed or draining) moves
//     the request to the next routable backend, excluding every backend
//     already tried. The response the client sees is always one
//     backend's complete answer; the coordinator never splices or
//     streams a partial body ("never mid-body").
//   * Torn exchanges: /search is a read-only RPC, so a response that
//     dies mid-exchange (backend killed or stalled while answering) is
//     ALSO failed over — re-executing a search is safe, unlike the
//     general case HttpCall's narrow retry contract protects. Routes
//     that are not provably idempotent must keep
//     `failover_on_broken = false`, which maps torn exchanges to an
//     inline 502 instead.
//   * Hedging: when enabled, a request still unanswered after a
//     p95-derived delay launches ONE backup attempt on a second backend;
//     the first complete response wins and the loser is cancelled by
//     closing its socket (HttpCancelToken).
//   * No healthy backend: an inline 503 + Retry-After carrying
//     `X-Schemr-Shed: queue_full` — the existing capacity-shed
//     vocabulary, because "every replica is down or draining" is a
//     capacity condition the client should back off from and retry.
//
// The coordinator serves its own introspection on the same listener:
// GET /healthz (liveness), /readyz (ready iff ≥1 routable backend),
// /statusz (flat JSON: coord.* plus per-backend keys), /metrics.

#ifndef SCHEMR_SERVICE_COORDINATOR_H_
#define SCHEMR_SERVICE_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "service/backend_pool.h"
#include "service/http_server.h"
#include "util/status.h"
#include "util/timer.h"

namespace schemr {

struct CoordinatorOptions {
  /// Listener configuration (port 0 = ephemeral; read port() after
  /// Start). Handler threads bound the coordinator's own concurrency.
  HttpServerOptions http;
  BackendPoolOptions pool;
  /// Additional backends tried after the first pick (failover budget).
  int max_failovers = 2;
  /// Treat torn backend exchanges as retryable (see header comment).
  /// Correct for /search because it is a read; a non-idempotent route
  /// would need this off.
  bool failover_on_broken = true;
  /// Tail hedging: one backup attempt after HedgeDelayMs() without an
  /// answer, first complete response wins, loser cancelled by close.
  bool hedge = true;
  /// Per-attempt wall-clock budget against a backend (further clamped
  /// by the request's remaining deadline when one is set).
  double attempt_timeout_seconds = 5.0;
  /// Retry-After on inline "no healthy backend" sheds, seconds.
  double shed_retry_after_seconds = 1.0;
  /// Tail-sampled retention for per-request hop journals (coordinator
  /// /tracez; DESIGN.md §15). Multi-hop and non-200 requests are always
  /// retained; healthy single-hop requests sample 1-in-N.
  TraceRetentionOptions trace_retention;
  /// Per-replica budget for federation scrapes (/metrics merge mode and
  /// the fleet.* /statusz aggregates). A replica that cannot answer its
  /// /metrics within this window is skipped, not waited for.
  double scrape_timeout_seconds = 1.0;
};

class Coordinator {
 public:
  Coordinator(std::vector<BackendConfig> backends,
              CoordinatorOptions options = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Starts the pool's probe thread and the HTTP listener.
  Status Start();

  /// Drains the listener, then stops the probe thread. Idempotent.
  void Shutdown(double drain_seconds = 2.0);

  int port() const;
  bool running() const;

  BackendPool& pool() { return *pool_; }
  const BackendPool& pool() const { return *pool_; }
  HttpServer* server() { return server_.get(); }

  /// Flat JSON (ParseBenchJson/checkjson-compatible): coord.* counters,
  /// fleet.* aggregates merged from ready replicas' /metrics, plus the
  /// pool's per-backend keys.
  std::string StatuszJson() const;

  /// The coordinator /tracez body: retained per-request hop journals
  /// (one line per backend attempt), joinable to replica traces by
  /// request id.
  std::string TracezJson() const;

  /// Scrapes every ready replica's /metrics and returns the bucket-wise
  /// merged snapshot list (original names — the /metrics merge mode
  /// renames to schemr_fleet_* on top). `scraped` (may be null) receives
  /// how many replicas contributed; dead or unparseable replicas are
  /// skipped without poisoning the merge.
  std::vector<MetricsRegistry::MetricSnapshot> FleetMergedSnapshots(
      size_t* scraped) const;

  /// Forwarding core, exposed for in-process tests: answers one /search
  /// request exactly as the HTTP handler would.
  HttpResponse ForwardSearch(const HttpRequest& request);

  /// The hop-journal retention rings (never null).
  TraceRetention* trace_retention() { return traces_.get(); }

 private:
  struct ForwardOutcome {
    HttpAttemptResult result;
    int backend = -1;
    bool hedge_won = false;  ///< the backup attempt produced the answer
  };

  /// One backend attempt in a request's journal: which backend, why it
  /// was chosen, how long the hop took, how it ended.
  struct HopRecord {
    int hop = 0;              ///< hop index; suffixes the forwarded id
    std::string backend;      ///< replica name ("replica1")
    const char* route = "primary";  ///< "primary" | "failover" | "hedge"
    double latency_ms = 0.0;
    std::string outcome;      ///< "ok:200", "connect_failed", "broken", ...
  };

  /// One routed attempt (with optional hedge) against backend `id`.
  /// Forwards `request_id` hop-suffixed per launched attempt (`next_hop`
  /// advances across the whole request) and appends the attempts to
  /// `journal`.
  ForwardOutcome AttemptBackend(int id, const HttpRequest& request,
                                double deadline_ms, double elapsed_ms,
                                const std::vector<int>& tried,
                                const std::string& request_id,
                                const char* route, int* next_hop,
                                std::vector<HopRecord>* journal);
  /// The failover/hedge loop; ForwardSearch wraps it with request-id
  /// minting, the echoed header, and journal retention.
  HttpResponse ForwardSearchInternal(const HttpRequest& request,
                                     const Timer& timer,
                                     const std::string& request_id,
                                     int* next_hop,
                                     std::vector<HopRecord>* journal);
  void RetainHopJournal(const std::string& request_id,
                        const std::vector<HopRecord>& journal, int status,
                        double total_seconds);
  HttpResponse PassThrough(const HttpAttemptResult& result) const;
  HttpResponse ShedNoBackend() const;

  const CoordinatorOptions options_;
  std::unique_ptr<BackendPool> pool_;
  std::unique_ptr<TraceRetention> traces_;
  std::unique_ptr<HttpServer> server_;
  std::atomic<bool> started_{false};
  Timer uptime_;
  std::atomic<bool> shut_down_{false};

  // Coordinator-level counters mirrored into schemr_coord_* metrics;
  // kept per-instance too so /statusz is cheap and self-contained.
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> hedges_lost_{0};
  std::atomic<uint64_t> no_backend_{0};
  std::atomic<uint64_t> bad_gateway_{0};
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_COORDINATOR_H_
