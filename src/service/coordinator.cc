#include "service/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/exposition.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/http_introspection.h"
#include "service/request_id.h"
#include "util/fault_injection.h"
#include "util/timer.h"
#include "util/xml_writer.h"

namespace schemr {

namespace {

// Process-wide schemr_coord_* request-path series (pool state gauges
// live in backend_pool.cc).
struct CoordMetrics {
  Counter* requests;
  Counter* failovers;
  Counter* hedges;
  Counter* hedges_won;
  Counter* hedges_lost;
  Counter* no_backend;
  Counter* bad_gateway;

  static const CoordMetrics& Get() {
    static const CoordMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new CoordMetrics{
          r.GetCounter("schemr_coord_requests_total",
                       "Search requests the coordinator accepted."),
          r.GetCounter("schemr_coord_failovers_total",
                       "Requests moved to another backend after a "
                       "connect failure, complete 503, or torn "
                       "exchange."),
          r.GetCounter("schemr_coord_hedges_total",
                       "Backup attempts launched after the hedge "
                       "delay."),
          r.GetCounter("schemr_coord_hedges_won_total",
                       "Hedged requests answered by the backup "
                       "attempt."),
          r.GetCounter("schemr_coord_hedges_lost_total",
                       "Hedged requests answered by the primary "
                       "attempt (backup cancelled)."),
          r.GetCounter("schemr_coord_no_backend_total",
                       "Requests shed inline because no routable "
                       "backend remained."),
          r.GetCounter("schemr_coord_bad_gateway_total",
                       "Requests answered 502 (torn exchange with "
                       "failover exhausted or disabled)."),
      };
    }();
    return *metrics;
  }
};

void JsonKey(std::string* out, const std::string& key) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  *out += key;
  *out += "\":";
}

void JsonNum(std::string* out, const std::string& key, double value) {
  JsonKey(out, key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void JsonStr(std::string* out, const std::string& key,
             const std::string& value) {
  JsonKey(out, key);
  out->push_back('"');
  *out += value;
  out->push_back('"');
}

/// Same error envelope HandleSearchXml uses for refusals, so the
/// coordinator's inline sheds speak the wire format clients already
/// parse.
std::string CoordErrorXml(const std::string& code, const std::string& message,
                          double retry_after_ms = -1.0) {
  XmlWriter xml;
  xml.Open("error").Attribute("code", code);
  if (retry_after_ms >= 0.0) xml.Attribute("retry_after_ms", retry_after_ms);
  if (!message.empty()) xml.Attribute("message", message);
  xml.Close();
  return xml.Finish();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Builds the outbound call for one backend attempt: body and
/// Content-Type pass through, X-Schemr-* request headers are forwarded,
/// the request id is rewritten to the hop-suffixed form (each attempt is
/// individually joinable in replica traces), and the deadline header
/// carries the REMAINING budget, not the original — a failover chain
/// spends one client budget, not N.
HttpCallOptions MakeBackendCall(const HttpRequest& request, double deadline_ms,
                                double elapsed_ms,
                                double attempt_timeout_seconds,
                                const std::string& hop_id) {
  HttpCallOptions call;
  call.method = "POST";
  call.body = request.body;
  if (const std::string* ct = request.FindHeader("content-type")) {
    call.content_type = *ct;
  }
  call.attempt_timeout_seconds = attempt_timeout_seconds;
  for (const auto& [name, value] : request.headers) {
    if (name.rfind("x-schemr-", 0) == 0 && name != "x-schemr-deadline-ms" &&
        name != kRequestIdHeaderLower) {
      call.headers.emplace_back(name, value);
    }
  }
  call.headers.emplace_back(kRequestIdHeader, hop_id);
  if (deadline_ms > 0.0) {
    const double remaining_ms = std::max(deadline_ms - elapsed_ms, 1.0);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", remaining_ms);
    call.headers.emplace_back("X-Schemr-Deadline-Ms", buf);
    // No point waiting on a socket past the client's own patience.
    call.attempt_timeout_seconds =
        std::min(attempt_timeout_seconds, remaining_ms / 1e3 + 0.25);
  }
  return call;
}

}  // namespace

Coordinator::Coordinator(std::vector<BackendConfig> backends,
                         CoordinatorOptions options)
    : options_(options),
      pool_(std::make_unique<BackendPool>(std::move(backends), options.pool)),
      traces_(std::make_unique<TraceRetention>(options.trace_retention)) {}

Coordinator::~Coordinator() { Shutdown(0.5); }

Status Coordinator::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::InvalidArgument("coordinator already started");
  }
  pool_->Start();
  server_ = std::make_unique<HttpServer>(options_.http);
  server_->Route("POST", "/search", [this](const HttpRequest& request) {
    return ForwardSearch(request);
  });
  server_->Route("GET", "/healthz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string out = "{";
    JsonStr(&out, "status",
            shut_down_.load(std::memory_order_acquire) ? "shut_down" : "ok");
    out += "}\n";
    response.body = std::move(out);
    if (shut_down_.load(std::memory_order_acquire)) response.status = 503;
    return response;
  });
  server_->Route("GET", "/readyz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    const size_t routable = pool_->RoutableCount();
    const char* state = "ready";
    if (server_ != nullptr && server_->draining()) {
      state = "draining";
    } else if (routable == 0) {
      state = "not_serving";
    }
    std::string out = "{";
    JsonStr(&out, "status", state);
    JsonNum(&out, "routable_backends", static_cast<double>(routable));
    out += "}\n";
    response.body = std::move(out);
    if (std::string(state) != "ready") response.status = 503;
    return response;
  });
  server_->Route("GET", "/statusz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson();
    return response;
  });
  server_->Route("GET", "/tracez", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = TracezJson();
    return response;
  });
  server_->Route("GET", "/metrics", [this](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ToPrometheusText(MetricsRegistry::Global());
    // Merge mode (?merge=fleet): append schemr_fleet_* series federated
    // from every ready replica's own /metrics. The coordinator's own
    // families all carry other prefixes, so the combined body stays a
    // valid single exposition.
    if (request.query.find("merge") != std::string::npos) {
      size_t scraped = 0;
      std::vector<MetricsRegistry::MetricSnapshot> fleet =
          RenameForFleet(FleetMergedSnapshots(&scraped));
      MetricsRegistry::MetricSnapshot meta;
      meta.name = "schemr_fleet_replicas_scraped";
      meta.help = "Replicas whose /metrics contributed to this merge.";
      meta.kind = MetricsRegistry::MetricKind::kGauge;
      meta.gauge_value = static_cast<double>(scraped);
      fleet.insert(fleet.begin(), std::move(meta));
      std::sort(fleet.begin(), fleet.end(),
                [](const MetricsRegistry::MetricSnapshot& a,
                   const MetricsRegistry::MetricSnapshot& b) {
                  return a.name < b.name;
                });
      response.body += ToPrometheusText(fleet);
    }
    return response;
  });
  Status started = server_->Start();
  if (!started.ok()) {
    pool_->Stop();
    server_.reset();
    started_.store(false);
    return started;
  }
  return Status::OK();
}

void Coordinator::Shutdown(double drain_seconds) {
  if (!started_.load(std::memory_order_acquire)) return;
  shut_down_.store(true, std::memory_order_release);
  if (server_ != nullptr) {
    server_->BeginDrain();
    server_->Stop(drain_seconds);
  }
  pool_->Stop();
}

int Coordinator::port() const {
  return server_ == nullptr ? 0 : server_->port();
}

bool Coordinator::running() const {
  return server_ != nullptr && server_->running();
}

Coordinator::ForwardOutcome Coordinator::AttemptBackend(
    int id, const HttpRequest& request, double deadline_ms,
    double elapsed_ms, const std::vector<int>& tried,
    const std::string& request_id, const char* route, int* next_hop,
    std::vector<HopRecord>* journal) {
  ForwardOutcome out;
  out.backend = id;

  std::mutex m;
  std::condition_variable cv;
  int finished_mask = 0;
  HttpAttemptResult results[2];
  HttpCancelToken tokens[2];
  double attempt_ms[2] = {0.0, 0.0};
  int backend_ids[2] = {id, -1};
  int hops[2] = {-1, -1};
  std::thread threads[2];
  const Timer attempt_timer;

  const auto launch = [&](int slot, int backend_id, double slot_elapsed_ms) {
    hops[slot] = (*next_hop)++;
    const BackendConfig config = pool_->Config(backend_id);
    const HttpCallOptions call = MakeBackendCall(
        request, deadline_ms, elapsed_ms + slot_elapsed_ms,
        options_.attempt_timeout_seconds, HopRequestId(request_id, hops[slot]));
    threads[slot] = std::thread([&, slot, config, call] {
      const Timer timer;
      HttpAttemptResult r;
      // coord/backend/blackhole: the attempt vanishes without a trace —
      // classified as a torn exchange, exactly what a silently dropped
      // connection to a live-looking backend produces.
      if (FaultInjector::Global().Check("coord/backend/blackhole") != 0) {
        r.kind = HttpAttemptResult::Kind::kBroken;
        r.error = "backend blackholed (injected)";
      } else {
        r = HttpAttempt(config.host, config.search_port, "/search", call,
                        &tokens[slot]);
      }
      std::lock_guard<std::mutex> lock(m);
      attempt_ms[slot] = timer.ElapsedMillis();
      results[slot] = std::move(r);
      finished_mask |= 1 << slot;
      cv.notify_all();
    });
  };

  launch(0, id, 0.0);
  bool hedge_launched = false;
  int winner = -1;
  {
    std::unique_lock<std::mutex> lock(m);
    if (options_.hedge && pool_->size() > 1) {
      const double delay_ms = pool_->HedgeDelayMs();
      const bool primary_done = cv.wait_for(
          lock, std::chrono::duration<double, std::milli>(delay_ms),
          [&] { return (finished_mask & 1) != 0; });
      if (!primary_done) {
        // Tail territory: launch ONE backup on a different backend.
        lock.unlock();
        const int hedge_id = pool_->Acquire(tried);
        lock.lock();
        if (hedge_id >= 0) {
          backend_ids[1] = hedge_id;
          hedge_launched = true;
          hedges_.fetch_add(1, std::memory_order_relaxed);
          CoordMetrics::Get().hedges->Increment();
          lock.unlock();
          launch(1, hedge_id, attempt_timer.ElapsedMillis());
          lock.lock();
        }
      }
    }
    // First complete response wins; a failed attempt defers to the other
    // while it is still in flight.
    const int launched_mask = hedge_launched ? 3 : 1;
    int inspected = 0;
    while (winner < 0) {
      cv.wait(lock, [&] { return (finished_mask & ~inspected) != 0; });
      const int newly = finished_mask & ~inspected;
      for (int slot = 0; slot < 2; ++slot) {
        if ((newly & (1 << slot)) == 0) continue;
        inspected |= 1 << slot;
        if (winner < 0 &&
            results[slot].kind == HttpAttemptResult::Kind::kOk) {
          winner = slot;
        }
      }
      if ((finished_mask & launched_mask) == launched_mask) break;
    }
  }
  if (winner >= 0) {
    // Cancel the loser by closing its socket; it unblocks promptly.
    for (int slot = 0; slot < 2; ++slot) {
      if (slot != winner && threads[slot].joinable()) tokens[slot].Cancel();
    }
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  // Outcome accounting. A cancelled loser is OUR doing, not the
  // backend's: it feeds neither the breaker nor the latency ring.
  for (int slot = 0; slot < 2; ++slot) {
    if (backend_ids[slot] < 0) continue;
    const HttpAttemptResult& r = results[slot];
    const bool ok = r.kind == HttpAttemptResult::Kind::kOk;
    const bool cancelled = !ok && tokens[slot].cancelled();
    if (!cancelled) {
      pool_->ReportOutcome(backend_ids[slot], ok,
                           ok && r.reply.status == 200 ? attempt_ms[slot]
                                                       : -1.0);
    }
    HopRecord hop;
    hop.hop = hops[slot];
    hop.backend = pool_->Config(backend_ids[slot]).name;
    hop.route = slot == 1 ? "hedge" : route;
    hop.latency_ms = attempt_ms[slot];
    if (ok) {
      hop.outcome = "ok:" + std::to_string(r.reply.status);
    } else if (cancelled) {
      hop.outcome = "cancelled";
    } else if (r.kind == HttpAttemptResult::Kind::kConnectFailed) {
      hop.outcome = "connect_failed";
    } else {
      hop.outcome = "broken";
    }
    journal->push_back(std::move(hop));
  }
  if (hedge_launched) {
    pool_->Release(backend_ids[1]);
    if (winner == 1) {
      hedges_won_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().hedges_won->Increment();
    } else {
      hedges_lost_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().hedges_lost->Increment();
    }
  }

  out.hedge_won = winner == 1;
  if (winner >= 0) {
    out.backend = backend_ids[winner];
    out.result = std::move(results[winner]);
  } else {
    // Neither attempt completed; classify by the primary (the hedge was
    // opportunistic).
    out.result = std::move(results[0]);
  }
  return out;
}

HttpResponse Coordinator::PassThrough(const HttpAttemptResult& result) const {
  // Byte-identity: the backend's body is the client's body, no
  // re-serialization. Status, Content-Type, Retry-After, and the
  // X-Schemr-* headers ride along.
  HttpResponse response;
  response.status = result.reply.status;
  response.body = result.reply.body;
  auto ct = result.reply.headers.find("content-type");
  if (ct != result.reply.headers.end()) response.content_type = ct->second;
  auto ra = result.reply.headers.find("retry-after");
  if (ra != result.reply.headers.end()) {
    response.retry_after_seconds = std::atof(ra->second.c_str());
  }
  for (const auto& [name, value] : result.reply.headers) {
    // The replica echoes the hop-suffixed id it was handed; ForwardSearch
    // re-stamps the base id, so drop the per-hop echo here.
    if (name.rfind("x-schemr-", 0) == 0 && name != kRequestIdHeaderLower) {
      response.headers.emplace_back(name, value);
    }
  }
  return response;
}

HttpResponse Coordinator::ShedNoBackend() const {
  // "Every replica is down or draining" is a capacity condition: shed
  // with the existing vocabulary (queue_full carries Retry-After, the
  // invitation to come back) rather than inventing a new wire word.
  HttpResponse response;
  response.status = 503;
  response.content_type = "application/xml";
  response.retry_after_seconds = options_.shed_retry_after_seconds;
  response.headers.emplace_back("X-Schemr-Shed",
                                ShedReasonName(ShedReason::kQueueFull));
  response.body = CoordErrorXml("overloaded", "no healthy backend",
                                options_.shed_retry_after_seconds * 1e3);
  return response;
}

HttpResponse Coordinator::ForwardSearch(const HttpRequest& request) {
  const Timer timer;
  requests_.fetch_add(1, std::memory_order_relaxed);
  CoordMetrics::Get().requests->Increment();

  // Adopt a well-formed client-supplied id or mint one. Client ids are
  // capped below the replica-side limit so the per-hop "-h<N>" suffix
  // still validates downstream.
  std::string request_id;
  if (const std::string* header = request.FindHeader(kRequestIdHeaderLower);
      header != nullptr &&
      IsValidRequestId(*header, kMaxClientRequestIdBytes)) {
    request_id = *header;
  } else {
    request_id = MintRequestId();
  }

  int next_hop = 0;
  std::vector<HopRecord> journal;
  HttpResponse response =
      ForwardSearchInternal(request, timer, request_id, &next_hop, &journal);

  // The client always sees the BASE id, whichever path answered (the
  // replica's echo carried a hop suffix and was stripped in PassThrough).
  response.headers.emplace_back(kRequestIdHeader, request_id);
  RetainHopJournal(request_id, journal, response.status,
                   timer.ElapsedSeconds());
  return response;
}

HttpResponse Coordinator::ForwardSearchInternal(
    const HttpRequest& request, const Timer& timer,
    const std::string& request_id, int* next_hop,
    std::vector<HopRecord>* journal) {
  double deadline_ms = 0.0;
  if (const std::string* header = request.FindHeader("x-schemr-deadline-ms")) {
    const double parsed = std::atof(header->c_str());
    if (parsed > 0.0) deadline_ms = parsed;
  }

  std::vector<int> tried;
  HttpAttemptResult last_refusal;
  bool have_refusal = false;
  const int budget = 1 + std::max(0, options_.max_failovers);
  for (int attempt = 0; attempt < budget; ++attempt) {
    if (deadline_ms > 0.0 && timer.ElapsedMillis() >= deadline_ms) {
      // The client's budget is gone; answering anything else now is
      // wasted work on every layer below.
      HttpResponse response;
      response.status = 503;
      response.content_type = "application/xml";
      response.headers.emplace_back("X-Schemr-Shed",
                                    ShedReasonName(ShedReason::kDeadline));
      response.body = CoordErrorXml(
          "overloaded", "deadline exhausted before a backend answered");
      return response;
    }
    const int id = pool_->Acquire(tried);
    if (id < 0) break;
    tried.push_back(id);
    if (attempt > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().failovers->Increment();
    }
    ForwardOutcome outcome = AttemptBackend(
        id, request, deadline_ms, timer.ElapsedMillis(), tried, request_id,
        attempt > 0 ? "failover" : "primary", next_hop, journal);
    pool_->Release(id);
    if (outcome.result.kind == HttpAttemptResult::Kind::kOk) {
      if (outcome.result.reply.status == 503) {
        // A complete 503 is a refusal BEFORE execution (shed or
        // draining): failing over is safe, and HttpCall's contract says
        // so. Remember it — if every backend refuses, the client gets a
        // real backend's shed, not a synthetic one.
        last_refusal = std::move(outcome.result);
        have_refusal = true;
        continue;
      }
      return PassThrough(outcome.result);
    }
    if (outcome.result.kind == HttpAttemptResult::Kind::kConnectFailed ||
        options_.failover_on_broken) {
      continue;  // next routable backend, this one excluded
    }
    // Torn exchange with failover disabled: ambiguous, surface it.
    bad_gateway_.fetch_add(1, std::memory_order_relaxed);
    CoordMetrics::Get().bad_gateway->Increment();
    HttpResponse response;
    response.status = 502;
    response.content_type = "application/xml";
    response.body = CoordErrorXml("bad_gateway", outcome.result.error);
    return response;
  }

  if (have_refusal) return PassThrough(last_refusal);
  no_backend_.fetch_add(1, std::memory_order_relaxed);
  CoordMetrics::Get().no_backend->Increment();
  return ShedNoBackend();
}

void Coordinator::RetainHopJournal(const std::string& request_id,
                                   const std::vector<HopRecord>& journal,
                                   int status, double total_seconds) {
  RetainedTrace retained;
  retained.timestamp_micros = NowMicros();
  retained.request_id = request_id;
  retained.total_seconds = total_seconds;
  if (status == 200) {
    retained.outcome = "ok";
  } else if (status == 503) {
    // "shed" prefix keeps the retention classifier's vocabulary: the
    // request was refused upstream (or inline for lack of a backend).
    retained.outcome = "shed_upstream";
  } else {
    retained.outcome = "error";
  }
  // A single-hop 200 is the boring case and tail-samples 1-in-N; any
  // request that failed over, hedged, or ended non-200 is always kept.
  retained.sampled =
      journal.size() > 1 || status != 200 || traces_->ShouldSample();
  char line[160];
  std::snprintf(line, sizeof(line), "forward status=%d hops=%zu %.3fms",
                status, journal.size(), total_seconds * 1e3);
  retained.spans = line;
  for (const HopRecord& hop : journal) {
    std::snprintf(line, sizeof(line), "\n  h%d %s %s %.3fms %s", hop.hop,
                  hop.backend.c_str(), hop.route, hop.latency_ms,
                  hop.outcome.c_str());
    retained.spans += line;
  }
  traces_->Retain(std::move(retained));
}

std::string Coordinator::TracezJson() const { return traces_->ToJson(); }

std::vector<MetricsRegistry::MetricSnapshot> Coordinator::FleetMergedSnapshots(
    size_t* scraped) const {
  std::vector<std::vector<MetricsRegistry::MetricSnapshot>> scrapes;
  for (const BackendSnapshot& backend : pool_->Snapshot()) {
    if (!backend.ready || backend.introspection_port <= 0) continue;
    // A replica that dies between the readiness probe and this scrape is
    // skipped — federation degrades to the replicas that answered.
    Result<std::string> body =
        HttpGet(backend.host, backend.introspection_port, "/metrics",
                options_.scrape_timeout_seconds);
    if (!body.ok()) continue;
    Result<std::vector<MetricsRegistry::MetricSnapshot>> parsed =
        ParsePrometheusSnapshots(*body);
    if (!parsed.ok()) continue;
    scrapes.push_back(std::move(*parsed));
  }
  if (scraped != nullptr) *scraped = scrapes.size();
  return MergeMetricSnapshots(scrapes);
}

std::string Coordinator::StatuszJson() const {
  std::string out = "{";
  JsonStr(&out, "service", "schemr-coordinator");
  // `serving` and `uptime_seconds` keep `schemr top` (and anything else
  // reading replica /statusz) working unchanged against a coordinator.
  JsonNum(&out, "serving", started_.load(std::memory_order_relaxed) &&
                                   !shut_down_.load(std::memory_order_relaxed)
                               ? 1.0
                               : 0.0);
  JsonNum(&out, "uptime_seconds", uptime_.ElapsedSeconds());
  JsonNum(&out, "coord.requests",
          static_cast<double>(requests_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.failovers",
          static_cast<double>(failovers_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges",
          static_cast<double>(hedges_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges_won",
          static_cast<double>(hedges_won_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges_lost",
          static_cast<double>(hedges_lost_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.no_backend",
          static_cast<double>(no_backend_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.bad_gateway",
          static_cast<double>(bad_gateway_.load(std::memory_order_relaxed)));
  // Hop-journal retention, under the same keys a replica's /statusz
  // uses so `schemr top`'s traces row works against either.
  if (traces_ != nullptr) {
    const TraceRetention::Stats trace_stats = traces_->GetStats();
    JsonNum(&out, "traces.offered", static_cast<double>(trace_stats.offered));
    JsonNum(&out, "traces.sampled", static_cast<double>(trace_stats.sampled));
    JsonNum(&out, "traces.retained",
            static_cast<double>(trace_stats.retained));
    JsonNum(&out, "traces.sample_every_n",
            static_cast<double>(options_.trace_retention.sample_every_n));
  }
  // fleet.* aggregates: merged live from ready replicas' /metrics, so the
  // percentiles are bucket-exact over the whole fleet, not averages of
  // per-replica quantiles.
  size_t scraped = 0;
  const std::vector<MetricsRegistry::MetricSnapshot> fleet =
      FleetMergedSnapshots(&scraped);
  JsonNum(&out, "fleet.replicas_scraped", static_cast<double>(scraped));
  for (const MetricsRegistry::MetricSnapshot& m : fleet) {
    if (m.name == "schemr_service_search_xml_requests_total") {
      JsonNum(&out, "fleet.requests", static_cast<double>(m.counter_value));
    } else if (m.name == "schemr_service_search_xml_seconds") {
      const double uptime = uptime_.ElapsedSeconds();
      JsonNum(&out, "fleet.search_count",
              static_cast<double>(m.histogram.count));
      JsonNum(&out, "fleet.qps",
              uptime > 0.0 ? static_cast<double>(m.histogram.count) / uptime
                           : 0.0);
      JsonNum(&out, "fleet.p50_ms", m.histogram.Quantile(0.5) * 1e3);
      JsonNum(&out, "fleet.p95_ms", m.histogram.Quantile(0.95) * 1e3);
      JsonNum(&out, "fleet.p99_ms", m.histogram.Quantile(0.99) * 1e3);
    }
  }
  if (server_ != nullptr) {
    const HttpServerStats stats = server_->Stats();
    JsonNum(&out, "http.connections", static_cast<double>(stats.connections));
    JsonNum(&out, "http.active", static_cast<double>(stats.active));
    JsonNum(&out, "http.shed", static_cast<double>(stats.shed));
    JsonNum(&out, "http.timeouts", static_cast<double>(stats.timeouts));
  }
  pool_->AppendStatsJson(&out);
  out += "}\n";
  return out;
}

}  // namespace schemr
