#include "service/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "util/fault_injection.h"
#include "util/timer.h"
#include "util/xml_writer.h"

namespace schemr {

namespace {

// Process-wide schemr_coord_* request-path series (pool state gauges
// live in backend_pool.cc).
struct CoordMetrics {
  Counter* requests;
  Counter* failovers;
  Counter* hedges;
  Counter* hedges_won;
  Counter* hedges_lost;
  Counter* no_backend;
  Counter* bad_gateway;

  static const CoordMetrics& Get() {
    static const CoordMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new CoordMetrics{
          r.GetCounter("schemr_coord_requests_total",
                       "Search requests the coordinator accepted."),
          r.GetCounter("schemr_coord_failovers_total",
                       "Requests moved to another backend after a "
                       "connect failure, complete 503, or torn "
                       "exchange."),
          r.GetCounter("schemr_coord_hedges_total",
                       "Backup attempts launched after the hedge "
                       "delay."),
          r.GetCounter("schemr_coord_hedges_won_total",
                       "Hedged requests answered by the backup "
                       "attempt."),
          r.GetCounter("schemr_coord_hedges_lost_total",
                       "Hedged requests answered by the primary "
                       "attempt (backup cancelled)."),
          r.GetCounter("schemr_coord_no_backend_total",
                       "Requests shed inline because no routable "
                       "backend remained."),
          r.GetCounter("schemr_coord_bad_gateway_total",
                       "Requests answered 502 (torn exchange with "
                       "failover exhausted or disabled)."),
      };
    }();
    return *metrics;
  }
};

void JsonKey(std::string* out, const std::string& key) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  *out += key;
  *out += "\":";
}

void JsonNum(std::string* out, const std::string& key, double value) {
  JsonKey(out, key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void JsonStr(std::string* out, const std::string& key,
             const std::string& value) {
  JsonKey(out, key);
  out->push_back('"');
  *out += value;
  out->push_back('"');
}

/// Same error envelope HandleSearchXml uses for refusals, so the
/// coordinator's inline sheds speak the wire format clients already
/// parse.
std::string CoordErrorXml(const std::string& code, const std::string& message,
                          double retry_after_ms = -1.0) {
  XmlWriter xml;
  xml.Open("error").Attribute("code", code);
  if (retry_after_ms >= 0.0) xml.Attribute("retry_after_ms", retry_after_ms);
  if (!message.empty()) xml.Attribute("message", message);
  xml.Close();
  return xml.Finish();
}

/// Builds the outbound call for one backend attempt: body and
/// Content-Type pass through, X-Schemr-* request headers are forwarded,
/// and the deadline header carries the REMAINING budget, not the
/// original — a failover chain spends one client budget, not N.
HttpCallOptions MakeBackendCall(const HttpRequest& request, double deadline_ms,
                                double elapsed_ms,
                                double attempt_timeout_seconds) {
  HttpCallOptions call;
  call.method = "POST";
  call.body = request.body;
  if (const std::string* ct = request.FindHeader("content-type")) {
    call.content_type = *ct;
  }
  call.attempt_timeout_seconds = attempt_timeout_seconds;
  for (const auto& [name, value] : request.headers) {
    if (name.rfind("x-schemr-", 0) == 0 && name != "x-schemr-deadline-ms") {
      call.headers.emplace_back(name, value);
    }
  }
  if (deadline_ms > 0.0) {
    const double remaining_ms = std::max(deadline_ms - elapsed_ms, 1.0);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", remaining_ms);
    call.headers.emplace_back("X-Schemr-Deadline-Ms", buf);
    // No point waiting on a socket past the client's own patience.
    call.attempt_timeout_seconds =
        std::min(attempt_timeout_seconds, remaining_ms / 1e3 + 0.25);
  }
  return call;
}

}  // namespace

Coordinator::Coordinator(std::vector<BackendConfig> backends,
                         CoordinatorOptions options)
    : options_(options),
      pool_(std::make_unique<BackendPool>(std::move(backends), options.pool)) {
}

Coordinator::~Coordinator() { Shutdown(0.5); }

Status Coordinator::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::InvalidArgument("coordinator already started");
  }
  pool_->Start();
  server_ = std::make_unique<HttpServer>(options_.http);
  server_->Route("POST", "/search", [this](const HttpRequest& request) {
    return ForwardSearch(request);
  });
  server_->Route("GET", "/healthz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string out = "{";
    JsonStr(&out, "status",
            shut_down_.load(std::memory_order_acquire) ? "shut_down" : "ok");
    out += "}\n";
    response.body = std::move(out);
    if (shut_down_.load(std::memory_order_acquire)) response.status = 503;
    return response;
  });
  server_->Route("GET", "/readyz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    const size_t routable = pool_->RoutableCount();
    const char* state = "ready";
    if (server_ != nullptr && server_->draining()) {
      state = "draining";
    } else if (routable == 0) {
      state = "not_serving";
    }
    std::string out = "{";
    JsonStr(&out, "status", state);
    JsonNum(&out, "routable_backends", static_cast<double>(routable));
    out += "}\n";
    response.body = std::move(out);
    if (std::string(state) != "ready") response.status = 503;
    return response;
  });
  server_->Route("GET", "/statusz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson();
    return response;
  });
  server_->Route("GET", "/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ToPrometheusText(MetricsRegistry::Global());
    return response;
  });
  Status started = server_->Start();
  if (!started.ok()) {
    pool_->Stop();
    server_.reset();
    started_.store(false);
    return started;
  }
  return Status::OK();
}

void Coordinator::Shutdown(double drain_seconds) {
  if (!started_.load(std::memory_order_acquire)) return;
  shut_down_.store(true, std::memory_order_release);
  if (server_ != nullptr) {
    server_->BeginDrain();
    server_->Stop(drain_seconds);
  }
  pool_->Stop();
}

int Coordinator::port() const {
  return server_ == nullptr ? 0 : server_->port();
}

bool Coordinator::running() const {
  return server_ != nullptr && server_->running();
}

Coordinator::ForwardOutcome Coordinator::AttemptBackend(
    int id, const HttpRequest& request, double deadline_ms,
    double elapsed_ms, const std::vector<int>& tried) {
  ForwardOutcome out;
  out.backend = id;

  std::mutex m;
  std::condition_variable cv;
  int finished_mask = 0;
  HttpAttemptResult results[2];
  HttpCancelToken tokens[2];
  double attempt_ms[2] = {0.0, 0.0};
  int backend_ids[2] = {id, -1};
  std::thread threads[2];
  const Timer attempt_timer;

  const auto launch = [&](int slot, int backend_id, double slot_elapsed_ms) {
    const BackendConfig config = pool_->Config(backend_id);
    const HttpCallOptions call =
        MakeBackendCall(request, deadline_ms, elapsed_ms + slot_elapsed_ms,
                        options_.attempt_timeout_seconds);
    threads[slot] = std::thread([&, slot, config, call] {
      const Timer timer;
      HttpAttemptResult r;
      // coord/backend/blackhole: the attempt vanishes without a trace —
      // classified as a torn exchange, exactly what a silently dropped
      // connection to a live-looking backend produces.
      if (FaultInjector::Global().Check("coord/backend/blackhole") != 0) {
        r.kind = HttpAttemptResult::Kind::kBroken;
        r.error = "backend blackholed (injected)";
      } else {
        r = HttpAttempt(config.host, config.search_port, "/search", call,
                        &tokens[slot]);
      }
      std::lock_guard<std::mutex> lock(m);
      attempt_ms[slot] = timer.ElapsedMillis();
      results[slot] = std::move(r);
      finished_mask |= 1 << slot;
      cv.notify_all();
    });
  };

  launch(0, id, 0.0);
  bool hedge_launched = false;
  int winner = -1;
  {
    std::unique_lock<std::mutex> lock(m);
    if (options_.hedge && pool_->size() > 1) {
      const double delay_ms = pool_->HedgeDelayMs();
      const bool primary_done = cv.wait_for(
          lock, std::chrono::duration<double, std::milli>(delay_ms),
          [&] { return (finished_mask & 1) != 0; });
      if (!primary_done) {
        // Tail territory: launch ONE backup on a different backend.
        lock.unlock();
        const int hedge_id = pool_->Acquire(tried);
        lock.lock();
        if (hedge_id >= 0) {
          backend_ids[1] = hedge_id;
          hedge_launched = true;
          hedges_.fetch_add(1, std::memory_order_relaxed);
          CoordMetrics::Get().hedges->Increment();
          lock.unlock();
          launch(1, hedge_id, attempt_timer.ElapsedMillis());
          lock.lock();
        }
      }
    }
    // First complete response wins; a failed attempt defers to the other
    // while it is still in flight.
    const int launched_mask = hedge_launched ? 3 : 1;
    int inspected = 0;
    while (winner < 0) {
      cv.wait(lock, [&] { return (finished_mask & ~inspected) != 0; });
      const int newly = finished_mask & ~inspected;
      for (int slot = 0; slot < 2; ++slot) {
        if ((newly & (1 << slot)) == 0) continue;
        inspected |= 1 << slot;
        if (winner < 0 &&
            results[slot].kind == HttpAttemptResult::Kind::kOk) {
          winner = slot;
        }
      }
      if ((finished_mask & launched_mask) == launched_mask) break;
    }
  }
  if (winner >= 0) {
    // Cancel the loser by closing its socket; it unblocks promptly.
    for (int slot = 0; slot < 2; ++slot) {
      if (slot != winner && threads[slot].joinable()) tokens[slot].Cancel();
    }
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  // Outcome accounting. A cancelled loser is OUR doing, not the
  // backend's: it feeds neither the breaker nor the latency ring.
  for (int slot = 0; slot < 2; ++slot) {
    if (backend_ids[slot] < 0) continue;
    const HttpAttemptResult& r = results[slot];
    const bool ok = r.kind == HttpAttemptResult::Kind::kOk;
    const bool cancelled = !ok && tokens[slot].cancelled();
    if (!cancelled) {
      pool_->ReportOutcome(backend_ids[slot], ok,
                           ok && r.reply.status == 200 ? attempt_ms[slot]
                                                       : -1.0);
    }
  }
  if (hedge_launched) {
    pool_->Release(backend_ids[1]);
    if (winner == 1) {
      hedges_won_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().hedges_won->Increment();
    } else {
      hedges_lost_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().hedges_lost->Increment();
    }
  }

  out.hedge_won = winner == 1;
  if (winner >= 0) {
    out.backend = backend_ids[winner];
    out.result = std::move(results[winner]);
  } else {
    // Neither attempt completed; classify by the primary (the hedge was
    // opportunistic).
    out.result = std::move(results[0]);
  }
  return out;
}

HttpResponse Coordinator::PassThrough(const HttpAttemptResult& result) const {
  // Byte-identity: the backend's body is the client's body, no
  // re-serialization. Status, Content-Type, Retry-After, and the
  // X-Schemr-* headers ride along.
  HttpResponse response;
  response.status = result.reply.status;
  response.body = result.reply.body;
  auto ct = result.reply.headers.find("content-type");
  if (ct != result.reply.headers.end()) response.content_type = ct->second;
  auto ra = result.reply.headers.find("retry-after");
  if (ra != result.reply.headers.end()) {
    response.retry_after_seconds = std::atof(ra->second.c_str());
  }
  for (const auto& [name, value] : result.reply.headers) {
    if (name.rfind("x-schemr-", 0) == 0) {
      response.headers.emplace_back(name, value);
    }
  }
  return response;
}

HttpResponse Coordinator::ShedNoBackend() const {
  // "Every replica is down or draining" is a capacity condition: shed
  // with the existing vocabulary (queue_full carries Retry-After, the
  // invitation to come back) rather than inventing a new wire word.
  HttpResponse response;
  response.status = 503;
  response.content_type = "application/xml";
  response.retry_after_seconds = options_.shed_retry_after_seconds;
  response.headers.emplace_back("X-Schemr-Shed",
                                ShedReasonName(ShedReason::kQueueFull));
  response.body = CoordErrorXml("overloaded", "no healthy backend",
                                options_.shed_retry_after_seconds * 1e3);
  return response;
}

HttpResponse Coordinator::ForwardSearch(const HttpRequest& request) {
  const Timer timer;
  requests_.fetch_add(1, std::memory_order_relaxed);
  CoordMetrics::Get().requests->Increment();

  double deadline_ms = 0.0;
  if (const std::string* header = request.FindHeader("x-schemr-deadline-ms")) {
    const double parsed = std::atof(header->c_str());
    if (parsed > 0.0) deadline_ms = parsed;
  }

  std::vector<int> tried;
  HttpAttemptResult last_refusal;
  bool have_refusal = false;
  const int budget = 1 + std::max(0, options_.max_failovers);
  for (int attempt = 0; attempt < budget; ++attempt) {
    if (deadline_ms > 0.0 && timer.ElapsedMillis() >= deadline_ms) {
      // The client's budget is gone; answering anything else now is
      // wasted work on every layer below.
      HttpResponse response;
      response.status = 503;
      response.content_type = "application/xml";
      response.headers.emplace_back("X-Schemr-Shed",
                                    ShedReasonName(ShedReason::kDeadline));
      response.body = CoordErrorXml(
          "overloaded", "deadline exhausted before a backend answered");
      return response;
    }
    const int id = pool_->Acquire(tried);
    if (id < 0) break;
    tried.push_back(id);
    if (attempt > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      CoordMetrics::Get().failovers->Increment();
    }
    ForwardOutcome outcome = AttemptBackend(id, request, deadline_ms,
                                            timer.ElapsedMillis(), tried);
    pool_->Release(id);
    if (outcome.result.kind == HttpAttemptResult::Kind::kOk) {
      if (outcome.result.reply.status == 503) {
        // A complete 503 is a refusal BEFORE execution (shed or
        // draining): failing over is safe, and HttpCall's contract says
        // so. Remember it — if every backend refuses, the client gets a
        // real backend's shed, not a synthetic one.
        last_refusal = std::move(outcome.result);
        have_refusal = true;
        continue;
      }
      return PassThrough(outcome.result);
    }
    if (outcome.result.kind == HttpAttemptResult::Kind::kConnectFailed ||
        options_.failover_on_broken) {
      continue;  // next routable backend, this one excluded
    }
    // Torn exchange with failover disabled: ambiguous, surface it.
    bad_gateway_.fetch_add(1, std::memory_order_relaxed);
    CoordMetrics::Get().bad_gateway->Increment();
    HttpResponse response;
    response.status = 502;
    response.content_type = "application/xml";
    response.body = CoordErrorXml("bad_gateway", outcome.result.error);
    return response;
  }

  if (have_refusal) return PassThrough(last_refusal);
  no_backend_.fetch_add(1, std::memory_order_relaxed);
  CoordMetrics::Get().no_backend->Increment();
  return ShedNoBackend();
}

std::string Coordinator::StatuszJson() const {
  std::string out = "{";
  JsonStr(&out, "service", "schemr-coordinator");
  // `serving` and `uptime_seconds` keep `schemr top` (and anything else
  // reading replica /statusz) working unchanged against a coordinator.
  JsonNum(&out, "serving", started_.load(std::memory_order_relaxed) &&
                                   !shut_down_.load(std::memory_order_relaxed)
                               ? 1.0
                               : 0.0);
  JsonNum(&out, "uptime_seconds", uptime_.ElapsedSeconds());
  JsonNum(&out, "coord.requests",
          static_cast<double>(requests_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.failovers",
          static_cast<double>(failovers_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges",
          static_cast<double>(hedges_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges_won",
          static_cast<double>(hedges_won_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.hedges_lost",
          static_cast<double>(hedges_lost_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.no_backend",
          static_cast<double>(no_backend_.load(std::memory_order_relaxed)));
  JsonNum(&out, "coord.bad_gateway",
          static_cast<double>(bad_gateway_.load(std::memory_order_relaxed)));
  if (server_ != nullptr) {
    const HttpServerStats stats = server_->Stats();
    JsonNum(&out, "http.connections", static_cast<double>(stats.connections));
    JsonNum(&out, "http.active", static_cast<double>(stats.active));
    JsonNum(&out, "http.shed", static_cast<double>(stats.shed));
    JsonNum(&out, "http.timeouts", static_cast<double>(stats.timeouts));
  }
  pool_->AppendStatsJson(&out);
  out += "}\n";
  return out;
}

}  // namespace schemr
