// Replica-fleet process supervision (DESIGN.md §14).
//
// A Fleet owns N real `schemr serve` child processes (each serving its
// own copy of the corpus on ephemeral ports) plus the Coordinator that
// fronts them. It is the piece that turns "a coordinator and some
// configs" into "a serving system that survives operators and chaos
// harnesses":
//
//   * Spawn: fork + exec of the schemr binary, replica stdout piped back
//     so the parent learns the kernel-assigned introspection and search
//     ports from the same two lines `schemr serve` prints for humans.
//   * Supervision: SupervisePass() reaps replicas that died (kill -9,
//     OOM, crash) and respawns them in place; the pool slot is
//     re-pointed at the fresh ports (UpdateBackend) and the probe loop
//     readmits the newcomer via half-open probing.
//   * Rolling drain: RollingRestart() cycles one replica at a time —
//     mark draining (routing stops immediately) → SIGINT → wait for the
//     drain to complete (process exit, watching /healthz for
//     `shut_down` on the way) → respawn → wait ready → next. The fleet
//     never has more than one replica out, so ready count stays ≥ N−1.
//   * Chaos hooks: KillReplica (SIGKILL) and StallReplica
//     (SIGSTOP/SIGCONT) give the torture harness real process-level
//     faults without it reimplementing supervision.
//
// Thread safety: public methods are safe to call concurrently (one
// mutex guards the replica table; child I/O and waitpid happen
// per-replica).

#ifndef SCHEMR_SERVICE_FLEET_H_
#define SCHEMR_SERVICE_FLEET_H_

#include <sys/types.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/coordinator.h"
#include "util/status.h"

namespace schemr {

struct FleetOptions {
  /// The schemr executable replicas exec. The CLI passes
  /// /proc/self/exe; tests pass a build-time path.
  std::string binary_path;
  /// Source repository. Each replica serves its own copy
  /// (<repo>.replicaN) so audit logs and segment rebuilds never collide
  /// across processes.
  std::string repo_dir;
  int replicas = 3;
  size_t serve_workers = 2;
  size_t serve_cache = 256;
  /// Replica trace sampling rate (`schemr serve --sample-every`); 0
  /// keeps the serve default. Chaos/join tests pin 1 so every request
  /// carries a joinable replica-side trace.
  uint32_t serve_sample_every = 0;
  /// Budget for one replica to print its ports and answer /readyz.
  double ready_timeout_seconds = 30.0;
  /// Copy the repo per replica (default) or share it read-only.
  bool copy_repo = true;
  /// Remove the per-replica copies on Shutdown.
  bool cleanup_copies = true;
};

class Fleet {
 public:
  Fleet(FleetOptions options, CoordinatorOptions coordinator = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Spawns every replica, waits for their ports, then starts the
  /// coordinator over them and waits until all are routable.
  Status Start();

  /// Coordinator drain, SIGINT to every replica, reap (SIGKILL past the
  /// deadline), copy cleanup. Idempotent.
  void Shutdown();

  /// Rolling drain of the whole fleet, one replica at a time; the
  /// routable count never drops below N−1 replicas.
  Status RollingRestart();

  /// Reaps and respawns replicas whose process exited outside a planned
  /// restart. Returns how many were respawned.
  int SupervisePass();

  /// Respawns replica `id` in place (after a crash or kill): reap,
  /// spawn, re-point the pool slot. Does not wait for readiness — the
  /// probe loop readmits it; WaitRoutable() when a caller needs to
  /// block.
  Status RestartReplica(int id);

  /// Blocks until replica `id` is routable again (probe readmission).
  Status WaitRoutable(int id, double timeout_seconds);

  // Chaos hooks.
  Status KillReplica(int id);                  ///< SIGKILL, no respawn
  Status StallReplica(int id, bool stalled);   ///< SIGSTOP / SIGCONT

  Coordinator& coordinator() { return *coordinator_; }
  int replicas() const { return options_.replicas; }
  pid_t ReplicaPid(int id) const;
  BackendConfig ReplicaConfig(int id) const;

 private:
  struct Replica {
    pid_t pid = -1;
    int stdout_fd = -1;  ///< kept open until reap (children never block)
    BackendConfig config;
    std::string repo_dir;
  };

  /// Fork + exec one replica over `repo_dir`, parse its ports.
  Result<Replica> Spawn(int id, const std::string& repo_dir);
  /// SIGINT + wait for exit (watching /healthz for shut_down), SIGKILL
  /// past the deadline, reap.
  void StopReplica(int id, double timeout_seconds);
  void ReapLocked(Replica* replica);
  std::string ReplicaRepoDir(int id) const;

  const FleetOptions options_;
  CoordinatorOptions coordinator_options_;
  mutable std::mutex mutex_;
  std::vector<Replica> replicas_;
  std::unique_ptr<Coordinator> coordinator_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_FLEET_H_
