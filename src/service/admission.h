// Admission control for the serving path (DESIGN.md §9).
//
// A service that accepts every request under overload serves all of them
// late; one that sheds the excess early serves the rest on time. The
// controller decides, before any pipeline work runs, whether a request
// should be (a) admitted, (b) shed because the queue is full, (c) shed
// because the predicted queueing delay already exceeds the request's
// deadline (admitting it would only waste a worker on a response the
// client has given up on), or (d) refused because the service is
// draining for shutdown.
//
// Shed responses carry a retry_after_ms hint derived from the predicted
// per-request service time (an EWMA over completed requests) and the
// current backlog, so well-behaved clients back off proportionally to
// the actual overload instead of hammering a fixed interval.
//
// Thread safety: all methods are safe to call concurrently; state is a
// pair of atomics (drain flag, EWMA bits) plus lock-free metric handles.

#ifndef SCHEMR_SERVICE_ADMISSION_H_
#define SCHEMR_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <string>

namespace schemr {

struct AdmissionOptions {
  /// Requests queued (not yet running) beyond this are shed.
  size_t max_queue_depth = 64;
  /// Worker parallelism, for queueing-delay prediction (set this to the
  /// executor's worker count).
  size_t num_workers = 4;
  /// Deadline assumed for requests that do not carry one, in seconds.
  double default_deadline_seconds = 2.0;
  /// Floor of the retry_after_ms hint on shed responses.
  double retry_after_base_ms = 50.0;
  /// EWMA smoothing for the per-request service-time estimate.
  double ewma_alpha = 0.2;
  /// Seed for the service-time estimate before any request completes.
  double initial_service_seconds = 0.05;
};

/// Why a request was refused. The single vocabulary shared by the shed
/// metrics, the XML error codes, and the audit log's outcome byte — all
/// three derive from this enum so they can never disagree.
enum class ShedReason : uint8_t {
  kNone = 0,       ///< admitted
  kQueueFull = 1,  ///< pending queue at its bound
  kDeadline = 2,   ///< predicted queueing delay exceeds the deadline
  kDrain = 3,      ///< service draining for shutdown
};

/// Stable wire name: "queue_full", "deadline", "shutting_down" ("" for
/// kNone). Used verbatim in shed <error> messages and `schemr audit`.
const char* ShedReasonName(ShedReason reason);

/// Why a request was or was not admitted.
struct AdmissionDecision {
  bool admit = true;
  /// On shed: how long the client should wait before retrying.
  double retry_after_ms = 0.0;
  /// On shed: why (kNone when admitted).
  ShedReason shed_reason = ShedReason::kNone;
  /// ShedReasonName(shed_reason), kept as a field for convenience.
  std::string reason;
  /// The deadline the request will run under (the request's own, or the
  /// configured default), in seconds.
  double deadline_seconds = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Decides admission for a request given the executor's current queue
  /// depth. `deadline_seconds` <= 0 uses the configured default.
  AdmissionDecision Admit(size_t queue_depth, double deadline_seconds);

  /// Feeds a completed request's wall time into the EWMA.
  void RecordServiceTime(double seconds);

  /// Tallies a shed that happened outside Admit() (e.g. the submit lost
  /// a race with the queue filling up after admission). The one helper
  /// that bumps the shed counters — Admit() routes through it too.
  void CountShed(ShedReason reason);

  /// Current per-request service-time estimate, in seconds.
  double PredictedServiceSeconds() const;

  /// After this, every Admit() refuses with reason "shutting_down".
  void BeginDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<bool> draining_{false};
  /// EWMA of service seconds, stored as bit pattern for lock-free CAS.
  std::atomic<uint64_t> ewma_bits_;
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_ADMISSION_H_
