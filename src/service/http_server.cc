#include "service/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace schemr {

namespace {

// Process-wide schemr_http_* series, shared by every HttpServer instance
// (the introspection plane and the search front end both count here;
// per-instance splits come from HttpServer::Stats).
struct HttpMetrics {
  Counter* connections;
  Gauge* active;
  Counter* shed;
  Counter* timeouts;
  Counter* bytes;

  static const HttpMetrics& Get() {
    static const HttpMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new HttpMetrics{
          r.GetCounter("schemr_http_connections_total",
                       "Sockets accepted by embedded HTTP listeners."),
          r.GetGauge("schemr_http_active",
                     "Accepted HTTP connections currently alive."),
          r.GetCounter("schemr_http_shed_total",
                       "Connections answered 503 inline (connection cap "
                       "or saturated handler pool)."),
          r.GetCounter("schemr_http_timeouts_total",
                       "Connections answered 408 (header or body "
                       "stall past its deadline)."),
          r.GetCounter("schemr_http_bytes_total",
                       "Bytes read from plus written to HTTP "
                       "connections."),
      };
    }();
    return *metrics;
  }
};

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

void SetSocketTimeout(int fd, double seconds, int which) {
  // Zero would mean "block forever"; clamp stalls to a short tick so the
  // deadline loop regains control.
  seconds = std::max(seconds, 0.01);
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

bool ParseContentLength(std::string_view text, uint64_t max_body_bytes,
                        uint64_t* value, HttpParseOutcome* outcome) {
  // Strict: digits only. Signs, whitespace, hex, and empty values are all
  // refused — a front end must never infer a length.
  if (text.empty()) {
    *outcome = HttpParseOutcome::kBadRequest;
    return false;
  }
  uint64_t parsed = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      *outcome = HttpParseOutcome::kBadRequest;
      return false;
    }
    if (parsed > (UINT64_MAX - 9) / 10) {
      // Overflow: the declared length is absurd, refuse as oversized.
      *outcome = HttpParseOutcome::kBodyTooLarge;
      return false;
    }
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  if (parsed > max_body_bytes) {
    *outcome = HttpParseOutcome::kBodyTooLarge;
    return false;
  }
  *value = parsed;
  return true;
}

}  // namespace

HttpParseOutcome ParseRequestHead(std::string_view data, size_t max_head_bytes,
                                  size_t max_body_bytes,
                                  ParsedRequestHead* out) {
  // Find the head terminator within the cap. Only the capped prefix is
  // ever scanned, so an attacker cannot make parsing cost scale with what
  // they manage to send.
  std::string_view window = data.substr(0, max_head_bytes);
  size_t head_end = window.find("\r\n\r\n");
  size_t terminator = 4;
  if (head_end == std::string_view::npos) {
    head_end = window.find("\n\n");
    terminator = 2;
  }
  if (head_end == std::string_view::npos) {
    return data.size() >= max_head_bytes ? HttpParseOutcome::kHeadTooLarge
                                         : HttpParseOutcome::kNeedMore;
  }
  out->head_bytes = head_end + terminator;
  std::string_view head = data.substr(0, head_end);

  // Request line: METHOD SP target SP HTTP/x.y
  size_t line_end = head.find_first_of("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return HttpParseOutcome::kBadRequest;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return HttpParseOutcome::kBadRequest;
  }
  std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParseOutcome::kBadRequest;
  HttpRequest& request = out->request;
  request.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    return HttpParseOutcome::kBadRequest;
  }
  const size_t q = target.find('?');
  if (q == std::string_view::npos) {
    request.path = std::string(target);
  } else {
    request.path = std::string(target.substr(0, q));
    request.query = std::string(target.substr(q + 1));
  }

  // Header fields. Names lowercased; surrounding whitespace trimmed from
  // values; a field line without a colon is malformed input, not noise.
  bool saw_content_length = false;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end;
  while (pos < head.size()) {
    // Skip the line break (handles both \r\n and bare \n).
    if (head[pos] == '\r') ++pos;
    if (pos < head.size() && head[pos] == '\n') ++pos;
    if (pos >= head.size()) break;
    size_t eol = head.find_first_of("\r\n", pos);
    std::string_view field = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol;
    if (field.empty()) continue;
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParseOutcome::kBadRequest;
    }
    std::string name(field.substr(0, colon));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    if (name == "content-length") {
      // Disagreeing duplicates are a classic smuggling vector; refuse.
      if (saw_content_length &&
          request.headers["content-length"] != std::string(value)) {
        return HttpParseOutcome::kBadRequest;
      }
      saw_content_length = true;
    }
    request.headers[name] = std::string(value);
  }

  if (request.headers.count("transfer-encoding") != 0) {
    return HttpParseOutcome::kUnsupported;
  }
  out->content_length = 0;
  if (saw_content_length) {
    HttpParseOutcome bad = HttpParseOutcome::kBadRequest;
    if (!ParseContentLength(request.headers["content-length"], max_body_bytes,
                            &out->content_length, &bad)) {
      return bad;
    }
  }
  return HttpParseOutcome::kComplete;
}

int HttpStatusForOutcome(HttpParseOutcome outcome) {
  switch (outcome) {
    case HttpParseOutcome::kComplete:
    case HttpParseOutcome::kNeedMore:
      return 0;
    case HttpParseOutcome::kBadRequest:
      return 400;
    case HttpParseOutcome::kHeadTooLarge:
      return 431;
    case HttpParseOutcome::kBodyTooLarge:
      return 413;
    case HttpParseOutcome::kUnsupported:
      return 501;
  }
  return 500;
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(0.0); }

void HttpServer::Route(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

Status HttpServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::InvalidArgument("http server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("http socket() failed");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  // Non-blocking listener: poll() gates accepts, and a connection that
  // vanishes between poll and accept must not stall the acceptor.
  (void)::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad http bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot bind http port " +
                           std::to_string(options_.port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, static_cast<int>(options_.max_pending_connections) + 16) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("http listen() failed: ") +
                           std::strerror(err));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  BoundedExecutor::Options pool;
  pool.num_workers = std::max<size_t>(1, options_.handler_threads);
  pool.queue_capacity = std::max<size_t>(1, options_.max_pending_connections);
  handlers_ = std::make_unique<BoundedExecutor>(pool);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&HttpServer::AcceptLoop, this);
  return Status::OK();
}

void HttpServer::BeginDrain() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  // With the acceptor gone, closing the listener is race-free and makes
  // new connects fail fast (a clean, unambiguous signal clients may act
  // on), while in-flight handlers keep finishing their responses.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::Stop(double drain_seconds) {
  BeginDrain();
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // In-flight handlers get the drain window; connections still queued or
  // running at the deadline are cancelled — their sockets close without a
  // response, which a client treats like any other connection loss.
  if (handlers_ != nullptr) (void)handlers_->Shutdown(drain_seconds);
}

HttpServerStats HttpServer::Stats() const {
  HttpServerStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::CloseConnection(int fd, bool lingering) {
  if (lingering) {
    // Closing with unread input pending makes the kernel send RST and
    // discard the just-written response — the inline 503 would never
    // reach the client it is meant to back off. Half-close instead and
    // drain (bounded) whatever the peer was still sending until it sees
    // our FIN and hangs up.
    ::shutdown(fd, SHUT_WR);
    SetSocketTimeout(fd, 0.5, SO_RCVTIMEO);
    char discard[4096];
    for (int i = 0; i < 16; ++i) {
      if (::recv(fd, discard, sizeof(discard), 0) <= 0) break;
    }
  }
  ::close(fd);
  active_.fetch_sub(1, std::memory_order_relaxed);
  HttpMetrics::Get().active->Add(-1.0);
}

void HttpServer::AcceptLoop() {
  FaultInjector& faults = FaultInjector::Global();
  struct pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  // Backoff for transient accept() failures (fd exhaustion, kernel
  // resource pressure): retrying immediately would spin the CPU exactly
  // when the process is least able to afford it.
  int backoff_ms = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener gone (EBADF): Stop owns the fd now
    }
    if (ready == 0) continue;
    const int conn =
        faults.Accept("net/accept/fail", listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      const int err = errno;
      if (err == EINTR || err == ECONNABORTED || err == EAGAIN ||
          err == EWOULDBLOCK) {
        backoff_ms = 0;
        continue;  // momentary; the next poll round retries for free
      }
      if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
        // Resource exhaustion is transient by definition (connections
        // close, memory frees). Back off and keep the listener alive —
        // dying here would turn a load spike into an outage.
        backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 200);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        continue;
      }
      break;  // non-transient (EBADF/EINVAL): the socket itself is gone
    }
    backoff_ms = 0;
    (void)::fcntl(conn, F_SETFD, FD_CLOEXEC);
    const HttpMetrics& metrics = HttpMetrics::Get();
    connections_.fetch_add(1, std::memory_order_relaxed);
    metrics.connections->Increment();
    active_.fetch_add(1, std::memory_order_relaxed);
    metrics.active->Add(1.0);

    SetSocketTimeout(conn, options_.write_timeout_seconds, SO_SNDTIMEO);
    if (active_.load(std::memory_order_relaxed) > options_.max_connections) {
      // Hard cap: shed inline with a tiny fixed response. Accept-then-503
      // beats letting the backlog rot — the client learns immediately and
      // backs off instead of timing out.
      shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed->Increment();
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.retry_after_seconds = options_.shed_retry_after_seconds;
      overloaded.body = "connection limit reached\n";
      WriteResponse(conn, overloaded);
      CloseConnection(conn, /*lingering=*/true);
      continue;
    }
    faults.Perturb("http/accept/handoff");
    Status submitted = handlers_->TrySubmit([this, conn](bool cancelled) {
      if (cancelled) {
        CloseConnection(conn);
        return;
      }
      ServeConnection(conn);
    });
    if (!submitted.ok()) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed->Increment();
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.retry_after_seconds = options_.shed_retry_after_seconds;
      overloaded.body = "handler pool saturated\n";
      WriteResponse(conn, overloaded);
      CloseConnection(conn, /*lingering=*/true);
    }
  }
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response) {
  FaultInjector& faults = FaultInjector::Global();
  std::string head;
  head.reserve(256);
  char line[128];
  std::snprintf(line, sizeof(line), "HTTP/1.1 %d %s\r\n", response.status,
                ReasonPhrase(response.status));
  head += line;
  head += "Content-Type: " + response.content_type + "\r\n";
  std::snprintf(line, sizeof(line), "Content-Length: %zu\r\n",
                response.body.size());
  head += line;
  if (response.retry_after_seconds >= 0.0) {
    std::snprintf(line, sizeof(line), "Retry-After: %d\r\n",
                  static_cast<int>(std::ceil(response.retry_after_seconds)));
    head += line;
  }
  for (const auto& [name, value] : response.headers) {
    head += name + ": " + value + "\r\n";
  }
  head += "Connection: close\r\n\r\n";

  auto send_all = [this, &faults, fd](std::string_view data) {
    while (!data.empty()) {
      const ssize_t n =
          faults.Send("net/write/reset", "net/write/short", fd, data.data(),
                      data.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      bytes_written_.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      HttpMetrics::Get().bytes->Increment(static_cast<uint64_t>(n));
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  };
  if (!send_all(head)) return false;
  // Mid-response kill site: the chaos harness severs connections between
  // the header and the body, the ambiguous half-delivered state retrying
  // clients must refuse to retry.
  if (faults.Check("net/respond/kill") != 0) {
    (void)::shutdown(fd, SHUT_RDWR);
    return false;
  }
  return send_all(response.body);
}

void HttpServer::ServeConnection(int fd) {
  FaultInjector& faults = FaultInjector::Global();
  const HttpMetrics& metrics = HttpMetrics::Get();
  std::string buffer;
  ParsedRequestHead parsed;
  HttpResponse response;
  bool respond = true;

  // Phase 1: the request head, under the header deadline. The socket
  // timeout is re-tightened to the remaining budget each pass so a peer
  // trickling one byte per tick still runs out of road (slowloris).
  Timer deadline_timer;
  HttpParseOutcome outcome = HttpParseOutcome::kNeedMore;
  char chunk[1024];
  while (outcome == HttpParseOutcome::kNeedMore) {
    const double remaining =
        options_.header_timeout_seconds - deadline_timer.ElapsedSeconds();
    if (remaining <= 0.0) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      metrics.timeouts->Increment();
      response.status = 408;
      response.body = "request head timed out\n";
      outcome = HttpParseOutcome::kBadRequest;  // leave the read loop
      break;
    }
    SetSocketTimeout(fd, remaining, SO_RCVTIMEO);
    const ssize_t n = faults.Recv("net/read/reset", "net/read/short", fd,
                                  chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) {
      // Peer vanished (reset, or closed before a complete head). Nothing
      // coherent to answer; close. An empty connection (port scan,
      // balancer probe) is normal and not an error.
      CloseConnection(fd);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    bytes_read_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    metrics.bytes->Increment(static_cast<uint64_t>(n));
    outcome = ParseRequestHead(buffer, options_.max_request_bytes,
                               options_.max_body_bytes, &parsed);
  }

  if (response.status == 408) {
    // fall through to the write below
  } else if (outcome != HttpParseOutcome::kComplete) {
    response.status = HttpStatusForOutcome(outcome);
    response.body = std::string(ReasonPhrase(response.status)) + "\n";
  } else {
    // Phase 2: the body, under its own deadline. Bytes read past the head
    // already sit in the buffer (clients legitimately send head+body in
    // one segment); pipelined bytes beyond Content-Length are ignored —
    // every connection serves exactly one request.
    HttpRequest& request = parsed.request;
    request.body = buffer.substr(
        parsed.head_bytes,
        static_cast<size_t>(std::min<uint64_t>(
            parsed.content_length, buffer.size() - parsed.head_bytes)));
    deadline_timer.Reset();
    bool body_ok = true;
    while (request.body.size() < parsed.content_length) {
      const double remaining =
          options_.body_timeout_seconds - deadline_timer.ElapsedSeconds();
      if (remaining <= 0.0) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        metrics.timeouts->Increment();
        response.status = 408;
        response.body = "request body timed out\n";
        body_ok = false;
        break;
      }
      SetSocketTimeout(fd, remaining, SO_RCVTIMEO);
      const size_t want = std::min(
          sizeof(chunk),
          static_cast<size_t>(parsed.content_length - request.body.size()));
      const ssize_t n =
          faults.Recv("net/read/reset", "net/read/short", fd, chunk, want, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (n == 0) {
        // Peer half-closed with the body short of its declared length:
        // the request is malformed, and the peer can still read our
        // verdict on its receive side.
        response.status = 400;
        response.body = "request body shorter than content-length\n";
        body_ok = false;
        break;
      }
      if (n < 0) {
        CloseConnection(fd);  // reset mid-body; nobody left to answer
        return;
      }
      request.body.append(chunk, static_cast<size_t>(n));
      bytes_read_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      metrics.bytes->Increment(static_cast<uint64_t>(n));
    }

    if (body_ok) {
      auto path_it = routes_.find(request.path);
      if (path_it == routes_.end()) {
        response.status = 404;
        response.body = "no such endpoint: " + request.path + "\n";
        response.body += "endpoints:";
        for (const auto& [path, methods] : routes_) {
          (void)methods;
          response.body += " " + path;
        }
        response.body += "\n";
      } else {
        auto method_it = path_it->second.find(request.method);
        if (method_it == path_it->second.end()) {
          response.status = 405;
          response.body = request.path + " does not accept " +
                          request.method + "\n";
        } else {
          response = method_it->second(request);
        }
      }
    }
  }

  respond = WriteResponse(fd, response);
  (void)respond;  // a dead peer mid-write is closed like any other
  CloseConnection(fd, /*lingering=*/true);
}

// --- client -----------------------------------------------------------------

namespace {

/// Deterministic jitter stream: splitmix64 over the seed, mapped into
/// [0.5, 1.0]. Same seed → same schedule, so backoff is replayable in
/// tests and the load generator.
double JitterFactor(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return 0.5 + 0.5 * (static_cast<double>(z >> 11) / 9007199254740992.0);
}

// Process-wide schemr_client_* series: every outbound attempt counts
// here, whether it came from HttpCall's retry loop, the coordinator's
// failover path, or a hedge.
struct ClientMetrics {
  Counter* attempts;
  Counter* retries;
  Counter* backoff_ms;

  static const ClientMetrics& Get() {
    static const ClientMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new ClientMetrics{
          r.GetCounter("schemr_client_attempts_total",
                       "Outbound HTTP attempts (first tries + retries + "
                       "hedges)."),
          r.GetCounter("schemr_client_retries_total",
                       "HttpCall retries (connect failure or complete "
                       "503-with-Retry-After)."),
          r.GetCounter("schemr_client_backoff_ms",
                       "Milliseconds HttpCall spent sleeping between "
                       "attempts (backoff plus honored Retry-After)."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

HttpResponseOutcome ParseResponseHead(std::string_view data,
                                      size_t max_head_bytes,
                                      ParsedResponseHead* out) {
  // Only the capped prefix is scanned, so a hostile server cannot make
  // parsing cost scale with what it manages to send.
  std::string_view window = data.substr(0, max_head_bytes);
  size_t head_end = window.find("\r\n\r\n");
  size_t terminator = 4;
  if (head_end == std::string_view::npos) {
    head_end = window.find("\n\n");
    terminator = 2;
  }
  if (head_end == std::string_view::npos) {
    return data.size() >= max_head_bytes ? HttpResponseOutcome::kMalformed
                                         : HttpResponseOutcome::kNeedMore;
  }
  out->head_bytes = head_end + terminator;
  std::string_view head = data.substr(0, head_end);

  // Status line: HTTP/x.y SP NNN [SP reason]. The status is strictly
  // three digits in 100..599; the reason phrase is free-form (it may
  // even be absent) but never parsed, so an oversized one costs nothing.
  size_t line_end = head.find_first_of("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (line.substr(0, 5) != "HTTP/") return HttpResponseOutcome::kMalformed;
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return HttpResponseOutcome::kMalformed;
  std::string_view code = line.substr(sp + 1);
  const size_t sp2 = code.find(' ');
  if (sp2 != std::string_view::npos) code = code.substr(0, sp2);
  if (code.size() != 3) return HttpResponseOutcome::kMalformed;
  int status = 0;
  for (char c : code) {
    if (c < '0' || c > '9') return HttpResponseOutcome::kMalformed;
    status = status * 10 + (c - '0');
  }
  if (status < 100 || status > 599) return HttpResponseOutcome::kMalformed;
  out->status = status;

  // Header fields: same shape as the request parser — names lowercased,
  // values trimmed, a field line without a colon refused, disagreeing
  // duplicate Content-Length refused. Other duplicates (Retry-After
  // included) last-win; the caller clamps Retry-After anyway.
  bool saw_content_length = false;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end;
  while (pos < head.size()) {
    if (head[pos] == '\r') ++pos;
    if (pos < head.size() && head[pos] == '\n') ++pos;
    if (pos >= head.size()) break;
    size_t eol = head.find_first_of("\r\n", pos);
    std::string_view field = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol;
    if (field.empty()) continue;
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpResponseOutcome::kMalformed;
    }
    std::string name(field.substr(0, colon));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    if (name == "content-length") {
      if (saw_content_length &&
          out->headers["content-length"] != std::string(value)) {
        return HttpResponseOutcome::kMalformed;
      }
      saw_content_length = true;
    }
    out->headers[name] = std::string(value);
  }
  return HttpResponseOutcome::kComplete;
}

void HttpCancelToken::Cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_ = true;
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

bool HttpCancelToken::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

bool HttpCancelToken::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) return false;
  fd_ = fd;
  return true;
}

void HttpCancelToken::DeregisterFd() {
  std::lock_guard<std::mutex> lock(mutex_);
  fd_ = -1;
}

HttpAttemptResult HttpAttempt(const std::string& host, int port,
                              const std::string& path,
                              const HttpCallOptions& options,
                              HttpCancelToken* cancel) {
  ClientMetrics::Get().attempts->Increment();
  HttpAttemptResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.kind = HttpAttemptResult::Kind::kConnectFailed;
    result.error = "socket() failed";
    return result;
  }
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  // Register with the cancel token before connect: Cancel() from here on
  // shuts the socket down and every blocking op below fails promptly.
  // Deregister under the token's lock before every close() so a
  // racing Cancel never touches a reused fd.
  if (cancel != nullptr && !cancel->RegisterFd(fd)) {
    ::close(fd);
    result.kind = HttpAttemptResult::Kind::kBroken;
    result.error = "attempt cancelled before connect";
    return result;
  }
  const auto close_fd = [fd, cancel] {
    if (cancel != nullptr) cancel->DeregisterFd();
    ::close(fd);
  };
  SetSocketTimeout(fd, options.attempt_timeout_seconds, SO_RCVTIMEO);
  SetSocketTimeout(fd, options.attempt_timeout_seconds, SO_SNDTIMEO);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd();
    result.kind = HttpAttemptResult::Kind::kBroken;  // config error: no retry
    result.error = "bad host '" + host + "' (dotted IPv4 expected)";
    return result;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    close_fd();
    result.kind = HttpAttemptResult::Kind::kConnectFailed;
    result.error = "cannot connect to " + host + ":" + std::to_string(port) +
                   ": " + std::strerror(err);
    return result;
  }

  std::string request = options.method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  for (const auto& [name, value] : options.headers) {
    request += name + ": " + value + "\r\n";
  }
  if (options.method != "GET" || !options.body.empty()) {
    request += "Content-Type: " + options.content_type + "\r\n";
    request += "Content-Length: " + std::to_string(options.body.size()) +
               "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += options.body;

  const Timer attempt_timer;
  std::string_view remaining_send = request;
  while (!remaining_send.empty()) {
    const ssize_t n = ::send(fd, remaining_send.data(), remaining_send.size(),
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close_fd();
      result.error = cancel != nullptr && cancel->cancelled()
                         ? "attempt cancelled (hedge lost)"
                         : "request write failed mid-exchange";
      return result;
    }
    remaining_send.remove_prefix(static_cast<size_t>(n));
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    if (attempt_timer.ElapsedSeconds() > options.attempt_timeout_seconds) {
      close_fd();
      result.error = "attempt timed out reading the response";
      return result;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      close_fd();
      result.error = std::string("response read failed: ") +
                     std::strerror(errno);
      return result;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  close_fd();
  if (cancel != nullptr && cancel->cancelled()) {
    result.error = "attempt cancelled (hedge lost)";
    return result;
  }

  ParsedResponseHead head;
  // The head cap mirrors the server's default: a reply head beyond it is
  // hostile or broken either way.
  if (ParseResponseHead(raw, 64 * 1024, &head) !=
      HttpResponseOutcome::kComplete) {
    result.error = "malformed HTTP response head";
    return result;
  }
  result.reply.status = head.status;
  result.reply.headers = std::move(head.headers);
  // Truncation check: a declared length the body doesn't meet means the
  // connection died mid-body — ambiguous, not a complete response.
  std::string body = raw.substr(head.head_bytes);
  auto it = result.reply.headers.find("content-length");
  if (it != result.reply.headers.end()) {
    uint64_t declared = 0;
    HttpParseOutcome unused = HttpParseOutcome::kBadRequest;
    if (ParseContentLength(it->second, UINT64_MAX / 2, &declared, &unused) &&
        body.size() < declared) {
      result.error = "response truncated mid-body";
      return result;
    }
    if (body.size() > declared) body.resize(declared);
  }
  result.reply.body = std::move(body);
  result.kind = HttpAttemptResult::Kind::kOk;
  return result;
}

Result<HttpReply> HttpCall(const std::string& host, int port,
                           const std::string& path,
                           const HttpCallOptions& options) {
  uint64_t jitter_state = options.jitter_seed;
  const int attempts = std::max(1, options.max_attempts);
  const auto sleep_ms = [](double ms) {
    ClientMetrics::Get().backoff_ms->Increment(
        static_cast<uint64_t>(std::max(ms, 0.0)));
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1e3)));
  };
  std::string last_error;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) ClientMetrics::Get().retries->Increment();
    HttpAttemptResult result = HttpAttempt(host, port, path, options);
    result.reply.attempts = attempt;
    if (result.kind == HttpAttemptResult::Kind::kOk) {
      const bool retryable_503 =
          result.reply.status == 503 &&
          result.reply.headers.count("retry-after") != 0;
      if (!retryable_503 || attempt == attempts) return result.reply;
      // The server said "come back later": honor its hint, floored by our
      // own backoff curve and capped (max_retry_after_seconds) so a
      // misbehaving backend cannot park the client for minutes.
      double retry_after_s =
          std::atof(result.reply.headers.at("retry-after").c_str());
      retry_after_s = std::clamp(retry_after_s, 0.0,
                                 options.max_retry_after_seconds);
      const double backoff_ms =
          std::min(options.backoff_base_ms *
                       static_cast<double>(1ull << (attempt - 1)),
                   options.backoff_max_ms) *
          JitterFactor(&jitter_state);
      sleep_ms(std::max(retry_after_s * 1e3, backoff_ms));
      last_error = "503 retry-after";
      continue;
    }
    last_error = result.error;
    // Mid-exchange failures are final (the request may have executed);
    // connect failures retry until attempts run out.
    if (result.kind == HttpAttemptResult::Kind::kBroken ||
        attempt == attempts) {
      return Status::IOError(last_error + " (attempt " +
                             std::to_string(attempt) + "/" +
                             std::to_string(attempts) + ")");
    }
    const double backoff_ms =
        std::min(options.backoff_base_ms *
                     static_cast<double>(1ull << (attempt - 1)),
                 options.backoff_max_ms) *
        JitterFactor(&jitter_state);
    sleep_ms(backoff_ms);
  }
  return Status::IOError(last_error.empty() ? "http call failed" : last_error);
}

}  // namespace schemr
