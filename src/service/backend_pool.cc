#include "service/backend_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "service/http_server.h"
#include "util/fault_injection.h"

namespace schemr {

namespace {

// Process-wide schemr_coord_* pool series. The registry is label-free,
// so these aggregate across backends; per-backend detail lives in the
// coordinator's /statusz.
struct PoolMetrics {
  Gauge* routable;
  Gauge* draining;
  Gauge* open;
  Counter* breaker_transitions;
  Counter* probe_failures;

  static const PoolMetrics& Get() {
    static const PoolMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new PoolMetrics{
          r.GetGauge("schemr_coord_backends_routable",
                     "Backends currently eligible for routing (ready, "
                     "not draining, breaker not open)."),
          r.GetGauge("schemr_coord_backends_draining",
                     "Backends with the admin draining bit set."),
          r.GetGauge("schemr_coord_backends_open",
                     "Backends whose circuit breaker is open."),
          r.GetCounter("schemr_coord_breaker_transitions_total",
                       "Circuit breaker state transitions across all "
                       "backends."),
          r.GetCounter("schemr_coord_probe_failures_total",
                       "Health probes that failed (connect failure, "
                       "timeout, or injected coord/probe/fail)."),
      };
    }();
    return *metrics;
  }
};

void JsonKey(std::string* out, const std::string& key) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  *out += key;  // keys are identifiers plus dots; nothing to escape
  *out += "\":";
}

void JsonNum(std::string* out, const std::string& key, double value) {
  JsonKey(out, key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void JsonStr(std::string* out, const std::string& key,
             const std::string& value) {
  JsonKey(out, key);
  out->push_back('"');
  *out += value;  // state names only; nothing to escape
  out->push_back('"');
}

void JsonBool(std::string* out, const std::string& key, bool value) {
  JsonKey(out, key);
  *out += value ? "true" : "false";
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

BackendPool::BackendPool(std::vector<BackendConfig> backends,
                         BackendPoolOptions options)
    : options_(options),
      route_rng_(options.route_seed),
      latency_ring_(std::max<size_t>(options.latency_window, 8), 0.0) {
  backends_.reserve(backends.size());
  for (size_t i = 0; i < backends.size(); ++i) {
    Backend b;
    b.config = std::move(backends[i]);
    if (b.config.name.empty()) {
      b.config.name = "replica" + std::to_string(i);
    }
    backends_.push_back(std::move(b));
  }
}

BackendPool::~BackendPool() { Stop(); }

void BackendPool::Start() {
  ProbeNow();
  bool expected = false;
  if (!probing_.compare_exchange_strong(expected, true)) return;
  prober_ = std::thread([this] { ProbeLoop(); });
}

void BackendPool::Stop() {
  probing_.store(false, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
}

void BackendPool::TransitionLocked(Backend* b, BreakerState next) {
  if (b->breaker == next) return;
  b->breaker = next;
  if (next == BreakerState::kOpen) b->opened_at = clock_.ElapsedSeconds();
  if (next == BreakerState::kClosed) b->consecutive_failures = 0;
  PoolMetrics::Get().breaker_transitions->Increment();
  PublishGaugesLocked();
}

void BackendPool::PublishGaugesLocked() {
  size_t routable = 0, draining = 0, open = 0;
  for (const Backend& b : backends_) {
    if (RoutableLocked(b)) ++routable;
    if (b.draining) ++draining;
    if (b.breaker == BreakerState::kOpen) ++open;
  }
  PoolMetrics::Get().routable->Set(static_cast<double>(routable));
  PoolMetrics::Get().draining->Set(static_cast<double>(draining));
  PoolMetrics::Get().open->Set(static_cast<double>(open));
}

int BackendPool::Acquire(const std::vector<int>& exclude) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> candidates;
  candidates.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (std::find(exclude.begin(), exclude.end(), static_cast<int>(i)) !=
        exclude.end()) {
      continue;
    }
    if (RoutableLocked(backends_[i])) candidates.push_back(static_cast<int>(i));
  }
  if (candidates.empty()) return -1;
  int pick;
  if (candidates.size() == 1) {
    pick = candidates[0];
  } else {
    // Power-of-two-choices: two distinct random candidates, route to the
    // one with fewer requests in flight (ties go to the first pick).
    const size_t a = route_rng_.NextBelow(candidates.size());
    size_t b = route_rng_.NextBelow(candidates.size() - 1);
    if (b >= a) ++b;
    pick = backends_[candidates[b]].in_flight <
                   backends_[candidates[a]].in_flight
               ? candidates[b]
               : candidates[a];
  }
  ++backends_[pick].in_flight;
  return pick;
}

void BackendPool::Release(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= backends_.size()) return;
  if (backends_[id].in_flight > 0) --backends_[id].in_flight;
}

void BackendPool::ReportOutcome(int id, bool success, double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= backends_.size()) return;
  Backend& b = backends_[id];
  ++b.requests;
  if (success) {
    b.consecutive_failures = 0;
    // A live answer is as good as a probe: it re-closes a half-open
    // breaker and feeds the hedge-delay estimate.
    if (b.breaker == BreakerState::kHalfOpen) {
      TransitionLocked(&b, BreakerState::kClosed);
    }
    latency_ring_[latency_next_] = latency_ms;
    latency_next_ = (latency_next_ + 1) % latency_ring_.size();
    latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
    return;
  }
  ++b.failures;
  ++b.consecutive_failures;
  if (b.breaker == BreakerState::kHalfOpen ||
      (b.breaker == BreakerState::kClosed &&
       b.consecutive_failures >= options_.failure_threshold)) {
    TransitionLocked(&b, BreakerState::kOpen);
  }
}

void BackendPool::SetDraining(int id, bool draining) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= backends_.size()) return;
  backends_[id].draining = draining;
  PublishGaugesLocked();
}

void BackendPool::UpdateBackend(int id, const BackendConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= backends_.size()) return;
  Backend& b = backends_[id];
  b.config = config;
  if (b.config.name.empty()) b.config.name = "replica" + std::to_string(id);
  ++b.generation;  // in-flight probe verdicts against the old ports drop
  b.ready = false;  // the next probe readmits the fresh process
  b.consecutive_failures = 0;
  TransitionLocked(&b, BreakerState::kClosed);
  PublishGaugesLocked();
}

BackendConfig BackendPool::Config(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= backends_.size()) return {};
  return backends_[id].config;
}

void BackendPool::ProbeBackend(size_t id) {
  BackendConfig config;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= backends_.size()) return;
    Backend& b = backends_[id];
    // Cooldown check rides the probe cadence: an open breaker past its
    // cooldown goes half-open, and this very probe decides readmission.
    if (b.breaker == BreakerState::kOpen &&
        clock_.ElapsedSeconds() - b.opened_at >=
            options_.open_cooldown_seconds) {
      TransitionLocked(&b, BreakerState::kHalfOpen);
    }
    config = b.config;
    generation = b.generation;
  }

  // Probe I/O off-lock. Any complete HTTP response means the process is
  // alive (half-open → closed); only a 200 means it routes.
  bool alive = false;
  bool ready = false;
  if (FaultInjector::Global().Check("coord/probe/fail") == 0) {
    HttpCallOptions probe;
    probe.method = "GET";
    probe.attempt_timeout_seconds = options_.probe_timeout_seconds;
    auto reply = HttpCall(config.host, config.introspection_port, "/readyz",
                          probe);
    if (reply.ok()) {
      alive = true;
      ready = reply->status == 200;
    }
  }
  if (!alive) PoolMetrics::Get().probe_failures->Increment();

  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= backends_.size()) return;
  Backend& b = backends_[id];
  if (b.generation != generation) return;  // re-pointed mid-probe: stale
  b.ready = ready;
  if (alive && b.breaker == BreakerState::kHalfOpen) {
    TransitionLocked(&b, BreakerState::kClosed);
  } else if (!alive && b.breaker == BreakerState::kHalfOpen) {
    TransitionLocked(&b, BreakerState::kOpen);
  }
  PublishGaugesLocked();
}

void BackendPool::ProbeNow() {
  for (size_t i = 0; i < backends_.size(); ++i) ProbeBackend(i);
}

void BackendPool::ProbeLoop() {
  while (probing_.load(std::memory_order_acquire)) {
    ProbeNow();
    // Sleep in short ticks so Stop() returns promptly.
    double remaining = options_.probe_interval_seconds;
    while (remaining > 0.0 && probing_.load(std::memory_order_acquire)) {
      const double tick = std::min(remaining, 0.02);
      std::this_thread::sleep_for(std::chrono::duration<double>(tick));
      remaining -= tick;
    }
  }
}

double BackendPool::HedgeDelayMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latency_count_ == 0) return options_.min_hedge_delay_ms;
  std::vector<double> sample(latency_ring_.begin(),
                             latency_ring_.begin() +
                                 static_cast<long>(latency_count_));
  const size_t nth = static_cast<size_t>(
      0.95 * static_cast<double>(sample.size() - 1));
  std::nth_element(sample.begin(), sample.begin() + static_cast<long>(nth),
                   sample.end());
  return std::max(sample[nth], options_.min_hedge_delay_ms);
}

std::vector<BackendSnapshot> BackendPool::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const Backend& b : backends_) {
    BackendSnapshot s;
    s.name = b.config.name;
    s.host = b.config.host;
    s.search_port = b.config.search_port;
    s.introspection_port = b.config.introspection_port;
    s.breaker = b.breaker;
    s.draining = b.draining;
    s.ready = b.ready;
    s.routable = RoutableLocked(b);
    s.in_flight = b.in_flight;
    s.requests = b.requests;
    s.failures = b.failures;
    s.consecutive_failures = b.consecutive_failures;
    out.push_back(std::move(s));
  }
  return out;
}

size_t BackendPool::RoutableCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const Backend& b : backends_) {
    if (RoutableLocked(b)) ++n;
  }
  return n;
}

void BackendPool::AppendStatsJson(std::string* out) const {
  std::vector<BackendSnapshot> snapshot = Snapshot();
  JsonNum(out, "pool.backends", static_cast<double>(snapshot.size()));
  size_t routable = 0;
  for (const BackendSnapshot& s : snapshot) routable += s.routable ? 1 : 0;
  JsonNum(out, "pool.routable", static_cast<double>(routable));
  JsonNum(out, "pool.hedge_delay_ms", HedgeDelayMs());
  for (const BackendSnapshot& s : snapshot) {
    const std::string& p = s.name;
    JsonStr(out, p + ".state", BreakerStateName(s.breaker));
    JsonBool(out, p + ".ready", s.ready);
    JsonBool(out, p + ".draining", s.draining);
    JsonBool(out, p + ".routable", s.routable);
    JsonNum(out, p + ".search_port", static_cast<double>(s.search_port));
    // `schemr trace` walks these ports to collect each replica's /tracez.
    JsonNum(out, p + ".introspection_port",
            static_cast<double>(s.introspection_port));
    JsonNum(out, p + ".in_flight", static_cast<double>(s.in_flight));
    JsonNum(out, p + ".requests", static_cast<double>(s.requests));
    JsonNum(out, p + ".failures", static_cast<double>(s.failures));
  }
}

}  // namespace schemr
