#include "service/admission.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace schemr {

namespace {

uint64_t ToBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Shed accounting: one total plus a per-reason breakdown, so dashboards
/// can tell "queue bound hit" from "deadline infeasible" from "draining".
struct AdmissionMetrics {
  Counter* admitted;
  Counter* shed_total;
  Counter* shed_queue_full;
  Counter* shed_deadline;
  Counter* shed_drain;
  Gauge* queue_depth;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new AdmissionMetrics{
          r.GetCounter("schemr_requests_admitted_total",
                       "Requests accepted by admission control."),
          r.GetCounter("schemr_requests_shed_total",
                       "Requests refused by admission control (all "
                       "reasons)."),
          r.GetCounter("schemr_requests_shed_queue_full_total",
                       "Requests shed because the pending queue was at "
                       "its bound."),
          r.GetCounter("schemr_requests_shed_deadline_total",
                       "Requests shed because predicted queueing delay "
                       "exceeded their deadline."),
          r.GetCounter("schemr_requests_shed_drain_total",
                       "Requests refused because the service was "
                       "draining for shutdown."),
          r.GetGauge("schemr_admission_queue_depth",
                     "Pending queue depth observed at the last admission "
                     "decision."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      ewma_bits_(ToBits(std::max(1e-6, options.initial_service_seconds))) {}

double AdmissionController::PredictedServiceSeconds() const {
  return FromBits(ewma_bits_.load(std::memory_order_relaxed));
}

void AdmissionController::RecordServiceTime(double seconds) {
  if (seconds < 0.0) return;
  uint64_t observed = ewma_bits_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    const double current = FromBits(observed);
    next = ToBits(current + options_.ewma_alpha * (seconds - current));
  } while (!ewma_bits_.compare_exchange_weak(observed, next,
                                             std::memory_order_relaxed));
}

void AdmissionController::CountShed(const std::string& reason) {
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.shed_total->Increment();
  if (reason == "queue_full") {
    metrics.shed_queue_full->Increment();
  } else if (reason == "deadline") {
    metrics.shed_deadline->Increment();
  } else if (reason == "shutting_down") {
    metrics.shed_drain->Increment();
  }
}

AdmissionDecision AdmissionController::Admit(size_t queue_depth,
                                             double deadline_seconds) {
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.queue_depth->Set(static_cast<double>(queue_depth));

  AdmissionDecision decision;
  decision.deadline_seconds = deadline_seconds > 0.0
                                  ? deadline_seconds
                                  : options_.default_deadline_seconds;

  const double predicted = PredictedServiceSeconds();
  const double workers =
      static_cast<double>(std::max<size_t>(1, options_.num_workers));
  // Expected time before a worker reaches a request joining now: the
  // backlog drained at worker parallelism, plus its own service time.
  const double expected_wait =
      predicted * (static_cast<double>(queue_depth) / workers + 1.0);

  if (draining()) {
    decision.admit = false;
    decision.reason = "shutting_down";
    // No useful retry horizon: this process is going away.
    decision.retry_after_ms = 0.0;
    CountShed("shutting_down");
    return decision;
  }

  if (queue_depth >= options_.max_queue_depth) {
    decision.admit = false;
    decision.reason = "queue_full";
    decision.retry_after_ms =
        std::max(options_.retry_after_base_ms, expected_wait * 1e3);
    CountShed("queue_full");
    return decision;
  }

  if (expected_wait > decision.deadline_seconds) {
    decision.admit = false;
    decision.reason = "deadline";
    decision.retry_after_ms = std::max(
        options_.retry_after_base_ms,
        (expected_wait - decision.deadline_seconds) * 1e3);
    CountShed("deadline");
    return decision;
  }

  metrics.admitted->Increment();
  return decision;
}

}  // namespace schemr
