#include "service/admission.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace schemr {

namespace {

uint64_t ToBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Shed accounting: one total plus a per-reason breakdown, so dashboards
/// can tell "queue bound hit" from "deadline infeasible" from "draining".
struct AdmissionMetrics {
  Counter* admitted;
  Counter* shed_total;
  Counter* shed_queue_full;
  Counter* shed_deadline;
  Counter* shed_drain;
  Gauge* queue_depth;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new AdmissionMetrics{
          r.GetCounter("schemr_requests_admitted_total",
                       "Requests accepted by admission control."),
          r.GetCounter("schemr_requests_shed_total",
                       "Requests refused by admission control (all "
                       "reasons)."),
          r.GetCounter("schemr_requests_shed_queue_full_total",
                       "Requests shed because the pending queue was at "
                       "its bound."),
          r.GetCounter("schemr_requests_shed_deadline_total",
                       "Requests shed because predicted queueing delay "
                       "exceeded their deadline."),
          r.GetCounter("schemr_requests_shed_drain_total",
                       "Requests refused because the service was "
                       "draining for shutdown."),
          r.GetGauge("schemr_admission_queue_depth",
                     "Pending queue depth observed at the last admission "
                     "decision."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      ewma_bits_(ToBits(std::max(1e-6, options.initial_service_seconds))) {}

double AdmissionController::PredictedServiceSeconds() const {
  return FromBits(ewma_bits_.load(std::memory_order_relaxed));
}

void AdmissionController::RecordServiceTime(double seconds) {
  if (seconds < 0.0) return;
  uint64_t observed = ewma_bits_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    const double current = FromBits(observed);
    next = ToBits(current + options_.ewma_alpha * (seconds - current));
  } while (!ewma_bits_.compare_exchange_weak(observed, next,
                                             std::memory_order_relaxed));
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kDrain:
      return "shutting_down";
  }
  return "";
}

void AdmissionController::CountShed(ShedReason reason) {
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.shed_total->Increment();
  switch (reason) {
    case ShedReason::kNone:
      break;
    case ShedReason::kQueueFull:
      metrics.shed_queue_full->Increment();
      break;
    case ShedReason::kDeadline:
      metrics.shed_deadline->Increment();
      break;
    case ShedReason::kDrain:
      metrics.shed_drain->Increment();
      break;
  }
}

AdmissionDecision AdmissionController::Admit(size_t queue_depth,
                                             double deadline_seconds) {
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.queue_depth->Set(static_cast<double>(queue_depth));

  AdmissionDecision decision;
  decision.deadline_seconds = deadline_seconds > 0.0
                                  ? deadline_seconds
                                  : options_.default_deadline_seconds;

  const double predicted = PredictedServiceSeconds();
  const double workers =
      static_cast<double>(std::max<size_t>(1, options_.num_workers));
  // Expected time before a worker reaches a request joining now: the
  // backlog drained at worker parallelism, plus its own service time.
  const double expected_wait =
      predicted * (static_cast<double>(queue_depth) / workers + 1.0);

  const auto shed = [&](ShedReason reason, double retry_after_ms) {
    decision.admit = false;
    decision.shed_reason = reason;
    decision.reason = ShedReasonName(reason);
    decision.retry_after_ms = retry_after_ms;
    CountShed(reason);
    return decision;
  };

  if (draining()) {
    // No useful retry horizon: this process is going away.
    return shed(ShedReason::kDrain, 0.0);
  }

  if (queue_depth >= options_.max_queue_depth) {
    return shed(ShedReason::kQueueFull,
                std::max(options_.retry_after_base_ms, expected_wait * 1e3));
  }

  if (expected_wait > decision.deadline_seconds) {
    return shed(ShedReason::kDeadline,
                std::max(options_.retry_after_base_ms,
                         (expected_wait - decision.deadline_seconds) * 1e3));
  }

  metrics.admitted->Increment();
  return decision;
}

}  // namespace schemr
