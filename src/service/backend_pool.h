// Replica health tracking and routing for the fleet coordinator
// (DESIGN.md §14).
//
// A BackendPool watches N independent `schemr serve` processes — replicas
// with identical corpora, not shards — and answers one question for the
// coordinator: "which backend takes this request?" Health is judged two
// ways, because each signal fails differently:
//
//   * Active probes: a probe thread GETs every backend's /readyz on its
//     introspection port each interval. A probe distinguishes "draining"
//     (503 + readiness body) from "dead" (connect refused), which passive
//     accounting cannot — a draining backend still answers its in-flight
//     requests, a dead one answers nothing.
//   * Passive outcomes: the coordinator reports every forwarded request's
//     fate. `failure_threshold` consecutive failures trip a circuit
//     breaker open; after `open_cooldown_seconds` the probe thread moves
//     it to half-open and a single successful /readyz probe re-closes it.
//     Live traffic never probes an open breaker — the probe thread does,
//     so a dead backend costs the request path nothing.
//
// Routing is power-of-two-choices on in-flight count over routable
// backends (breaker closed, probe-ready, not admin-draining): pick two
// distinct candidates at random, route to the less loaded. This bounds
// herding without the bookkeeping of full least-loaded.
//
// The pool also keeps a latency ring so the coordinator can derive a p95
// hedge delay, and an admin draining bit the fleet supervisor sets before
// SIGINTing a replica (rolling drain: stop routing first, then drain).
//
// Thread safety: everything is safe to call concurrently; one mutex
// guards the backend table (probe I/O happens off-lock against a copied
// endpoint).

#ifndef SCHEMR_SERVICE_BACKEND_POOL_H_
#define SCHEMR_SERVICE_BACKEND_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/timer.h"

namespace schemr {

/// One replica's endpoints. A respawned replica comes back on fresh
/// ephemeral ports; the supervisor re-points the slot with
/// BackendPool::UpdateBackend rather than reserving ports up front.
struct BackendConfig {
  std::string host = "127.0.0.1";
  int search_port = 0;         ///< POST /search
  int introspection_port = 0;  ///< GET /readyz (probe target)
  std::string name;            ///< "replica0"; for stats and logs
};

/// Circuit breaker state, the classic three-state machine.
enum class BreakerState {
  kClosed,    ///< healthy: routable, failures counted
  kOpen,      ///< tripped: not routable until cooldown elapses
  kHalfOpen,  ///< cooldown done: one successful probe re-closes
};

const char* BreakerStateName(BreakerState state);

struct BackendPoolOptions {
  /// Probe cadence. Each cycle GETs every backend's /readyz.
  double probe_interval_seconds = 0.25;
  double probe_timeout_seconds = 1.0;
  /// Consecutive passive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Open → half-open after this long without traffic.
  double open_cooldown_seconds = 0.5;
  /// Latency ring size per pool (for the p95 hedge delay).
  size_t latency_window = 512;
  /// Hedge delay returned before the ring has data, and its floor after.
  double min_hedge_delay_ms = 20.0;
  /// Seed for the power-of-two candidate picks (deterministic tests).
  uint64_t route_seed = 1;
};

/// Point-in-time view of one backend, for /statusz and tests.
struct BackendSnapshot {
  std::string name;
  std::string host;
  int search_port = 0;
  int introspection_port = 0;
  BreakerState breaker = BreakerState::kClosed;
  bool draining = false;  ///< admin bit (rolling drain in progress)
  bool ready = false;     ///< last probe verdict
  bool routable = false;  ///< ready && !draining && breaker != open
  uint64_t in_flight = 0;
  uint64_t requests = 0;  ///< passive outcomes reported
  uint64_t failures = 0;
  int consecutive_failures = 0;
};

class BackendPool {
 public:
  BackendPool(std::vector<BackendConfig> backends,
              BackendPoolOptions options = {});
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Runs one synchronous probe sweep (so backends that are already up
  /// are routable immediately), then starts the probe thread.
  void Start();
  /// Stops the probe thread. Idempotent.
  void Stop();

  size_t size() const { return backends_.size(); }

  /// Picks a routable backend by power-of-two-choices on in-flight
  /// count, skipping ids in `exclude` (backends this request already
  /// failed over from). Returns -1 when no routable backend remains.
  /// The pick's in-flight count is incremented; Release() it.
  int Acquire(const std::vector<int>& exclude = {});
  void Release(int id);

  /// Passive outcome accounting from the coordinator: failures feed the
  /// consecutive-failure breaker, successes reset it and feed the
  /// latency ring.
  void ReportOutcome(int id, bool success, double latency_ms);

  /// Admin draining bit: a draining backend stops receiving new routes
  /// immediately but keeps its breaker state (it is healthy, just
  /// leaving). The fleet supervisor sets this before SIGINT.
  void SetDraining(int id, bool draining);

  /// Re-points a slot at a respawned replica (fresh ports) and resets
  /// its breaker to closed-but-not-ready; the next probe readmits it.
  void UpdateBackend(int id, const BackendConfig& config);

  BackendConfig Config(int id) const;

  /// Runs one probe sweep inline (tests; Start does this once too).
  void ProbeNow();

  /// p95 of reported success latencies, floored at min_hedge_delay_ms.
  double HedgeDelayMs() const;

  std::vector<BackendSnapshot> Snapshot() const;
  size_t RoutableCount() const;

  /// Flat JSON fragment ("replica0.state": "closed", ...) appended into
  /// the coordinator's /statusz object; `out` must be inside an open
  /// JSON object literal.
  void AppendStatsJson(std::string* out) const;

 private:
  struct Backend {
    BackendConfig config;
    BreakerState breaker = BreakerState::kClosed;
    bool draining = false;
    bool ready = false;
    double opened_at = 0.0;  ///< clock_ reading at the open transition
    int consecutive_failures = 0;
    uint64_t in_flight = 0;
    uint64_t requests = 0;
    uint64_t failures = 0;
    /// Bumped by UpdateBackend so a probe verdict computed against the
    /// old endpoints is dropped instead of applied to the new ones.
    uint64_t generation = 0;
  };

  bool RoutableLocked(const Backend& b) const {
    return b.ready && !b.draining && b.breaker != BreakerState::kOpen;
  }
  void TransitionLocked(Backend* b, BreakerState next);
  void ProbeLoop();
  /// Probes one backend (off-lock I/O) and applies the verdict.
  void ProbeBackend(size_t id);
  void PublishGaugesLocked();

  const BackendPoolOptions options_;
  mutable std::mutex mutex_;
  std::vector<Backend> backends_;
  Rng route_rng_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  std::atomic<bool> probing_{false};
  std::thread prober_;
  Timer clock_;  ///< monotonic time source for breaker cooldowns
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_BACKEND_POOL_H_
