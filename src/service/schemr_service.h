// The Schemr server facade (paper Fig. 5).
//
// The GUI sends a search request (keywords + optional DDL/XSD fragment);
// the service runs the three-phase pipeline and returns results "as an XML
// response to the client". Clicking a result triggers a second request
// with the schema ID; the service looks the schema up in the repository
// and returns a GraphML rendering. This module implements both endpoints
// headlessly (strings in, strings out), plus an HTML report that plays the
// role of the two-panel GUI.

#ifndef SCHEMR_SERVICE_SCHEMR_SERVICE_H_
#define SCHEMR_SERVICE_SCHEMR_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "obs/audit_log.h"
#include "obs/telemetry.h"
#include "service/admission.h"
#include "service/http_introspection.h"
#include "util/executor.h"
#include "viz/graph_view.h"

namespace schemr {

/// A client search request.
struct SearchRequest {
  std::string keywords;
  /// DDL or XSD fragment text; format auto-detected. May be empty.
  std::string fragment;
  size_t top_k = 10;
  size_t candidate_pool = 50;
  /// Explain mode: when true, SearchXml appends an <explain> element with
  /// the per-phase span breakdown (timings, pool sizes, per-matcher
  /// latencies, tightness penalty totals). Default responses are
  /// byte-identical to the non-explain wire format.
  bool explain = false;
  /// Escape hatch (`cache=bypass` on the wire): run the full pipeline even
  /// when the engine's result cache holds this query, and do not store the
  /// outcome. For debugging and cache-vs-pipeline comparisons.
  bool cache_bypass = false;
  /// Signature pre-filter threshold (`prefilter=` on the wire), in
  /// [0, 1). 0 = exact search (the default). When > 0 the request opts
  /// into the approximate signature screen
  /// (SearchEngineOptions::prefilter).
  double prefilter = 0.0;
  /// Fleet-wide request id (DESIGN.md §15). Transport metadata, never
  /// part of the XML wire format: HandleSearchHttp fills it from the
  /// X-Schemr-Request-Id header (validated, or freshly minted) and it
  /// flows into the audit record and retained trace of this request.
  /// Empty for callers below the HTTP layer.
  std::string request_id;
};

/// Request-validation caps. Requests breaching them are rejected with
/// InvalidArgument before any pipeline work runs (a service exposed to
/// clients must bound the work one request can demand).
struct ServiceLimits {
  size_t max_keywords_bytes = 4096;
  size_t max_fragment_bytes = 1 << 20;
  /// Visualization drill-in depth cap: a request asking for a deeper
  /// traversal than this is rejected (depth bounds the rendered graph
  /// and thus the response size).
  size_t max_viz_depth = 64;
};

/// Configuration for StartServing: the worker pool that executes search
/// requests and the admission policy that guards it.
struct ServingOptions {
  BoundedExecutor::Options executor;
  AdmissionOptions admission;
  /// A request that spent more than this fraction of its deadline waiting
  /// in the queue runs with a tightened per-matcher budget (the PR-2
  /// degradation ladder) instead of being dropped.
  double near_deadline_fraction = 0.5;
  /// The tightened per-matcher budget, as a fraction of the remaining
  /// deadline.
  double near_deadline_budget_fraction = 0.25;
  /// Threads each admitted request may use to score its candidate pool
  /// (SearchEngineOptions::scoring_threads). The engine owns that pool;
  /// it is distinct from `executor` above, which bounds how many requests
  /// run at once. 1 = serial scoring.
  size_t scoring_threads = 1;
  /// When > 0, StartServing installs a snapshot-keyed result cache of this
  /// many entries on the engine (see core/result_cache.h). 0 = no cache.
  size_t result_cache_capacity = 0;
  /// When >= 0, StartServing brings up the HTTP introspection listener on
  /// this loopback port (0 = kernel-assigned ephemeral; read the bound
  /// port from introspection()->port()). Disabled (-1) by default: the
  /// introspection plane is opt-in per process.
  int introspection_port = -1;
  /// When >= 0, StartServing brings up the search serving front end
  /// (POST /search over the hardened HttpServer; DESIGN.md §13) on this
  /// port (0 = ephemeral; read search_server()->port()). Disabled (-1)
  /// by default.
  int search_port = -1;
  /// Socket hardening knobs for the search front end (timeout ladder,
  /// connection cap, input bounds). `search_http.port` is overridden by
  /// `search_port` above.
  HttpServerOptions search_http;
  /// Windowed-telemetry sampler configuration (the sampler itself always
  /// runs while serving; it costs one registry Collect per interval).
  TelemetryOptions telemetry;
  /// Tail-sampled trace retention configuration. `sample_every_n = 0`
  /// disables sampling but still retains interesting outcomes
  /// metadata-only.
  TraceRetentionOptions trace_retention;
};

/// How a search outcome should look on the wire, filled by
/// HandleSearchXml for transports (the HTTP front end) that must map the
/// outcome onto protocol status codes without re-parsing the response
/// XML. The XML body itself is identical with or without this side
/// channel — byte-identical serving is the front end's contract.
struct SearchWireInfo {
  /// Why admission refused the request, kNone when it ran (or failed for
  /// a non-admission reason).
  ShedReason shed_reason = ShedReason::kNone;
  /// The Retry-After hint attached to a shed, milliseconds; 0 when none.
  double retry_after_ms = 0.0;
  /// The <error code="..."> slug when the response is an error, empty on
  /// success ("overloaded", "shutting_down", "invalid_argument", ...).
  std::string error_code;
};

/// Serializes a SearchRequest as the request wire format the search
/// front end accepts over POST /search:
///   <query keywords="..." top_k="10" pool="50" [explain="true"]
///          [cache="bypass"]>[<fragment>...</fragment>]</query>
std::string SearchRequestToXml(const SearchRequest& request);

/// Parses the POST /search request body. InvalidArgument on malformed
/// XML, a non-<query> root, or non-numeric attributes.
Result<SearchRequest> ParseSearchRequestXml(const std::string& xml);

/// A client visualization request ("drill-in").
struct VisualizationRequest {
  SchemaId schema_id = kNoSchema;
  /// Drill-in root (double-clicked node); kNoElement shows the forest.
  ElementId root = kNoElement;
  size_t max_depth = 3;
  /// "tree" or "radial".
  std::string layout = "tree";
  /// Per-element match scores from a previous search response, for color
  /// encoding. May be empty.
  std::vector<MatchedElement> scores;
};

class SchemrService {
 public:
  /// Static mode: serves a fixed repository/index pair. Safe for
  /// concurrent requests only while neither is mutated (see
  /// SearchEngine's thread-safety contract).
  SchemrService(const SchemaRepository* repository,
                const InvertedIndex* index,
                MatcherEnsemble ensemble = MatcherEnsemble::Default(),
                ServiceLimits limits = {})
      : repository_(repository),
        engine_(repository, index, std::move(ensemble)),
        limits_(limits) {}

  /// Corpus mode: every request runs against one CorpusSnapshot, so
  /// concurrent searches are safe while the corpus ingests. Required for
  /// StartServing.
  explicit SchemrService(const ServingCorpus* corpus,
                         MatcherEnsemble ensemble = MatcherEnsemble::Default(),
                         ServiceLimits limits = {})
      : corpus_(corpus),
        repository_(corpus->repository()),
        engine_(corpus, std::move(ensemble)),
        limits_(limits) {}

  /// Pinned-snapshot mode: every request runs against exactly this
  /// snapshot. For CLI tools that assemble a snapshot by hand (index
  /// segment + repository view + persisted signature catalog) without a
  /// live corpus. `repository` serves annotation and visualization
  /// traffic and must outlive the service.
  SchemrService(const SchemaRepository* repository,
                std::shared_ptr<const CorpusSnapshot> snapshot,
                MatcherEnsemble ensemble = MatcherEnsemble::Default(),
                ServiceLimits limits = {})
      : repository_(repository),
        engine_(std::move(snapshot), std::move(ensemble)),
        limits_(limits) {}

  ~SchemrService();

  // --- Concurrent serving (DESIGN.md §9) ---------------------------------

  /// Brings up the bounded worker pool and admission control behind
  /// HandleSearchXml. InvalidArgument in static mode (snapshot isolation
  /// is what makes concurrent serving safe); FailedPrecondition if
  /// already serving or already shut down.
  Status StartServing(ServingOptions options = {});

  /// The admission-controlled search endpoint. Always returns well-formed
  /// XML: ranked <results> on success, or <error code="..."/> where code
  /// is "overloaded" (shed; carries retry_after_ms), "shutting_down"
  /// (drain began), or the status-code name of a pipeline failure.
  /// `deadline_seconds` <= 0 uses the admission default. Before
  /// StartServing (or after Shutdown completes) requests are not queued:
  /// they run inline on the caller's thread (still deadline-bounded), so
  /// single-threaded callers need no serving setup.
  /// `wire`, when non-null, receives transport-mapping facts about the
  /// outcome (shed reason, retry-after, error slug); the returned XML is
  /// byte-identical either way.
  std::string HandleSearchXml(const SearchRequest& request,
                              double deadline_seconds = 0.0,
                              SearchWireInfo* wire = nullptr) const;

  /// The POST /search endpoint: parses the XML request body, reads the
  /// client deadline from the X-Schemr-Deadline-Ms header (absent or
  /// non-positive = admission default), runs HandleSearchXml, and maps
  /// the outcome onto the HTTP status ladder: 200 with the response XML
  /// (including pipeline <error>s that are the caller's fault — they ran),
  /// 400 for malformed request XML / invalid arguments, 503 with
  /// Retry-After and an X-Schemr-Shed header for sheds and drain, 500
  /// for internal failures. Success bodies are byte-identical to the
  /// in-process HandleSearchXml return for the same request.
  HttpResponse HandleSearchHttp(const HttpRequest& request) const;

  /// Graceful drain: stops admitting (new requests get
  /// <error code="shutting_down"/>), waits up to `deadline_seconds` for
  /// in-flight and queued requests to finish, cancels stragglers (their
  /// waiters receive the shutting_down error), and wedges the serving
  /// path. Idempotent; returns the drain outcome (OK, or Unavailable if
  /// the deadline expired first).
  Status Shutdown(double deadline_seconds);

  /// True between StartServing and Shutdown.
  bool serving() const;

  // --- Query audit log (DESIGN.md §10) -----------------------------------

  /// Opens (creating if needed) an audit log at `dir` and records every
  /// subsequent search request into it: admitted requests (with phase
  /// latencies, fingerprint and result digest) from the pipeline path,
  /// shed/cancelled requests from the admission path. Idempotent per
  /// service; call before StartServing.
  Status EnableAudit(const std::string& dir, AuditLogOptions options = {});

  /// Shares an already-open log (several services, or a test, can feed
  /// one log).
  void EnableAudit(std::shared_ptr<AuditLog> log);

  /// The active audit log, or null when auditing is off.
  std::shared_ptr<AuditLog> audit() const;

  /// Runs a search and returns structured results.
  Result<std::vector<SearchResult>> Search(
      const SearchRequest& request,
      const SearchEngineOptions& engine_options = {}) const;

  /// Runs a search and serializes the ranked list as the XML wire format:
  /// <results query="..."><result id=".." name=".." score=".."
  /// matches=".." entities=".." attributes=".."><description>..
  /// </description><element id=".." score=".."/>...</result></results>
  /// A degraded search (matcher dropped, deadline hit) adds
  /// degraded="true" on <results>, and explain mode a <degradation>
  /// element naming what was given up; non-degraded responses are
  /// byte-identical to the pre-degradation wire format.
  Result<std::string> SearchXml(
      const SearchRequest& request,
      const SearchEngineOptions& engine_options = {}) const;

  /// Resolves a visualization request to a laid-out GraphML document.
  Result<std::string> GetSchemaGraphMl(
      const VisualizationRequest& request) const;

  /// Renders an SVG for a visualization request (used by the HTML report
  /// and the examples).
  Result<std::string> GetSchemaSvg(const VisualizationRequest& request) const;

  /// Full GUI substitute: search, then render the results table plus the
  /// top `max_panels` schemas side by side.
  Result<std::string> RenderHtmlReport(
      const SearchRequest& request, size_t max_panels = 3,
      const SearchEngineOptions& engine_options = {}) const;

  /// Scrape endpoint: the process-wide metrics registry in Prometheus
  /// text exposition format (all schemr_* series — pipeline, index,
  /// store, and per-endpoint service metrics). Refreshes the derived
  /// result-cache gauges first.
  std::string MetricsText() const;

  /// The same registry as a JSON object (dashboards, the CLI).
  std::string MetricsJson() const;

  // --- Introspection plane (DESIGN.md §12) -------------------------------

  /// The /statusz body: one flat JSON object (objects, numbers, strings
  /// and booleans only — no arrays — so obs/replay.h's ParseBenchJson and
  /// `schemr top` can read it) covering uptime, corpus snapshot, result
  /// cache, executor, admission, trace-retention stats, build info, and
  /// 1m/5m/15m windowed qps / latency percentiles / error and shed rates.
  std::string StatuszJson() const;

  /// The /healthz body. `http_status` (may be null) receives 200 when the
  /// process should stay in a load balancer's rotation, 503 when draining
  /// or wedged (or never started serving).
  std::string HealthzJson(int* http_status = nullptr) const;

  /// The /readyz body: readiness as a router sees it, one of
  /// `ready` (200), `draining` (503 — alive, finishing in-flight work,
  /// route elsewhere), or `not_serving` (503 — never started, wedged, or
  /// shut down). Split from /healthz so probes can tell "dying" from
  /// "dead": the fleet coordinator keys routing off this endpoint.
  std::string ReadyzJson(int* http_status = nullptr) const;

  /// The /tracez body: retained traces grouped by category (see
  /// obs/telemetry.h TraceRetention). "{}" until StartServing.
  std::string TracezJson() const;

  /// The /slowz body: the audit log's in-memory slow-query ring, newest
  /// last. Empty ring (or auditing off) yields {"count": 0}.
  std::string SlowzJson() const;

  /// The live introspection listener, or null when not enabled. Valid
  /// between StartServing and destruction.
  const IntrospectionServer* introspection() const {
    return introspection_.get();
  }

  /// The live search front end, or null when not enabled
  /// (ServingOptions::search_port < 0). Valid between StartServing and
  /// destruction.
  const HttpServer* search_server() const { return search_server_.get(); }

  /// The windowed-telemetry sampler, or null before StartServing.
  TelemetrySampler* telemetry() const { return telemetry_.get(); }

  /// The trace-retention rings, or null before StartServing.
  TraceRetention* trace_retention() const { return traces_.get(); }

  const SearchEngine& engine() const { return engine_; }

  /// Installs a result cache on the engine (see core/result_cache.h).
  /// StartServing does this automatically when
  /// ServingOptions::result_cache_capacity > 0; call directly for
  /// non-serving (inline) use. Call before searches run concurrently.
  void EnableResultCache(size_t capacity) {
    engine_.EnableResultCache(capacity);
  }

 private:
  /// What the pipeline path hands back for the audit record: computed
  /// where the parsed query and ranked results already exist, so auditing
  /// costs no extra parse or copy on the hot path.
  struct SearchAuditInfo {
    bool filled = false;  ///< false when the request failed before ranking
    uint64_t fingerprint = 0;
    uint64_t digest = 0;
    uint32_t result_count = 0;
    SearchStats stats;
  };

  Result<SchemaGraphView> BuildView(const VisualizationRequest& request) const;
  /// InvalidArgument for malformed or over-limit requests; see
  /// ServiceLimits.
  Status ValidateRequest(const SearchRequest& request) const;
  /// InvalidArgument for over-limit depth or unknown layout strings,
  /// checked before any repository access.
  Status ValidateRequest(const VisualizationRequest& request) const;
  /// SearchXml with an optional audit side-channel (null skips the
  /// fingerprint/digest work entirely) and an optional caller-owned trace
  /// for tail sampling. `sample_trace` is engine-internal: it is filled
  /// like an explain trace but never serialized, so sampled responses
  /// stay byte-identical to unsampled ones. Ignored when the request
  /// itself asks for explain (the explain trace wins).
  Result<std::string> SearchXmlInternal(const SearchRequest& request,
                                        const SearchEngineOptions& options,
                                        SearchAuditInfo* audit,
                                        SearchTrace* sample_trace) const;
  /// Runs the search under `deadline_seconds` with the near-deadline
  /// degradation ladder applied and serializes the outcome (results or
  /// <error>) as XML. Records the request into the audit log when one is
  /// enabled. `wire` (may be null) receives the error slug on failure.
  std::string RunSearchToXml(const SearchRequest& request,
                             double deadline_seconds,
                             double original_deadline_seconds,
                             SearchWireInfo* wire = nullptr) const;
  /// Records a request refused before the pipeline ran (shed, cancelled,
  /// post-shutdown). No-op when auditing is off.
  void RecordRefusal(const SearchRequest& request, AuditOutcome outcome,
                     double deadline_seconds) const;

  const ServingCorpus* corpus_ = nullptr;  ///< null in static mode
  const SchemaRepository* repository_;
  SearchEngine engine_;
  ServiceLimits limits_;

  // Serving state (null until StartServing). The executor owns the
  // worker threads; the admission controller decides who gets one.
  ServingOptions serving_options_;
  std::unique_ptr<BoundedExecutor> executor_;
  std::unique_ptr<AdmissionController> admission_;
  mutable std::mutex serving_mutex_;  ///< guards the two pointers above
  bool shut_down_ = false;            ///< serving ended; do not restart

  mutable std::mutex audit_mutex_;    ///< guards audit_ (set-once, read often)
  std::shared_ptr<AuditLog> audit_;

  // Network planes (set under serving_mutex_ in StartServing, read
  // unguarded afterwards like serving_options_; never reset while the
  // service lives). The two listeners are declared last so their
  // destructors — which join handler threads that read every member
  // above — run first.
  std::unique_ptr<TelemetrySampler> telemetry_;
  std::unique_ptr<TraceRetention> traces_;
  std::unique_ptr<IntrospectionServer> introspection_;
  std::unique_ptr<HttpServer> search_server_;
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_SCHEMR_SERVICE_H_
