// The Schemr server facade (paper Fig. 5).
//
// The GUI sends a search request (keywords + optional DDL/XSD fragment);
// the service runs the three-phase pipeline and returns results "as an XML
// response to the client". Clicking a result triggers a second request
// with the schema ID; the service looks the schema up in the repository
// and returns a GraphML rendering. This module implements both endpoints
// headlessly (strings in, strings out), plus an HTML report that plays the
// role of the two-panel GUI.

#ifndef SCHEMR_SERVICE_SCHEMR_SERVICE_H_
#define SCHEMR_SERVICE_SCHEMR_SERVICE_H_

#include <string>
#include <vector>

#include "core/search_engine.h"
#include "viz/graph_view.h"

namespace schemr {

/// A client search request.
struct SearchRequest {
  std::string keywords;
  /// DDL or XSD fragment text; format auto-detected. May be empty.
  std::string fragment;
  size_t top_k = 10;
  size_t candidate_pool = 50;
  /// Explain mode: when true, SearchXml appends an <explain> element with
  /// the per-phase span breakdown (timings, pool sizes, per-matcher
  /// latencies, tightness penalty totals). Default responses are
  /// byte-identical to the non-explain wire format.
  bool explain = false;
};

/// Request-validation caps. Requests breaching them are rejected with
/// InvalidArgument before any pipeline work runs (a service exposed to
/// clients must bound the work one request can demand).
struct ServiceLimits {
  size_t max_keywords_bytes = 4096;
  size_t max_fragment_bytes = 1 << 20;
};

/// A client visualization request ("drill-in").
struct VisualizationRequest {
  SchemaId schema_id = kNoSchema;
  /// Drill-in root (double-clicked node); kNoElement shows the forest.
  ElementId root = kNoElement;
  size_t max_depth = 3;
  /// "tree" or "radial".
  std::string layout = "tree";
  /// Per-element match scores from a previous search response, for color
  /// encoding. May be empty.
  std::vector<MatchedElement> scores;
};

class SchemrService {
 public:
  SchemrService(const SchemaRepository* repository,
                const InvertedIndex* index,
                MatcherEnsemble ensemble = MatcherEnsemble::Default(),
                ServiceLimits limits = {})
      : repository_(repository),
        engine_(repository, index, std::move(ensemble)),
        limits_(limits) {}

  /// Runs a search and returns structured results.
  Result<std::vector<SearchResult>> Search(
      const SearchRequest& request,
      const SearchEngineOptions& engine_options = {}) const;

  /// Runs a search and serializes the ranked list as the XML wire format:
  /// <results query="..."><result id=".." name=".." score=".."
  /// matches=".." entities=".." attributes=".."><description>..
  /// </description><element id=".." score=".."/>...</result></results>
  /// A degraded search (matcher dropped, deadline hit) adds
  /// degraded="true" on <results>, and explain mode a <degradation>
  /// element naming what was given up; non-degraded responses are
  /// byte-identical to the pre-degradation wire format.
  Result<std::string> SearchXml(
      const SearchRequest& request,
      const SearchEngineOptions& engine_options = {}) const;

  /// Resolves a visualization request to a laid-out GraphML document.
  Result<std::string> GetSchemaGraphMl(
      const VisualizationRequest& request) const;

  /// Renders an SVG for a visualization request (used by the HTML report
  /// and the examples).
  Result<std::string> GetSchemaSvg(const VisualizationRequest& request) const;

  /// Full GUI substitute: search, then render the results table plus the
  /// top `max_panels` schemas side by side.
  Result<std::string> RenderHtmlReport(
      const SearchRequest& request, size_t max_panels = 3,
      const SearchEngineOptions& engine_options = {}) const;

  /// Scrape endpoint: the process-wide metrics registry in Prometheus
  /// text exposition format (all schemr_* series — pipeline, index,
  /// store, and per-endpoint service metrics).
  std::string MetricsText() const;

  /// The same registry as a JSON object (dashboards, the CLI).
  std::string MetricsJson() const;

  const SearchEngine& engine() const { return engine_; }

 private:
  Result<SchemaGraphView> BuildView(const VisualizationRequest& request) const;
  /// InvalidArgument for malformed or over-limit requests; see
  /// ServiceLimits.
  Status ValidateRequest(const SearchRequest& request) const;

  const SchemaRepository* repository_;
  SearchEngine engine_;
  ServiceLimits limits_;
};

}  // namespace schemr

#endif  // SCHEMR_SERVICE_SCHEMR_SERVICE_H_
