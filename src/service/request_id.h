// Request identity for the fleet (DESIGN.md §15).
//
// Every request entering the serving tier carries one id, minted by the
// first schemr process that sees it (coordinator, or a directly-hit
// replica) unless the client supplied a well-formed one. The coordinator
// forwards a *hop-suffixed* variant ("<base>-h<N>") on each backend
// attempt, so a hedged or failed-over request leaves distinguishable
// per-attempt records while every fragment — coordinator hop journal,
// replica trace, audit record — still joins back to the base id.
//
// Ids are deliberately austere: `[A-Za-z0-9-]` only, bounded length.
// Anything else offered by a client (oversized, control bytes, header
// injection attempts) is discarded and regenerated, never forwarded.

#ifndef SCHEMR_SERVICE_REQUEST_ID_H_
#define SCHEMR_SERVICE_REQUEST_ID_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace schemr {

/// Hard cap on any id the serving tier accepts or emits (hop suffix
/// included).
inline constexpr size_t kMaxRequestIdBytes = 64;

/// Cap on a *client-supplied* base id at the coordinator: strictly
/// smaller than kMaxRequestIdBytes so the hop suffix the coordinator
/// appends still validates at the replica.
inline constexpr size_t kMaxClientRequestIdBytes = 48;

/// The wire header, canonical capitalization (matching is
/// case-insensitive; HttpRequest lowercases names).
inline constexpr const char kRequestIdHeader[] = "X-Schemr-Request-Id";
inline constexpr const char kRequestIdHeaderLower[] = "x-schemr-request-id";

/// True iff `id` is non-empty, at most `max_bytes` long, and uses only
/// `[A-Za-z0-9-]`.
bool IsValidRequestId(std::string_view id,
                      size_t max_bytes = kMaxRequestIdBytes);

/// Mints a fresh id: time + pid + a process-wide counter, rendered in
/// the id alphabet. Unique within a fleet for any realistic horizon.
std::string MintRequestId();

/// The id forwarded on backend attempt number `hop` (0-based):
/// "<base>-h<hop>".
std::string HopRequestId(std::string_view base, int hop);

/// True when a recorded id belongs to request `base`: either the base
/// itself or one of its hop variants ("<base>-h<digits>").
bool RequestIdMatches(std::string_view base, std::string_view recorded);

}  // namespace schemr

#endif  // SCHEMR_SERVICE_REQUEST_ID_H_
