#include "service/request_id.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>

namespace schemr {

bool IsValidRequestId(std::string_view id, size_t max_bytes) {
  if (id.empty() || id.size() > max_bytes) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string MintRequestId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  char buf[kMaxRequestIdBytes];
  std::snprintf(buf, sizeof(buf), "r%llx-%x-%llx",
                static_cast<unsigned long long>(micros),
                static_cast<unsigned>(::getpid()),
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string HopRequestId(std::string_view base, int hop) {
  std::string id(base);
  id += "-h";
  id += std::to_string(hop);
  return id;
}

bool RequestIdMatches(std::string_view base, std::string_view recorded) {
  if (base.empty()) return false;
  if (recorded == base) return true;
  // "<base>-h<digits>"
  if (recorded.size() < base.size() + 3) return false;
  if (recorded.compare(0, base.size(), base) != 0) return false;
  std::string_view tail = recorded.substr(base.size());
  if (tail.size() < 3 || tail[0] != '-' || tail[1] != 'h') return false;
  for (size_t i = 2; i < tail.size(); ++i) {
    if (tail[i] < '0' || tail[i] > '9') return false;
  }
  return true;
}

}  // namespace schemr
