// Embedded HTTP/1.1 introspection listener (DESIGN.md §12).
//
// A thin wrapper over the shared hardened HttpServer (http_server.h,
// DESIGN.md §13): the introspection plane keeps its small operator-facing
// API — GET-only routes, loopback bind, one call to Stop — while the
// socket handling (timeout ladder, bounded parsing, robust acceptor,
// inline 503 shedding, fault-injection sites) lives in one place shared
// with the search front end. PR 6 grew this plumbing here; PR 7 promoted
// it and left this shim so operators' mental model (and the existing
// tests) stay unchanged.
//
// Thread safety: Route before Start; Start/Stop from one thread;
// handlers run concurrently on the pool and must be thread-safe
// themselves (the SchemrService handlers only read atomics, take
// registry snapshots, or copy ring contents).

#ifndef SCHEMR_SERVICE_HTTP_INTROSPECTION_H_
#define SCHEMR_SERVICE_HTTP_INTROSPECTION_H_

#include <functional>
#include <memory>
#include <string>

#include "service/http_server.h"
#include "util/status.h"

namespace schemr {

struct IntrospectionOptions {
  /// Port to bind (0 = kernel-assigned ephemeral; read port() after
  /// Start). Loopback only: introspection is an operator plane, not a
  /// public API; fronting it to a network is a reverse proxy's job.
  int port = 0;
  std::string bind_address = "127.0.0.1";
  /// Handler pool size: connections served concurrently.
  size_t handler_threads = 2;
  /// Accepted connections waiting for a handler beyond this are answered
  /// 503 by the acceptor itself.
  size_t max_pending_connections = 16;
  /// Request head larger than this is answered 431.
  size_t max_request_bytes = 8192;
  /// Per-connection socket read/write timeout.
  double io_timeout_seconds = 5.0;
};

class IntrospectionServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit IntrospectionServer(IntrospectionOptions options = {});
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Registers an exact-match GET route ("/metrics"). Call before Start.
  void Route(std::string path, Handler handler);

  /// Binds, listens, and starts the acceptor thread and handler pool.
  /// IOError when the address cannot be bound; InvalidArgument when
  /// already started.
  Status Start();

  /// Stops accepting, drains in-flight handlers briefly, joins the
  /// acceptor. Idempotent.
  void Stop();

  /// The actually bound port (resolves port 0), or 0 before Start.
  int port() const { return server_ == nullptr ? 0 : server_->port(); }

  bool running() const { return server_ != nullptr && server_->running(); }

  const IntrospectionOptions& options() const { return options_; }

 private:
  const IntrospectionOptions options_;
  std::unique_ptr<HttpServer> server_;
};

/// Minimal blocking HTTP/1.1 GET, for `schemr top` and the tests (no
/// external HTTP client dependency). Returns the response body on any
/// 200; Unavailable("http <code>: <body prefix>") otherwise; IOError on
/// connect/read failures.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path,
                            double timeout_seconds = 5.0);

}  // namespace schemr

#endif  // SCHEMR_SERVICE_HTTP_INTROSPECTION_H_
