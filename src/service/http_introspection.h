// Embedded HTTP/1.1 introspection listener (DESIGN.md §12).
//
// A minimal, dependency-free status server: a dedicated acceptor thread
// polls one listening socket, accepted connections are handed to a small
// BoundedExecutor (util/executor.h), and each connection serves exactly
// one GET request (Connection: close) against an exact-match route table.
// Connections beyond the handler pool's queue bound are answered 503
// inline by the acceptor — the introspection plane load-sheds the same
// way the search plane does, and can never pile up unbounded work.
//
// This is deliberately NOT a general web server: no keep-alive, no
// chunked encoding, no request bodies, GET only. It exists so operators
// (and `schemr top`) can always ask a serving process what it is doing —
// and its acceptor/executor skeleton is the piece a future search front
// end extends (ROADMAP item 3).
//
// Thread safety: Route before Start; Start/Stop from one thread;
// handlers run concurrently on the pool and must be thread-safe
// themselves (the SchemrService handlers only read atomics, take
// registry snapshots, or copy ring contents).

#ifndef SCHEMR_SERVICE_HTTP_INTROSPECTION_H_
#define SCHEMR_SERVICE_HTTP_INTROSPECTION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/executor.h"
#include "util/status.h"

namespace schemr {

/// One parsed request line. Only the pieces the routes need.
struct HttpRequest {
  std::string method;  ///< "GET"
  std::string path;    ///< "/statusz" (query string stripped)
  std::string query;   ///< "window=60" (without the '?'; may be empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct IntrospectionOptions {
  /// Port to bind (0 = kernel-assigned ephemeral; read port() after
  /// Start). Loopback only: introspection is an operator plane, not a
  /// public API; fronting it to a network is a reverse proxy's job.
  int port = 0;
  std::string bind_address = "127.0.0.1";
  /// Handler pool size: connections served concurrently.
  size_t handler_threads = 2;
  /// Accepted connections waiting for a handler beyond this are answered
  /// 503 by the acceptor itself.
  size_t max_pending_connections = 16;
  /// Request head larger than this is answered 431.
  size_t max_request_bytes = 8192;
  /// Per-connection socket read/write timeout.
  double io_timeout_seconds = 5.0;
};

class IntrospectionServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit IntrospectionServer(IntrospectionOptions options = {});
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Registers an exact-match route ("/metrics"). Call before Start.
  void Route(std::string path, Handler handler);

  /// Binds, listens, and starts the acceptor thread and handler pool.
  /// IOError when the address cannot be bound; InvalidArgument when
  /// already started.
  Status Start();

  /// Stops accepting, drains in-flight handlers briefly, joins the
  /// acceptor. Idempotent.
  void Stop();

  /// The actually bound port (resolves port 0), or 0 before Start.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  const IntrospectionOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Formats and writes one response (best-effort; errors close the
  /// connection, introspection never retries).
  void WriteResponse(int fd, const HttpResponse& response);

  const IntrospectionOptions options_;
  std::map<std::string, Handler> routes_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<BoundedExecutor> handlers_;
};

/// Minimal blocking HTTP/1.1 GET, for `schemr top` and the tests (no
/// external HTTP client dependency). Returns the response body on any
/// 200; Unavailable("http <code>: <body prefix>") otherwise; IOError on
/// connect/read failures.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path,
                            double timeout_seconds = 5.0);

}  // namespace schemr

#endif  // SCHEMR_SERVICE_HTTP_INTROSPECTION_H_
