#include "service/schemr_service.h"

#include "core/query_parser.h"
#include "match/codebook.h"
#include "util/xml_writer.h"
#include "viz/graphml_writer.h"
#include "viz/html_report.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace schemr {

namespace {

SearchEngineOptions WithRequest(const SearchRequest& request,
                                SearchEngineOptions options) {
  options.top_k = request.top_k;
  options.extraction.pool_size = request.candidate_pool;
  return options;
}

std::unordered_map<ElementId, double> ScoreMap(
    const std::vector<MatchedElement>& scores) {
  std::unordered_map<ElementId, double> map;
  for (const MatchedElement& m : scores) map[m.element] = m.score;
  return map;
}

}  // namespace

Result<std::vector<SearchResult>> SchemrService::Search(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  SCHEMR_ASSIGN_OR_RETURN(QueryGraph query,
                          ParseQuery(request.keywords, request.fragment));
  return engine_.Search(query, WithRequest(request, engine_options));
}

Result<std::string> SchemrService::SearchXml(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  SCHEMR_ASSIGN_OR_RETURN(QueryGraph query,
                          ParseQuery(request.keywords, request.fragment));
  SCHEMR_ASSIGN_OR_RETURN(
      std::vector<SearchResult> results,
      engine_.Search(query, WithRequest(request, engine_options)));

  XmlWriter xml;
  xml.Open("results").Attribute("query", query.ToString());
  xml.Attribute("count", static_cast<long long>(results.size()));
  for (const SearchResult& result : results) {
    xml.Open("result")
        .Attribute("id", static_cast<long long>(result.schema_id))
        .Attribute("name", result.name)
        .Attribute("score", result.score)
        .Attribute("coarse", result.coarse_score)
        .Attribute("tightness", result.tightness)
        .Attribute("matches", static_cast<long long>(result.num_matches))
        .Attribute("entities", static_cast<long long>(result.num_entities))
        .Attribute("attributes",
                   static_cast<long long>(result.num_attributes));
    if (!result.description.empty()) {
      xml.SimpleElement("description", result.description);
    }
    for (const MatchedElement& m : result.matched_elements) {
      xml.Open("element")
          .Attribute("id", static_cast<long long>(m.element))
          .Attribute("score", m.score)
          .Attribute("penalized", m.penalized_score)
          .Close();
    }
    xml.Close();
  }
  return xml.Finish();
}

Result<SchemaGraphView> SchemrService::BuildView(
    const VisualizationRequest& request) const {
  SCHEMR_ASSIGN_OR_RETURN(Schema schema, repository_->Get(request.schema_id));
  GraphViewOptions options;
  options.max_depth = request.max_depth;
  options.root = request.root;
  SchemaGraphView view = BuildGraphView(schema, ScoreMap(request.scores),
                                        options);
  // Codebook annotations ride along on the nodes ("a deeper
  // standardization of data types alongside schema search results").
  for (const AnnotatedElement& note :
       Codebook::Default().AnnotateSchema(schema)) {
    size_t index = view.NodeIndexOf(note.element);
    if (index != SIZE_MAX) {
      view.nodes[index].semantic = SemanticTypeName(note.entry.semantic);
      if (!note.entry.unit.empty()) {
        view.nodes[index].semantic += " [" + note.entry.unit + "]";
      }
    }
  }
  if (request.layout == "radial") {
    ApplyRadialLayout(&view);
  } else if (request.layout == "tree" || request.layout.empty()) {
    ApplyTreeLayout(&view);
  } else {
    return Status::InvalidArgument("unknown layout '" + request.layout +
                                   "' (expected 'tree' or 'radial')");
  }
  return view;
}

Result<std::string> SchemrService::GetSchemaGraphMl(
    const VisualizationRequest& request) const {
  SCHEMR_ASSIGN_OR_RETURN(SchemaGraphView view, BuildView(request));
  return WriteGraphMl(view);
}

Result<std::string> SchemrService::GetSchemaSvg(
    const VisualizationRequest& request) const {
  SCHEMR_ASSIGN_OR_RETURN(SchemaGraphView view, BuildView(request));
  return WriteSvg(view);
}

Result<std::string> SchemrService::RenderHtmlReport(
    const SearchRequest& request, size_t max_panels,
    const SearchEngineOptions& engine_options) const {
  SCHEMR_ASSIGN_OR_RETURN(std::vector<SearchResult> results,
                          Search(request, engine_options));

  std::vector<ReportRow> rows;
  rows.reserve(results.size());
  for (const SearchResult& r : results) {
    rows.push_back(ReportRow{r.name, r.score, r.num_matches, r.num_entities,
                             r.num_attributes, r.description});
  }

  std::vector<ReportPanel> panels;
  for (size_t i = 0; i < results.size() && i < max_panels; ++i) {
    VisualizationRequest viz;
    viz.schema_id = results[i].schema_id;
    viz.scores = results[i].matched_elements;
    // Alternate layouts across panels, as the GUI offers both.
    viz.layout = (i % 2 == 0) ? "tree" : "radial";
    SCHEMR_ASSIGN_OR_RETURN(std::string svg, GetSchemaSvg(viz));
    panels.push_back(ReportPanel{
        results[i].name + " (" + viz.layout + " view)", std::move(svg)});
  }

  std::string query_desc = "keywords: \"" + request.keywords + "\"";
  if (!request.fragment.empty()) {
    query_desc += "  +  schema fragment (" +
                  std::to_string(request.fragment.size()) + " chars)";
  }
  return WriteHtmlReport("Schemr search results", query_desc, rows, panels);
}

}  // namespace schemr
