#include "service/schemr_service.h"

#include "core/query_parser.h"
#include "match/codebook.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/timer.h"
#include "util/xml_writer.h"
#include "viz/graphml_writer.h"
#include "viz/html_report.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace schemr {

namespace {

/// Request count / error count / latency histogram for one endpoint.
struct EndpointMetrics {
  Counter* requests;
  Counter* errors;
  Histogram* seconds;
};

EndpointMetrics MakeEndpoint(const std::string& endpoint) {
  MetricsRegistry& r = MetricsRegistry::Global();
  const std::string prefix = "schemr_service_" + endpoint;
  return EndpointMetrics{
      r.GetCounter(prefix + "_requests_total",
                   "Requests handled by the " + endpoint + " endpoint."),
      r.GetCounter(prefix + "_errors_total",
                   "Non-OK responses from the " + endpoint + " endpoint."),
      r.GetHistogram(prefix + "_seconds",
                     "Request latency of the " + endpoint + " endpoint."),
  };
}

/// Times one request and tallies its outcome on destruction.
class EndpointScope {
 public:
  explicit EndpointScope(const EndpointMetrics& metrics) : metrics_(metrics) {
    metrics_.requests->Increment();
  }
  ~EndpointScope() {
    if (failed_) metrics_.errors->Increment();
    metrics_.seconds->Observe(timer_.ElapsedSeconds());
  }
  template <typename T>
  const Result<T>& Check(const Result<T>& result) {
    if (!result.ok()) failed_ = true;
    return result;
  }
  const Status& Check(const Status& status) {
    if (!status.ok()) failed_ = true;
    return status;
  }

 private:
  const EndpointMetrics& metrics_;
  Timer timer_;
  bool failed_ = false;
};

SearchEngineOptions WithRequest(const SearchRequest& request,
                                SearchEngineOptions options) {
  options.top_k = request.top_k;
  options.extraction.pool_size = request.candidate_pool;
  return options;
}

/// Writes the children of `parent` as nested <span> elements.
void WriteSpans(XmlWriter* xml, const SearchTrace& trace, size_t parent) {
  for (size_t id : trace.ChildrenOf(parent)) {
    const SpanRecord& span = trace.spans()[id];
    xml->Open("span")
        .Attribute("name", span.name)
        .Attribute("ms", span.seconds * 1e3);
    for (const TraceAnnotation& note : span.annotations) {
      xml->Open("note")
          .Attribute("key", note.key)
          .Attribute("value", note.value)
          .Close();
    }
    WriteSpans(xml, trace, id);
    xml->Close();
  }
}

std::unordered_map<ElementId, double> ScoreMap(
    const std::vector<MatchedElement>& scores) {
  std::unordered_map<ElementId, double> map;
  for (const MatchedElement& m : scores) map[m.element] = m.score;
  return map;
}

}  // namespace

Status SchemrService::ValidateRequest(const SearchRequest& request) const {
  if (request.top_k == 0) {
    return Status::InvalidArgument("top_k must be at least 1");
  }
  if (request.candidate_pool < request.top_k) {
    return Status::InvalidArgument(
        "candidate_pool (" + std::to_string(request.candidate_pool) +
        ") must be >= top_k (" + std::to_string(request.top_k) + ")");
  }
  if (request.keywords.size() > limits_.max_keywords_bytes) {
    return Status::InvalidArgument(
        "keywords too large (" + std::to_string(request.keywords.size()) +
        " bytes, limit " + std::to_string(limits_.max_keywords_bytes) + ")");
  }
  if (request.fragment.size() > limits_.max_fragment_bytes) {
    return Status::InvalidArgument(
        "fragment too large (" + std::to_string(request.fragment.size()) +
        " bytes, limit " + std::to_string(limits_.max_fragment_bytes) + ")");
  }
  return Status::OK();
}

Result<std::vector<SearchResult>> SchemrService::Search(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  static const EndpointMetrics metrics = MakeEndpoint("search");
  EndpointScope scope(metrics);
  Status valid = ValidateRequest(request);
  if (!scope.Check(valid).ok()) return valid;
  auto parsed = ParseQuery(request.keywords, request.fragment);
  if (!scope.Check(parsed).ok()) return parsed.status();
  auto results = engine_.Search(*parsed, WithRequest(request, engine_options));
  scope.Check(results);
  return results;
}

Result<std::string> SchemrService::SearchXml(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  static const EndpointMetrics metrics = MakeEndpoint("search_xml");
  EndpointScope scope(metrics);
  Status valid = ValidateRequest(request);
  if (!scope.Check(valid).ok()) return valid;
  auto parsed = ParseQuery(request.keywords, request.fragment);
  if (!scope.Check(parsed).ok()) return parsed.status();
  const QueryGraph& query = *parsed;

  SearchTrace trace;
  SearchStats stats;
  SearchEngineOptions options = WithRequest(request, engine_options);
  if (request.explain) options.trace = &trace;
  options.stats = &stats;
  auto searched = engine_.Search(query, options);
  if (!scope.Check(searched).ok()) return searched.status();
  const std::vector<SearchResult>& results = *searched;

  XmlWriter xml;
  xml.Open("results").Attribute("query", query.ToString());
  xml.Attribute("count", static_cast<long long>(results.size()));
  // Absent on healthy responses so those stay byte-identical.
  if (stats.degraded) xml.Attribute("degraded", "true");
  for (const SearchResult& result : results) {
    xml.Open("result")
        .Attribute("id", static_cast<long long>(result.schema_id))
        .Attribute("name", result.name)
        .Attribute("score", result.score)
        .Attribute("coarse", result.coarse_score)
        .Attribute("tightness", result.tightness)
        .Attribute("matches", static_cast<long long>(result.num_matches))
        .Attribute("entities", static_cast<long long>(result.num_entities))
        .Attribute("attributes",
                   static_cast<long long>(result.num_attributes));
    if (!result.description.empty()) {
      xml.SimpleElement("description", result.description);
    }
    for (const MatchedElement& m : result.matched_elements) {
      xml.Open("element")
          .Attribute("id", static_cast<long long>(m.element))
          .Attribute("score", m.score)
          .Attribute("penalized", m.penalized_score)
          .Close();
    }
    xml.Close();
  }
  if (request.explain) {
    xml.Open("explain");
    if (stats.degraded) {
      xml.Open("degradation")
          .Attribute("deadline_hit", stats.deadline_hit ? "true" : "false")
          .Attribute("coarse_only_candidates",
                     static_cast<long long>(stats.coarse_only_candidates));
      for (const std::string& name : stats.dropped_matchers) {
        xml.Open("dropped_matcher").Attribute("name", name).Close();
      }
      xml.Close();
    }
    WriteSpans(&xml, trace, SearchTrace::kNoParent);
    xml.Close();
  }
  return xml.Finish();
}

Result<SchemaGraphView> SchemrService::BuildView(
    const VisualizationRequest& request) const {
  SCHEMR_ASSIGN_OR_RETURN(Schema schema, repository_->Get(request.schema_id));
  GraphViewOptions options;
  options.max_depth = request.max_depth;
  options.root = request.root;
  SchemaGraphView view = BuildGraphView(schema, ScoreMap(request.scores),
                                        options);
  // Codebook annotations ride along on the nodes ("a deeper
  // standardization of data types alongside schema search results").
  for (const AnnotatedElement& note :
       Codebook::Default().AnnotateSchema(schema)) {
    size_t index = view.NodeIndexOf(note.element);
    if (index != SIZE_MAX) {
      view.nodes[index].semantic = SemanticTypeName(note.entry.semantic);
      if (!note.entry.unit.empty()) {
        view.nodes[index].semantic += " [" + note.entry.unit + "]";
      }
    }
  }
  if (request.layout == "radial") {
    ApplyRadialLayout(&view);
  } else if (request.layout == "tree" || request.layout.empty()) {
    ApplyTreeLayout(&view);
  } else {
    return Status::InvalidArgument("unknown layout '" + request.layout +
                                   "' (expected 'tree' or 'radial')");
  }
  return view;
}

Result<std::string> SchemrService::GetSchemaGraphMl(
    const VisualizationRequest& request) const {
  static const EndpointMetrics metrics = MakeEndpoint("graphml");
  EndpointScope scope(metrics);
  auto view = BuildView(request);
  if (!scope.Check(view).ok()) return view.status();
  return WriteGraphMl(*view);
}

Result<std::string> SchemrService::GetSchemaSvg(
    const VisualizationRequest& request) const {
  static const EndpointMetrics metrics = MakeEndpoint("svg");
  EndpointScope scope(metrics);
  auto view = BuildView(request);
  if (!scope.Check(view).ok()) return view.status();
  return WriteSvg(*view);
}

std::string SchemrService::MetricsText() const {
  return ToPrometheusText(MetricsRegistry::Global());
}

std::string SchemrService::MetricsJson() const {
  return ToJson(MetricsRegistry::Global());
}

Result<std::string> SchemrService::RenderHtmlReport(
    const SearchRequest& request, size_t max_panels,
    const SearchEngineOptions& engine_options) const {
  static const EndpointMetrics metrics = MakeEndpoint("report");
  EndpointScope scope(metrics);
  auto searched = Search(request, engine_options);
  if (!scope.Check(searched).ok()) return searched.status();
  std::vector<SearchResult> results = std::move(searched).value();

  std::vector<ReportRow> rows;
  rows.reserve(results.size());
  for (const SearchResult& r : results) {
    rows.push_back(ReportRow{r.name, r.score, r.num_matches, r.num_entities,
                             r.num_attributes, r.description});
  }

  std::vector<ReportPanel> panels;
  for (size_t i = 0; i < results.size() && i < max_panels; ++i) {
    VisualizationRequest viz;
    viz.schema_id = results[i].schema_id;
    viz.scores = results[i].matched_elements;
    // Alternate layouts across panels, as the GUI offers both.
    viz.layout = (i % 2 == 0) ? "tree" : "radial";
    SCHEMR_ASSIGN_OR_RETURN(std::string svg, GetSchemaSvg(viz));
    panels.push_back(ReportPanel{
        results[i].name + " (" + viz.layout + " view)", std::move(svg)});
  }

  std::string query_desc = "keywords: \"" + request.keywords + "\"";
  if (!request.fragment.empty()) {
    query_desc += "  +  schema fragment (" +
                  std::to_string(request.fragment.size()) + " chars)";
  }
  return WriteHtmlReport("Schemr search results", query_desc, rows, panels);
}

}  // namespace schemr
