#include "service/schemr_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>

#include "core/fingerprint.h"
#include "core/query_parser.h"
#include "core/result_cache.h"
#include "match/codebook.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "parse/xml_parser.h"
#include "service/request_id.h"
#include "util/fault_injection.h"
#include "util/timer.h"
#include "util/xml_writer.h"
#include "viz/graphml_writer.h"
#include "viz/html_report.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace schemr {

namespace {

/// Request count / error count / latency histogram for one endpoint.
struct EndpointMetrics {
  Counter* requests;
  Counter* errors;
  Histogram* seconds;
};

EndpointMetrics MakeEndpoint(const std::string& endpoint) {
  MetricsRegistry& r = MetricsRegistry::Global();
  const std::string prefix = "schemr_service_" + endpoint;
  return EndpointMetrics{
      r.GetCounter(prefix + "_requests_total",
                   "Requests handled by the " + endpoint + " endpoint."),
      r.GetCounter(prefix + "_errors_total",
                   "Non-OK responses from the " + endpoint + " endpoint."),
      r.GetHistogram(prefix + "_seconds",
                     "Request latency of the " + endpoint + " endpoint."),
  };
}

/// Times one request and tallies its outcome on destruction.
class EndpointScope {
 public:
  explicit EndpointScope(const EndpointMetrics& metrics) : metrics_(metrics) {
    metrics_.requests->Increment();
  }
  ~EndpointScope() {
    if (failed_) metrics_.errors->Increment();
    metrics_.seconds->Observe(timer_.ElapsedSeconds());
  }
  template <typename T>
  const Result<T>& Check(const Result<T>& result) {
    if (!result.ok()) failed_ = true;
    return result;
  }
  const Status& Check(const Status& status) {
    if (!status.ok()) failed_ = true;
    return status;
  }

 private:
  const EndpointMetrics& metrics_;
  Timer timer_;
  bool failed_ = false;
};

SearchEngineOptions WithRequest(const SearchRequest& request,
                                SearchEngineOptions options) {
  options.top_k = request.top_k;
  options.extraction.pool_size = request.candidate_pool;
  if (request.cache_bypass) options.cache_bypass = true;
  if (request.prefilter > 0.0) options.prefilter = request.prefilter;
  return options;
}

/// Writes the children of `parent` as nested <span> elements.
void WriteSpans(XmlWriter* xml, const SearchTrace& trace, size_t parent) {
  for (size_t id : trace.ChildrenOf(parent)) {
    const SpanRecord& span = trace.spans()[id];
    xml->Open("span")
        .Attribute("name", span.name)
        .Attribute("ms", span.seconds * 1e3);
    for (const TraceAnnotation& note : span.annotations) {
      xml->Open("note")
          .Attribute("key", note.key)
          .Attribute("value", note.value)
          .Close();
    }
    WriteSpans(xml, trace, id);
    xml->Close();
  }
}

std::unordered_map<ElementId, double> ScoreMap(
    const std::vector<MatchedElement>& scores) {
  std::unordered_map<ElementId, double> map;
  for (const MatchedElement& m : scores) map[m.element] = m.score;
  return map;
}

/// Serializes a failure as the wire format's error envelope; every
/// HandleSearchXml response is well-formed XML, including refusals.
std::string ErrorXml(const std::string& code, const std::string& message,
                     double retry_after_ms = -1.0) {
  XmlWriter xml;
  xml.Open("error").Attribute("code", code);
  if (retry_after_ms >= 0.0) {
    xml.Attribute("retry_after_ms", retry_after_ms);
  }
  if (!message.empty()) xml.Attribute("message", message);
  xml.Close();
  return xml.Finish();
}

/// Status-code name as an XML-friendly slug ("parse error" ->
/// "parse_error").
std::string StatusCodeSlug(StatusCode code) {
  std::string slug = StatusCodeName(code);
  std::replace(slug.begin(), slug.end(), ' ', '_');
  return slug;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// ShedReason → audit outcome byte; with ShedReasonName this is the whole
/// shed vocabulary, derived from the one enum.
AuditOutcome ShedOutcome(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return AuditOutcome::kShedQueueFull;
    case ShedReason::kDeadline:
      return AuditOutcome::kShedDeadline;
    case ShedReason::kDrain:
    case ShedReason::kNone:
      break;
  }
  return AuditOutcome::kShedDrain;
}

// --- Introspection JSON emitters -----------------------------------------
// A deliberately tiny vocabulary: objects, numbers, strings, booleans —
// exactly what obs/replay.h's ParseBenchJson reads, so `schemr top` and
// the CI smoke check need no real JSON parser.

void JsonKey(std::string* out, const char* key) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  *out += key;  // keys are identifiers; nothing to escape
  *out += "\":";
}

void JsonNum(std::string* out, const char* key, double value) {
  JsonKey(out, key);
  if (!std::isfinite(value)) value = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

void JsonStr(std::string* out, const char* key, std::string_view value) {
  JsonKey(out, key);
  out->push_back('"');
  AppendJsonEscaped(out, value);
  out->push_back('"');
}

void JsonBool(std::string* out, const char* key, bool value) {
  JsonKey(out, key);
  *out += value ? "true" : "false";
}

/// One windowed-view sub-object ("window_1m": {...}) distilled to the
/// handful of series an operator watches.
void AppendWindowJson(std::string* out, const char* key,
                      const WindowedView& view) {
  JsonKey(out, key);
  out->push_back('{');
  JsonNum(out, "seconds", view.window_seconds);
  const WindowedMetric* requests =
      view.Find("schemr_service_search_xml_requests_total");
  JsonNum(out, "qps", requests != nullptr ? requests->rate_per_second : 0.0);
  const WindowedMetric* latency =
      view.Find("schemr_service_search_xml_seconds");
  JsonNum(out, "p50_ms", latency != nullptr ? latency->p50 * 1e3 : 0.0);
  JsonNum(out, "p95_ms", latency != nullptr ? latency->p95 * 1e3 : 0.0);
  JsonNum(out, "p99_ms", latency != nullptr ? latency->p99 * 1e3 : 0.0);
  const WindowedMetric* errors =
      view.Find("schemr_service_search_xml_errors_total");
  JsonNum(out, "errors_per_second",
          errors != nullptr ? errors->rate_per_second : 0.0);
  const WindowedMetric* shed = view.Find("schemr_requests_shed_total");
  JsonNum(out, "shed_per_second",
          shed != nullptr ? shed->rate_per_second : 0.0);
  out->push_back('}');
}

struct ServingMetrics {
  Gauge* inflight;

  static const ServingMetrics& Get() {
    static const ServingMetrics* metrics = [] {
      return new ServingMetrics{
          MetricsRegistry::Global().GetGauge(
              "schemr_requests_inflight",
              "Admitted search requests currently executing or queued."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

SchemrService::~SchemrService() {
  // Best-effort immediate drain; queued requests are cancelled and their
  // waiters (if any are somehow still alive) receive shutting_down.
  if (executor_ != nullptr) (void)executor_->Shutdown(0.0);
}

Status SchemrService::ValidateRequest(const SearchRequest& request) const {
  if (request.top_k == 0) {
    return Status::InvalidArgument("top_k must be at least 1");
  }
  if (request.candidate_pool < request.top_k) {
    return Status::InvalidArgument(
        "candidate_pool (" + std::to_string(request.candidate_pool) +
        ") must be >= top_k (" + std::to_string(request.top_k) + ")");
  }
  if (request.prefilter < 0.0 || request.prefilter >= 1.0) {
    return Status::InvalidArgument(
        "prefilter must be in [0, 1): " + std::to_string(request.prefilter));
  }
  if (request.keywords.size() > limits_.max_keywords_bytes) {
    return Status::InvalidArgument(
        "keywords too large (" + std::to_string(request.keywords.size()) +
        " bytes, limit " + std::to_string(limits_.max_keywords_bytes) + ")");
  }
  if (request.fragment.size() > limits_.max_fragment_bytes) {
    return Status::InvalidArgument(
        "fragment too large (" + std::to_string(request.fragment.size()) +
        " bytes, limit " + std::to_string(limits_.max_fragment_bytes) + ")");
  }
  return Status::OK();
}

Result<std::vector<SearchResult>> SchemrService::Search(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  static const EndpointMetrics metrics = MakeEndpoint("search");
  EndpointScope scope(metrics);
  Status valid = ValidateRequest(request);
  if (!scope.Check(valid).ok()) return valid;
  auto parsed = ParseQuery(request.keywords, request.fragment);
  if (!scope.Check(parsed).ok()) return parsed.status();
  std::shared_ptr<AuditLog> log = audit();
  SearchEngineOptions options = WithRequest(request, engine_options);
  SearchStats stats;
  if (log != nullptr && options.stats == nullptr) options.stats = &stats;
  const Timer handle_timer;
  auto results = engine_.Search(*parsed, options);
  scope.Check(results);
  if (log != nullptr) {
    const SearchStats& observed =
        options.stats != nullptr ? *options.stats : stats;
    AuditRecord record;
    record.timestamp_micros = NowMicros();
    record.fingerprint = FingerprintQuery(*parsed);
    record.outcome = !results.ok() ? AuditOutcome::kError
                     : observed.degraded ? AuditOutcome::kDegraded
                                         : AuditOutcome::kOk;
    record.total_micros = static_cast<uint64_t>(handle_timer.ElapsedMicros());
    record.phase1_micros =
        static_cast<uint64_t>(observed.phase1_seconds * 1e6);
    record.phase2_micros =
        static_cast<uint64_t>(observed.phase2_seconds * 1e6);
    record.phase3_micros =
        static_cast<uint64_t>(observed.phase3_seconds * 1e6);
    record.result_digest = results.ok() ? DigestResults(*results) : 0;
    record.result_count =
        results.ok() ? static_cast<uint32_t>(results->size()) : 0;
    record.top_k = static_cast<uint32_t>(request.top_k);
    record.candidate_pool = static_cast<uint32_t>(request.candidate_pool);
    record.coarse_only_candidates =
        static_cast<uint32_t>(observed.coarse_only_candidates);
    record.dropped_matchers =
        static_cast<uint32_t>(observed.dropped_matchers.size());
    record.deadline_hit = observed.deadline_hit;
    record.cache_hit = observed.cache_hit;
    record.keywords = request.keywords;
    record.fragment = request.fragment;
    log->Record(std::move(record));
  }
  return results;
}

Result<std::string> SchemrService::SearchXml(
    const SearchRequest& request,
    const SearchEngineOptions& engine_options) const {
  return SearchXmlInternal(request, engine_options, nullptr, nullptr);
}

Result<std::string> SchemrService::SearchXmlInternal(
    const SearchRequest& request, const SearchEngineOptions& engine_options,
    SearchAuditInfo* audit, SearchTrace* sample_trace) const {
  static const EndpointMetrics metrics = MakeEndpoint("search_xml");
  EndpointScope scope(metrics);
  Status valid = ValidateRequest(request);
  if (!scope.Check(valid).ok()) return valid;
  auto parsed = ParseQuery(request.keywords, request.fragment);
  if (!scope.Check(parsed).ok()) return parsed.status();
  const QueryGraph& query = *parsed;
  if (audit != nullptr) audit->fingerprint = FingerprintQuery(query);

  SearchTrace trace;
  SearchStats stats;
  SearchEngineOptions options = WithRequest(request, engine_options);
  if (request.explain) {
    options.trace = &trace;
  } else if (sample_trace != nullptr) {
    // Tail sampling: the trace is filled exactly like an explain trace
    // but lives and dies service-side, so the response bytes cannot
    // change. (A traced request bypasses the result cache — see
    // search_engine.cc's cache-eligibility rule — which is what makes a
    // sampled trace show the real pipeline, not a cache hit.)
    options.trace = sample_trace;
  }
  options.stats = &stats;
  auto searched = engine_.Search(query, options);
  if (!scope.Check(searched).ok()) return searched.status();
  const std::vector<SearchResult>& results = *searched;
  if (audit != nullptr) {
    audit->filled = true;
    audit->digest = DigestResults(results);
    audit->result_count = static_cast<uint32_t>(results.size());
    audit->stats = stats;
  }

  XmlWriter xml;
  xml.Open("results").Attribute("query", query.ToString());
  xml.Attribute("count", static_cast<long long>(results.size()));
  // Absent on healthy responses so those stay byte-identical.
  if (stats.degraded) xml.Attribute("degraded", "true");
  for (const SearchResult& result : results) {
    xml.Open("result")
        .Attribute("id", static_cast<long long>(result.schema_id))
        .Attribute("name", result.name)
        .Attribute("score", result.score)
        .Attribute("coarse", result.coarse_score)
        .Attribute("tightness", result.tightness)
        .Attribute("matches", static_cast<long long>(result.num_matches))
        .Attribute("entities", static_cast<long long>(result.num_entities))
        .Attribute("attributes",
                   static_cast<long long>(result.num_attributes));
    if (!result.description.empty()) {
      xml.SimpleElement("description", result.description);
    }
    for (const MatchedElement& m : result.matched_elements) {
      xml.Open("element")
          .Attribute("id", static_cast<long long>(m.element))
          .Attribute("score", m.score)
          .Attribute("penalized", m.penalized_score)
          .Close();
    }
    xml.Close();
  }
  if (request.explain) {
    xml.Open("explain");
    if (stats.degraded) {
      xml.Open("degradation")
          .Attribute("deadline_hit", stats.deadline_hit ? "true" : "false")
          .Attribute("coarse_only_candidates",
                     static_cast<long long>(stats.coarse_only_candidates));
      for (const std::string& name : stats.dropped_matchers) {
        xml.Open("dropped_matcher").Attribute("name", name).Close();
      }
      xml.Close();
    }
    WriteSpans(&xml, trace, SearchTrace::kNoParent);
    xml.Close();
  }
  return xml.Finish();
}

Status SchemrService::ValidateRequest(
    const VisualizationRequest& request) const {
  if (request.max_depth > limits_.max_viz_depth) {
    return Status::InvalidArgument(
        "max_depth (" + std::to_string(request.max_depth) +
        ") exceeds the service cap (" +
        std::to_string(limits_.max_viz_depth) + ")");
  }
  if (!request.layout.empty() && request.layout != "tree" &&
      request.layout != "radial") {
    return Status::InvalidArgument("unknown layout '" + request.layout +
                                   "' (expected 'tree' or 'radial')");
  }
  return Status::OK();
}

Result<SchemaGraphView> SchemrService::BuildView(
    const VisualizationRequest& request) const {
  // Validation first: malformed requests are refused before any
  // repository access or layout work.
  SCHEMR_RETURN_IF_ERROR(ValidateRequest(request));
  // Corpus mode resolves the schema through the current snapshot so the
  // drill-in is point-in-time consistent, like Search.
  SCHEMR_ASSIGN_OR_RETURN(
      Schema schema, corpus_ != nullptr
                         ? corpus_->Snapshot()->schemas->Get(request.schema_id)
                         : repository_->Get(request.schema_id));
  GraphViewOptions options;
  options.max_depth = request.max_depth;
  options.root = request.root;
  SchemaGraphView view = BuildGraphView(schema, ScoreMap(request.scores),
                                        options);
  // Codebook annotations ride along on the nodes ("a deeper
  // standardization of data types alongside schema search results").
  for (const AnnotatedElement& note :
       Codebook::Default().AnnotateSchema(schema)) {
    size_t index = view.NodeIndexOf(note.element);
    if (index != SIZE_MAX) {
      view.nodes[index].semantic = SemanticTypeName(note.entry.semantic);
      if (!note.entry.unit.empty()) {
        view.nodes[index].semantic += " [" + note.entry.unit + "]";
      }
    }
  }
  if (request.layout == "radial") {
    ApplyRadialLayout(&view);
  } else if (request.layout == "tree" || request.layout.empty()) {
    ApplyTreeLayout(&view);
  } else {
    return Status::InvalidArgument("unknown layout '" + request.layout +
                                   "' (expected 'tree' or 'radial')");
  }
  return view;
}

Result<std::string> SchemrService::GetSchemaGraphMl(
    const VisualizationRequest& request) const {
  static const EndpointMetrics metrics = MakeEndpoint("graphml");
  EndpointScope scope(metrics);
  auto view = BuildView(request);
  if (!scope.Check(view).ok()) return view.status();
  return WriteGraphMl(*view);
}

Result<std::string> SchemrService::GetSchemaSvg(
    const VisualizationRequest& request) const {
  static const EndpointMetrics metrics = MakeEndpoint("svg");
  EndpointScope scope(metrics);
  auto view = BuildView(request);
  if (!scope.Check(view).ok()) return view.status();
  return WriteSvg(*view);
}

Status SchemrService::StartServing(ServingOptions options) {
  if (corpus_ == nullptr) {
    return Status::InvalidArgument(
        "StartServing requires corpus mode: snapshot isolation is what "
        "makes concurrent serving safe");
  }
  std::lock_guard<std::mutex> lock(serving_mutex_);
  if (shut_down_) {
    return Status::Unavailable("service was shut down; build a new one");
  }
  if (executor_ != nullptr) {
    return Status::InvalidArgument("already serving");
  }
  // The admission controller's queueing-delay model must agree with the
  // executor's actual parallelism.
  options.admission.num_workers = options.executor.num_workers;
  serving_options_ = options;
  if (options.result_cache_capacity > 0) {
    engine_.EnableResultCache(options.result_cache_capacity);
  }
  admission_ = std::make_unique<AdmissionController>(options.admission);
  executor_ = std::make_unique<BoundedExecutor>(options.executor);

  // The telemetry sampler and trace retention always run while serving:
  // windowed views and the retained tail are what make a production
  // incident debuggable after the fact, and their cost is bounded (one
  // registry Collect per interval; one counter bump per request).
  telemetry_ = std::make_unique<TelemetrySampler>(options.telemetry);
  telemetry_->Start();
  traces_ = std::make_unique<TraceRetention>(options.trace_retention);

  if (options.introspection_port >= 0) {
    IntrospectionOptions iopts;
    iopts.port = options.introspection_port;
    introspection_ = std::make_unique<IntrospectionServer>(iopts);
    introspection_->Route("/metrics", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = MetricsText();
      return response;
    });
    introspection_->Route("/healthz", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = HealthzJson(&response.status);
      return response;
    });
    // Liveness and readiness are different questions: /healthz answers
    // "is the process alive and sane", /readyz answers "should a load
    // balancer route here". The fleet coordinator probes /readyz, so a
    // draining replica ("dying") stops receiving traffic while a dead
    // one ("dead") is distinguished by the connect failure itself.
    introspection_->Route("/readyz", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = ReadyzJson(&response.status);
      return response;
    });
    introspection_->Route("/statusz", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = StatuszJson();
      return response;
    });
    introspection_->Route("/tracez", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = TracezJson();
      return response;
    });
    introspection_->Route("/slowz", [this](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = SlowzJson();
      return response;
    });
    Status started = introspection_->Start();
    if (!started.ok()) {
      // No traffic has been admitted yet (we still hold serving_mutex_ and
      // executor_ has never been visible outside it), so a full unwind is
      // safe — the caller can retry StartServing with a different port.
      introspection_.reset();
      telemetry_->Stop();
      telemetry_.reset();
      traces_.reset();
      (void)executor_->Shutdown(0.0);
      executor_.reset();
      admission_.reset();
      return started;
    }
  }

  if (options.search_port >= 0) {
    HttpServerOptions sopts = options.search_http;
    sopts.port = options.search_port;
    search_server_ = std::make_unique<HttpServer>(sopts);
    search_server_->Route("POST", "/search", [this](const HttpRequest& http) {
      return HandleSearchHttp(http);
    });
    Status started = search_server_->Start();
    if (!started.ok()) {
      // Same full-unwind rule as the introspection bind failure above.
      search_server_.reset();
      if (introspection_ != nullptr) {
        introspection_->Stop();
        introspection_.reset();
      }
      telemetry_->Stop();
      telemetry_.reset();
      traces_.reset();
      (void)executor_->Shutdown(0.0);
      executor_.reset();
      admission_.reset();
      return started;
    }
  }
  return Status::OK();
}

bool SchemrService::serving() const {
  std::lock_guard<std::mutex> lock(serving_mutex_);
  return executor_ != nullptr && !shut_down_;
}

Status SchemrService::Shutdown(double deadline_seconds) {
  std::unique_lock<std::mutex> lock(serving_mutex_);
  if (executor_ == nullptr) {
    shut_down_ = true;
    return Status::OK();
  }
  admission_->BeginDrain();
  BoundedExecutor* executor = executor_.get();
  HttpServer* search_server = search_server_.get();
  lock.unlock();
  // The search front end stops accepting first: new connects fail fast
  // while requests already on a socket drain through admission (which now
  // answers shutting_down) and the executor below. BeginDrain joins only
  // the acceptor thread, never a handler, so it is deadlock-free against
  // in-flight searches.
  if (search_server != nullptr) search_server->BeginDrain();
  // Drain outside the lock: in-flight handlers re-enter serving_mutex_
  // briefly and must not deadlock against us. The executor pointer stays
  // valid because executor_ is never reset, only wedged.
  Status drained = executor->Shutdown(deadline_seconds);
  lock.lock();
  shut_down_ = true;
  IntrospectionServer* introspection = introspection_.get();
  TelemetrySampler* telemetry = telemetry_.get();
  lock.unlock();
  // The search front end's handler pool comes down once the executor has
  // drained: any connection still open is writing out a response that
  // already resolved (or a shutting_down error), so the window is short.
  if (search_server != nullptr) search_server->Stop(/*drain_seconds=*/1.0);
  // The introspection plane outlives the drain window (so /healthz can
  // report "draining" to a watching balancer) and comes down only once
  // the drain has resolved. Stopping it joins in-flight handlers, and
  // those handlers take serving_mutex_ themselves (/healthz, /statusz),
  // so the join must happen unlocked — same rule as the executor drain
  // above. The pointers stay valid: introspection_, search_server_, and
  // telemetry_ are never reset once StartServing succeeds, and the
  // Stop()s are safe under concurrent Shutdown calls. The sampler stops
  // after the listeners: a handler mid-flight may still read it.
  if (introspection != nullptr) introspection->Stop();
  if (telemetry != nullptr) telemetry->Stop();
  return drained;
}

Status SchemrService::EnableAudit(const std::string& dir,
                                  AuditLogOptions options) {
  SCHEMR_ASSIGN_OR_RETURN(std::unique_ptr<AuditLog> log,
                          AuditLog::Open(dir, options));
  EnableAudit(std::shared_ptr<AuditLog>(std::move(log)));
  return Status::OK();
}

void SchemrService::EnableAudit(std::shared_ptr<AuditLog> log) {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  audit_ = std::move(log);
}

std::shared_ptr<AuditLog> SchemrService::audit() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return audit_;
}

void SchemrService::RecordRefusal(const SearchRequest& request,
                                  AuditOutcome outcome,
                                  double deadline_seconds) const {
  // A refusal never carried a trace, but it is exactly the kind of
  // outcome the retention rings exist for: offer it metadata-only.
  if (TraceRetention* retention = traces_.get(); retention != nullptr) {
    RetainedTrace retained;
    retained.timestamp_micros = NowMicros();
    retained.fingerprint =
        FingerprintRawRequest(request.keywords, request.fragment);
    retained.outcome = AuditOutcomeName(outcome);
    retained.request_id = request.request_id;
    retention->Retain(std::move(retained));
  }
  std::shared_ptr<AuditLog> log = audit();
  if (log == nullptr) return;
  AuditRecord record;
  record.timestamp_micros = NowMicros();
  // The fragment is not parsed on a refusal (that would defeat shedding);
  // the raw-request fingerprint still aggregates keyword-only queries
  // together with their admitted records.
  record.fingerprint =
      FingerprintRawRequest(request.keywords, request.fragment);
  record.outcome = outcome;
  record.deadline_micros =
      static_cast<uint64_t>(std::max(0.0, deadline_seconds) * 1e6);
  record.top_k = static_cast<uint32_t>(request.top_k);
  record.candidate_pool = static_cast<uint32_t>(request.candidate_pool);
  record.keywords = request.keywords;
  record.fragment = request.fragment;
  record.request_id = request.request_id;
  log->Record(std::move(record));
}

std::string SchemrService::RunSearchToXml(
    const SearchRequest& request, double deadline_seconds,
    double original_deadline_seconds, SearchWireInfo* wire) const {
  const ServingMetrics& serving_metrics = ServingMetrics::Get();
  serving_metrics.inflight->Add(1.0);
  const Timer handle_timer;
  SearchEngineOptions options;
  // Whatever the queue wait left is the pipeline's wall-clock budget; the
  // engine degrades (coarse-only tail) instead of erroring when it fires.
  const double remaining = std::max(deadline_seconds, 1e-3);
  options.deadline_seconds = remaining;
  options.scoring_threads = std::max<size_t>(1, serving_options_.scoring_threads);
  if (remaining < original_deadline_seconds *
                      serving_options_.near_deadline_fraction) {
    // Near-deadline admission: tighten the per-matcher budget so the
    // request finishes degraded within what is left rather than being
    // dropped (the PR-2 degradation ladder).
    options.matcher_budget_seconds =
        remaining * serving_options_.near_deadline_budget_fraction;
  }
  std::shared_ptr<AuditLog> log = audit();
  TraceRetention* retention = traces_.get();
  SearchTrace sample_trace;
  const bool sampled = retention != nullptr && retention->ShouldSample();
  SearchAuditInfo info;
  Result<std::string> xml = SearchXmlInternal(
      request, options,
      log != nullptr || retention != nullptr ? &info : nullptr,
      sampled ? &sample_trace : nullptr);
  serving_metrics.inflight->Add(-1.0);
  const double total_seconds = handle_timer.ElapsedSeconds();
  if (retention != nullptr) {
    RetainedTrace retained;
    retained.timestamp_micros = NowMicros();
    retained.fingerprint =
        info.fingerprint != 0
            ? info.fingerprint
            : FingerprintRawRequest(request.keywords, request.fragment);
    retained.outcome = AuditOutcomeName(!xml.ok() ? AuditOutcome::kError
                                        : info.stats.degraded
                                            ? AuditOutcome::kDegraded
                                            : AuditOutcome::kOk);
    retained.total_seconds = total_seconds;
    retained.cache_hit = info.stats.cache_hit;
    retained.sampled = sampled;
    retained.request_id = request.request_id;
    if (sampled) {
      // Stamp the root span too, so the id survives into explain-style
      // renderings of the sampled trace, not just the retention metadata.
      if (!request.request_id.empty() && !sample_trace.empty()) {
        sample_trace.Annotate(0, "request_id", request.request_id);
      }
      retained.spans = sample_trace.ToString();
    }
    retention->Retain(std::move(retained));
  }
  if (log != nullptr) {
    AuditRecord record;
    record.timestamp_micros = NowMicros();
    record.fingerprint =
        info.fingerprint != 0
            ? info.fingerprint
            : FingerprintRawRequest(request.keywords, request.fragment);
    record.outcome = !xml.ok() ? AuditOutcome::kError
                     : info.stats.degraded ? AuditOutcome::kDegraded
                                           : AuditOutcome::kOk;
    record.total_micros =
        static_cast<uint64_t>(handle_timer.ElapsedMicros());
    record.phase1_micros =
        static_cast<uint64_t>(info.stats.phase1_seconds * 1e6);
    record.phase2_micros =
        static_cast<uint64_t>(info.stats.phase2_seconds * 1e6);
    record.phase3_micros =
        static_cast<uint64_t>(info.stats.phase3_seconds * 1e6);
    record.deadline_micros = static_cast<uint64_t>(remaining * 1e6);
    record.budget_micros =
        static_cast<uint64_t>(options.matcher_budget_seconds * 1e6);
    record.result_digest = info.digest;
    record.result_count = info.result_count;
    record.top_k = static_cast<uint32_t>(request.top_k);
    record.candidate_pool = static_cast<uint32_t>(request.candidate_pool);
    record.coarse_only_candidates =
        static_cast<uint32_t>(info.stats.coarse_only_candidates);
    record.dropped_matchers =
        static_cast<uint32_t>(info.stats.dropped_matchers.size());
    record.deadline_hit = info.stats.deadline_hit;
    record.cache_hit = info.stats.cache_hit;
    record.keywords = request.keywords;
    record.fragment = request.fragment;
    record.request_id = request.request_id;
    log->Record(std::move(record));
  }
  if (xml.ok()) return *std::move(xml);
  std::string slug = StatusCodeSlug(xml.status().code());
  if (wire != nullptr) wire->error_code = slug;
  return ErrorXml(slug, xml.status().message());
}

std::string SchemrService::HandleSearchXml(const SearchRequest& request,
                                           double deadline_seconds,
                                           SearchWireInfo* wire) const {
  BoundedExecutor* executor = nullptr;
  AdmissionController* admission = nullptr;
  {
    std::lock_guard<std::mutex> lock(serving_mutex_);
    if (shut_down_) {
      RecordRefusal(request, AuditOutcome::kShedDrain, deadline_seconds);
      if (wire != nullptr) {
        wire->shed_reason = ShedReason::kDrain;
        wire->error_code = "shutting_down";
      }
      return ErrorXml("shutting_down", "service is shut down");
    }
    executor = executor_.get();
    admission = admission_.get();
  }
  if (executor == nullptr) {
    // Not serving: run inline on the caller's thread, still bounded by
    // the (default) deadline. Single-threaded callers need no pool.
    const double deadline = deadline_seconds > 0.0
                                ? deadline_seconds
                                : AdmissionOptions{}.default_deadline_seconds;
    return RunSearchToXml(request, deadline, deadline, wire);
  }

  AdmissionDecision decision =
      admission->Admit(executor->QueueDepth(), deadline_seconds);
  if (!decision.admit) {
    RecordRefusal(request, ShedOutcome(decision.shed_reason),
                  decision.deadline_seconds);
    if (wire != nullptr) {
      wire->shed_reason = decision.shed_reason;
      wire->retry_after_ms = decision.retry_after_ms;
    }
    if (decision.shed_reason == ShedReason::kDrain) {
      if (wire != nullptr) wire->error_code = "shutting_down";
      return ErrorXml("shutting_down", "service is draining");
    }
    if (wire != nullptr) wire->error_code = "overloaded";
    return ErrorXml("overloaded", "request shed (" + decision.reason + ")",
                    decision.retry_after_ms);
  }

  // Hand the request to a worker and wait for its completion signal. The
  // executor guarantees the task runs exactly once (cancelled=true if the
  // drain deadline expired first), so this wait cannot strand.
  struct Completion {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::string xml;
    SearchWireInfo wire;
  };
  auto state = std::make_shared<Completion>();
  const Timer wait_timer;
  const double deadline = decision.deadline_seconds;
  Status submitted = executor->TrySubmit(
      [this, state, request, wait_timer, deadline](bool cancelled) {
        std::string xml;
        if (cancelled) {
          RecordRefusal(request, AuditOutcome::kCancelled, deadline);
          state->wire.shed_reason = ShedReason::kDrain;
          state->wire.error_code = "shutting_down";
          xml = ErrorXml("shutting_down", "cancelled by shutdown drain");
        } else {
          xml = RunSearchToXml(request,
                               deadline - wait_timer.ElapsedSeconds(),
                               deadline, &state->wire);
        }
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->xml = std::move(xml);
          state->done = true;
        }
        state->done_cv.notify_all();
      });
  if (!submitted.ok()) {
    // Lost the race between the admission check and the enqueue (another
    // thread filled the queue, or drain began). Shed rather than block;
    // CountShed keeps schemr_requests_shed_total accounting for every
    // rejection, raced or not.
    if (admission->draining()) {
      admission->CountShed(ShedReason::kDrain);
      RecordRefusal(request, AuditOutcome::kShedDrain,
                    decision.deadline_seconds);
      if (wire != nullptr) {
        wire->shed_reason = ShedReason::kDrain;
        wire->error_code = "shutting_down";
      }
      return ErrorXml("shutting_down", "service is draining");
    }
    admission->CountShed(ShedReason::kQueueFull);
    RecordRefusal(request, AuditOutcome::kShedQueueFull,
                  decision.deadline_seconds);
    if (wire != nullptr) {
      wire->shed_reason = ShedReason::kQueueFull;
      wire->retry_after_ms = admission->options().retry_after_base_ms;
      wire->error_code = "overloaded";
    }
    return ErrorXml("overloaded", submitted.message(),
                    admission->options().retry_after_base_ms);
  }
  FaultInjector::Global().Perturb("service/handoff/wait");
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] { return state->done; });
  admission->RecordServiceTime(wait_timer.ElapsedSeconds());
  if (wire != nullptr) *wire = std::move(state->wire);
  return std::move(state->xml);
}

std::string SearchRequestToXml(const SearchRequest& request) {
  XmlWriter xml;
  xml.Open("query").Attribute("keywords", request.keywords);
  xml.Attribute("top_k", static_cast<long long>(request.top_k));
  xml.Attribute("pool", static_cast<long long>(request.candidate_pool));
  if (request.explain) xml.Attribute("explain", "true");
  if (request.cache_bypass) xml.Attribute("cache", "bypass");
  if (request.prefilter > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", request.prefilter);
    xml.Attribute("prefilter", buf);
  }
  if (!request.fragment.empty()) {
    xml.SimpleElement("fragment", request.fragment);
  }
  xml.Close();
  return xml.Finish();
}

Result<SearchRequest> ParseSearchRequestXml(const std::string& xml) {
  auto doc = ParseXml(xml);
  if (!doc.ok()) {
    return Status::InvalidArgument("malformed request XML: " +
                                   doc.status().message());
  }
  const XmlNode* root = doc->root.get();
  if (root == nullptr || root->LocalName() != "query") {
    return Status::InvalidArgument("expected <query> root");
  }
  SearchRequest request;
  if (const std::string* v = root->FindAttribute("keywords")) {
    request.keywords = *v;
  }
  // Strict numeric attributes: a request that cannot say how much work it
  // wants does not get to guess.
  auto parse_size = [](const std::string& text, size_t* out) {
    if (text.empty() || text.size() > 9) return false;
    size_t value = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<size_t>(c - '0');
    }
    *out = value;
    return true;
  };
  if (const std::string* v = root->FindAttribute("top_k")) {
    if (!parse_size(*v, &request.top_k)) {
      return Status::InvalidArgument("non-numeric top_k '" + *v + "'");
    }
  }
  if (const std::string* v = root->FindAttribute("pool")) {
    if (!parse_size(*v, &request.candidate_pool)) {
      return Status::InvalidArgument("non-numeric pool '" + *v + "'");
    }
  }
  if (const std::string* v = root->FindAttribute("explain")) {
    request.explain = *v == "true" || *v == "1";
  }
  if (const std::string* v = root->FindAttribute("cache")) {
    request.cache_bypass = *v == "bypass";
  }
  if (const std::string* v = root->FindAttribute("prefilter")) {
    char* end = nullptr;
    const double threshold = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0' || !(threshold >= 0.0) ||
        threshold >= 1.0) {
      return Status::InvalidArgument("bad prefilter '" + *v +
                                     "' (want a number in [0, 1))");
    }
    request.prefilter = threshold;
  }
  if (const XmlNode* fragment = root->FirstChild("fragment")) {
    request.fragment = fragment->text;
  }
  if (request.top_k == 0) request.top_k = 10;
  if (request.candidate_pool < request.top_k) {
    request.candidate_pool = request.top_k;
  }
  return request;
}

HttpResponse SchemrService::HandleSearchHttp(const HttpRequest& http) const {
  HttpResponse response;
  response.content_type = "application/xml";
  // Request identity (DESIGN.md §15): honor a well-formed client id,
  // regenerate anything oversized or outside the id alphabet (hostile
  // header bytes are never echoed or recorded), and echo the verdict on
  // every response — including parse failures — so the client can always
  // quote the id this request was recorded under.
  std::string request_id;
  if (const std::string* header = http.FindHeader(kRequestIdHeaderLower);
      header != nullptr && IsValidRequestId(*header)) {
    request_id = *header;
  } else {
    request_id = MintRequestId();
  }
  response.headers.emplace_back(kRequestIdHeader, request_id);
  Result<SearchRequest> parsed = ParseSearchRequestXml(http.body);
  if (!parsed.ok()) {
    response.status = 400;
    response.body = ErrorXml(StatusCodeSlug(parsed.status().code()),
                             parsed.status().message());
    return response;
  }
  parsed->request_id = request_id;
  double deadline_seconds = 0.0;
  if (const std::string* header = http.FindHeader("x-schemr-deadline-ms")) {
    // Client deadline propagation: the header value flows into the
    // admission deadline and from there into the matcher budgets. A
    // non-numeric or non-positive value falls back to the default rather
    // than erroring — a bad hint should not cost the client its answer.
    const double deadline_ms = std::atof(header->c_str());
    if (deadline_ms > 0.0) deadline_seconds = deadline_ms / 1e3;
  }
  SearchWireInfo wire;
  response.body = HandleSearchXml(*parsed, deadline_seconds, &wire);
  if (wire.shed_reason != ShedReason::kNone) {
    // Sheds become 503. Only capacity sheds carry Retry-After — they are
    // the invitation to come back; a draining instance withholds it so a
    // well-behaved client (HttpCall) goes elsewhere instead.
    response.status = 503;
    response.headers.emplace_back("X-Schemr-Shed",
                                  ShedReasonName(wire.shed_reason));
    if (wire.shed_reason != ShedReason::kDrain && wire.retry_after_ms > 0.0) {
      response.retry_after_seconds = wire.retry_after_ms / 1e3;
    }
  } else if (!wire.error_code.empty()) {
    const bool client_fault = wire.error_code == "invalid_argument" ||
                              wire.error_code == "parse_error" ||
                              wire.error_code == "out_of_range";
    response.status = client_fault ? 400 : 500;
  }
  return response;
}

std::string SchemrService::MetricsText() const {
  PublishResultCacheMetrics(engine_.result_cache().get());
  return ToPrometheusText(MetricsRegistry::Global());
}

std::string SchemrService::MetricsJson() const {
  PublishResultCacheMetrics(engine_.result_cache().get());
  return ToJson(MetricsRegistry::Global());
}

std::string SchemrService::StatuszJson() const {
  std::string out = "{";
  JsonStr(&out, "service", "schemr");
  TelemetrySampler* sampler = telemetry_.get();
  JsonNum(&out, "uptime_seconds",
          sampler != nullptr ? sampler->UptimeSeconds() : 0.0);
  JsonBool(&out, "serving", serving());

  JsonKey(&out, "build");
  out.push_back('{');
  JsonStr(&out, "compiler", __VERSION__);
#ifdef NDEBUG
  JsonStr(&out, "mode", "release");
#else
  JsonStr(&out, "mode", "debug");
#endif
  out.push_back('}');

  JsonKey(&out, "corpus");
  out.push_back('{');
  if (corpus_ != nullptr) {
    std::shared_ptr<const CorpusSnapshot> snapshot = corpus_->Snapshot();
    JsonNum(&out, "snapshot_version",
            static_cast<double>(snapshot->version));
    JsonNum(&out, "index_docs",
            static_cast<double>(snapshot->index->NumDocs()));
    JsonNum(&out, "index_terms",
            static_cast<double>(snapshot->index->NumTerms()));
  } else {
    JsonNum(&out, "snapshot_version", 0.0);
    JsonNum(&out, "index_docs", 0.0);
    JsonNum(&out, "index_terms", 0.0);
  }
  out.push_back('}');

  JsonKey(&out, "signatures");
  out.push_back('{');
  {
    MetricsRegistry& registry = MetricsRegistry::Global();
    double catalog_schemas = 0.0;
    if (corpus_ != nullptr) {
      std::shared_ptr<const CorpusSnapshot> snapshot = corpus_->Snapshot();
      if (snapshot->match_features != nullptr) {
        catalog_schemas =
            static_cast<double>(snapshot->match_features->size());
      }
    }
    JsonNum(&out, "catalog_schemas", catalog_schemas);
    JsonNum(&out, "prefilter_rejected_total",
            static_cast<double>(
                registry.GetCounter("schemr_search_prefilter_rejected_total")
                    ->Value()));
    Histogram* build =
        registry.GetHistogram("schemr_signature_build_seconds");
    JsonNum(&out, "build_count", static_cast<double>(build->Count()));
    JsonNum(&out, "build_seconds_total", build->Sum());
  }
  out.push_back('}');

  JsonKey(&out, "result_cache");
  out.push_back('{');
  std::shared_ptr<ResultCache> cache = engine_.result_cache();
  JsonBool(&out, "enabled", cache != nullptr);
  if (cache != nullptr) {
    const ResultCacheStats stats = cache->Stats();
    const uint64_t lookups = stats.hits + stats.misses;
    JsonNum(&out, "capacity", static_cast<double>(cache->capacity()));
    JsonNum(&out, "entries", static_cast<double>(stats.entries));
    JsonNum(&out, "hits", static_cast<double>(stats.hits));
    JsonNum(&out, "misses", static_cast<double>(stats.misses));
    JsonNum(&out, "insertions", static_cast<double>(stats.insertions));
    JsonNum(&out, "evictions", static_cast<double>(stats.evictions));
    JsonNum(&out, "hit_ratio",
            lookups == 0 ? 0.0
                         : static_cast<double>(stats.hits) /
                               static_cast<double>(lookups));
  }
  out.push_back('}');

  JsonKey(&out, "executor");
  out.push_back('{');
  BoundedExecutor* executor = executor_.get();
  if (executor != nullptr) {
    JsonNum(&out, "workers", static_cast<double>(executor->num_workers()));
    JsonNum(&out, "queue_capacity",
            static_cast<double>(executor->queue_capacity()));
    JsonNum(&out, "queue_depth",
            static_cast<double>(executor->QueueDepth()));
    JsonNum(&out, "running", static_cast<double>(executor->NumRunning()));
    JsonBool(&out, "wedged", executor->wedged());
  }
  out.push_back('}');

  JsonKey(&out, "admission");
  out.push_back('{');
  AdmissionController* admission = admission_.get();
  if (admission != nullptr) {
    JsonBool(&out, "draining", admission->draining());
    JsonNum(&out, "predicted_service_ms",
            admission->PredictedServiceSeconds() * 1e3);
  }
  out.push_back('}');

  JsonKey(&out, "http");
  out.push_back('{');
  if (HttpServer* search = search_server_.get(); search != nullptr) {
    const HttpServerStats stats = search->Stats();
    JsonNum(&out, "port", static_cast<double>(search->port()));
    JsonNum(&out, "connections", static_cast<double>(stats.connections));
    JsonNum(&out, "active", static_cast<double>(stats.active));
    JsonNum(&out, "shed", static_cast<double>(stats.shed));
    JsonNum(&out, "timeouts", static_cast<double>(stats.timeouts));
    JsonNum(&out, "bytes_read", static_cast<double>(stats.bytes_read));
    JsonNum(&out, "bytes_written", static_cast<double>(stats.bytes_written));
    JsonBool(&out, "draining", search->draining());
  }
  out.push_back('}');

  JsonKey(&out, "traces");
  out.push_back('{');
  if (TraceRetention* retention = traces_.get(); retention != nullptr) {
    const TraceRetention::Stats stats = retention->GetStats();
    JsonNum(&out, "offered", static_cast<double>(stats.offered));
    JsonNum(&out, "sampled", static_cast<double>(stats.sampled));
    JsonNum(&out, "retained", static_cast<double>(stats.retained));
    JsonNum(&out, "sample_every_n",
            static_cast<double>(retention->options().sample_every_n));
  }
  out.push_back('}');

  if (sampler != nullptr) {
    AppendWindowJson(&out, "window_1m", sampler->Window(60.0));
    AppendWindowJson(&out, "window_5m", sampler->Window(300.0));
    AppendWindowJson(&out, "window_15m", sampler->Window(900.0));
  }
  out += "}\n";
  return out;
}

std::string SchemrService::HealthzJson(int* http_status) const {
  const char* state = "ok";
  int status = 200;
  BoundedExecutor* executor;
  AdmissionController* admission;
  bool down;
  {
    std::lock_guard<std::mutex> lock(serving_mutex_);
    executor = executor_.get();
    admission = admission_.get();
    down = shut_down_;
  }
  std::string out = "{";
  if (executor == nullptr) {
    state = "not_serving";
    status = 503;
  } else if (down) {
    // A completed graceful drain is a planned exit, not a stuck
    // executor; operators filter on "wedged" for the latter.
    state = "shut_down";
    status = 503;
  } else if (executor->wedged()) {
    state = "wedged";
    status = 503;
  } else if (admission->draining()) {
    state = "draining";
    status = 503;
  }
  JsonStr(&out, "status", state);
  bool overloaded = false;
  if (executor != nullptr) {
    const size_t depth = executor->QueueDepth();
    overloaded = depth >= executor->queue_capacity();
    JsonNum(&out, "queue_depth", static_cast<double>(depth));
    JsonNum(&out, "running", static_cast<double>(executor->NumRunning()));
  }
  JsonBool(&out, "overloaded", overloaded);
  out += "}\n";
  if (http_status != nullptr) *http_status = status;
  return out;
}

std::string SchemrService::ReadyzJson(int* http_status) const {
  const char* state = "ready";
  int status = 200;
  BoundedExecutor* executor;
  AdmissionController* admission;
  bool down;
  {
    std::lock_guard<std::mutex> lock(serving_mutex_);
    executor = executor_.get();
    admission = admission_.get();
    down = shut_down_;
  }
  if (executor == nullptr || down || executor->wedged()) {
    // "Dead" from a router's perspective: never started, shut down, or
    // a wedged executor that will not answer. (/healthz still tells the
    // operator WHICH of those it is.)
    state = "not_serving";
    status = 503;
  } else if (admission->draining()) {
    // "Dying": in-flight work finishes, new work must go elsewhere.
    state = "draining";
    status = 503;
  }
  std::string out = "{";
  JsonStr(&out, "status", state);
  out += "}\n";
  if (http_status != nullptr) *http_status = status;
  return out;
}

std::string SchemrService::TracezJson() const {
  TraceRetention* retention = traces_.get();
  if (retention == nullptr) return "{}\n";
  return retention->ToJson();
}

std::string SchemrService::SlowzJson() const {
  std::shared_ptr<AuditLog> log = audit();
  std::vector<AuditRecord> slow;
  if (log != nullptr) slow = log->SlowQueries();
  std::string out = "{";
  JsonNum(&out, "count", static_cast<double>(slow.size()));
  JsonKey(&out, "queries");
  out.push_back('[');
  bool first = true;
  for (const AuditRecord& record : slow) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('{');
    // Full-precision integer, matching /tracez: epoch micros lose
    // ~10s of granularity through %.9g double formatting.
    char timestamp[24];
    std::snprintf(timestamp, sizeof(timestamp), "%llu",
                  static_cast<unsigned long long>(record.timestamp_micros));
    JsonKey(&out, "timestamp_micros");
    out += timestamp;
    char fingerprint[32];
    std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                  static_cast<unsigned long long>(record.fingerprint));
    JsonStr(&out, "fingerprint", fingerprint);
    JsonStr(&out, "outcome", AuditOutcomeName(record.outcome));
    JsonNum(&out, "total_ms", static_cast<double>(record.total_micros) / 1e3);
    JsonNum(&out, "result_count", static_cast<double>(record.result_count));
    JsonBool(&out, "deadline_hit", record.deadline_hit);
    JsonBool(&out, "cache_hit", record.cache_hit);
    if (record.has_query_text) JsonStr(&out, "keywords", record.keywords);
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

Result<std::string> SchemrService::RenderHtmlReport(
    const SearchRequest& request, size_t max_panels,
    const SearchEngineOptions& engine_options) const {
  static const EndpointMetrics metrics = MakeEndpoint("report");
  EndpointScope scope(metrics);
  auto searched = Search(request, engine_options);
  if (!scope.Check(searched).ok()) return searched.status();
  std::vector<SearchResult> results = std::move(searched).value();

  std::vector<ReportRow> rows;
  rows.reserve(results.size());
  for (const SearchResult& r : results) {
    rows.push_back(ReportRow{r.name, r.score, r.num_matches, r.num_entities,
                             r.num_attributes, r.description});
  }

  std::vector<ReportPanel> panels;
  for (size_t i = 0; i < results.size() && i < max_panels; ++i) {
    VisualizationRequest viz;
    viz.schema_id = results[i].schema_id;
    viz.scores = results[i].matched_elements;
    // Alternate layouts across panels, as the GUI offers both.
    viz.layout = (i % 2 == 0) ? "tree" : "radial";
    SCHEMR_ASSIGN_OR_RETURN(std::string svg, GetSchemaSvg(viz));
    panels.push_back(ReportPanel{
        results[i].name + " (" + viz.layout + " view)", std::move(svg)});
  }

  std::string query_desc = "keywords: \"" + request.keywords + "\"";
  if (!request.fragment.empty()) {
    query_desc += "  +  schema fragment (" +
                  std::to_string(request.fragment.size()) + " chars)";
  }
  return WriteHtmlReport("Schemr search results", query_desc, rows, panels);
}

}  // namespace schemr
