#include "schema/schema.h"

#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace schemr {

Schema::Schema(const Schema& other)
    : id_(other.id_),
      name_(other.name_),
      description_(other.description_),
      source_(other.source_),
      elements_(other.elements_),
      foreign_keys_(other.foreign_keys_) {
  // The adjacency cache is not copied — the copy rebuilds it lazily.
  // Copying it would require locking `other`, which may be shared.
}

Schema& Schema::operator=(const Schema& other) {
  if (this == &other) return *this;
  id_ = other.id_;
  name_ = other.name_;
  description_ = other.description_;
  source_ = other.source_;
  elements_ = other.elements_;
  foreign_keys_ = other.foreign_keys_;
  children_.clear();
  children_valid_.store(false, std::memory_order_release);
  return *this;
}

Schema::Schema(Schema&& other) noexcept
    : id_(other.id_),
      name_(std::move(other.name_)),
      description_(std::move(other.description_)),
      source_(std::move(other.source_)),
      elements_(std::move(other.elements_)),
      foreign_keys_(std::move(other.foreign_keys_)),
      children_valid_(
          other.children_valid_.load(std::memory_order_relaxed)),
      children_(std::move(other.children_)) {}

Schema& Schema::operator=(Schema&& other) noexcept {
  if (this == &other) return *this;
  id_ = other.id_;
  name_ = std::move(other.name_);
  description_ = std::move(other.description_);
  source_ = std::move(other.source_);
  elements_ = std::move(other.elements_);
  foreign_keys_ = std::move(other.foreign_keys_);
  children_ = std::move(other.children_);
  children_valid_.store(
      other.children_valid_.load(std::memory_order_relaxed),
      std::memory_order_release);
  return *this;
}

ElementId Schema::AddEntity(std::string name, ElementId parent) {
  Element e;
  e.name = std::move(name);
  e.kind = ElementKind::kEntity;
  e.type = DataType::kNone;
  e.parent = parent;
  return AddElement(std::move(e));
}

ElementId Schema::AddAttribute(std::string name, ElementId parent,
                               DataType type) {
  Element e;
  e.name = std::move(name);
  e.kind = ElementKind::kAttribute;
  e.type = type;
  e.parent = parent;
  return AddElement(std::move(e));
}

ElementId Schema::AddElement(Element element) {
  InvalidateCache();
  elements_.push_back(std::move(element));
  return static_cast<ElementId>(elements_.size() - 1);
}

void Schema::AddForeignKey(ElementId attribute, ElementId target_entity,
                           ElementId target_attribute) {
  foreign_keys_.push_back(ForeignKey{attribute, target_entity,
                                     target_attribute});
}

Element* Schema::mutable_element(ElementId id) {
  InvalidateCache();
  return &elements_[id];
}

std::vector<ElementId> Schema::Roots() const {
  std::vector<ElementId> out;
  for (ElementId i = 0; i < elements_.size(); ++i) {
    if (elements_[i].parent == kNoElement) out.push_back(i);
  }
  return out;
}

const std::vector<ElementId>& Schema::Children(ElementId id) const {
  EnsureChildren();
  return children_[id];
}

std::vector<ElementId> Schema::Entities() const {
  std::vector<ElementId> out;
  for (ElementId i = 0; i < elements_.size(); ++i) {
    if (elements_[i].kind == ElementKind::kEntity) out.push_back(i);
  }
  return out;
}

std::vector<ElementId> Schema::Attributes() const {
  std::vector<ElementId> out;
  for (ElementId i = 0; i < elements_.size(); ++i) {
    if (elements_[i].kind == ElementKind::kAttribute) out.push_back(i);
  }
  return out;
}

size_t Schema::NumEntities() const {
  size_t n = 0;
  for (const auto& e : elements_) n += (e.kind == ElementKind::kEntity);
  return n;
}

size_t Schema::NumAttributes() const {
  size_t n = 0;
  for (const auto& e : elements_) n += (e.kind == ElementKind::kAttribute);
  return n;
}

ElementId Schema::EntityOf(ElementId id) const {
  ElementId cur = id;
  // Bounded by tree height; Validate() guarantees acyclicity for valid
  // schemas, and the size() bound makes this loop safe even on bad input.
  for (size_t steps = 0; steps <= elements_.size(); ++steps) {
    if (cur == kNoElement) return kNoElement;
    if (elements_[cur].kind == ElementKind::kEntity) return cur;
    cur = elements_[cur].parent;
  }
  return kNoElement;
}

size_t Schema::Depth(ElementId id) const {
  size_t depth = 0;
  ElementId cur = elements_[id].parent;
  while (cur != kNoElement && depth <= elements_.size()) {
    ++depth;
    cur = elements_[cur].parent;
  }
  return depth;
}

std::string Schema::Path(ElementId id) const {
  std::vector<std::string> parts;
  ElementId cur = id;
  size_t guard = 0;
  while (cur != kNoElement && guard++ <= elements_.size()) {
    parts.push_back(elements_[cur].name);
    cur = elements_[cur].parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += *it;
  }
  return out;
}

std::optional<ElementId> Schema::FindByName(
    std::string_view name, std::optional<ElementKind> kind) const {
  for (ElementId i = 0; i < elements_.size(); ++i) {
    if (kind && elements_[i].kind != *kind) continue;
    if (EqualsIgnoreCase(elements_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status Schema::Validate() const {
  const size_t n = elements_.size();
  for (ElementId i = 0; i < n; ++i) {
    const Element& e = elements_[i];
    if (e.name.empty()) {
      return Status::InvalidArgument("element " + std::to_string(i) +
                                     " has empty name");
    }
    if (e.parent != kNoElement) {
      if (e.parent >= n) {
        return Status::InvalidArgument("element '" + e.name +
                                       "' has out-of-range parent");
      }
      if (elements_[e.parent].kind == ElementKind::kAttribute) {
        return Status::InvalidArgument("attribute '" +
                                       elements_[e.parent].name +
                                       "' has child '" + e.name + "'");
      }
    }
    // Cycle check: walk to root, bounded by n steps.
    ElementId cur = e.parent;
    size_t steps = 0;
    while (cur != kNoElement) {
      if (++steps > n) {
        return Status::InvalidArgument("containment cycle through '" +
                                       e.name + "'");
      }
      if (cur >= n) break;  // caught above when that element is visited
      cur = elements_[cur].parent;
    }
  }
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.attribute >= n ||
        elements_[fk.attribute].kind != ElementKind::kAttribute) {
      return Status::InvalidArgument("foreign key source is not an attribute");
    }
    if (fk.target_entity >= n ||
        elements_[fk.target_entity].kind != ElementKind::kEntity) {
      return Status::InvalidArgument("foreign key target is not an entity");
    }
    if (fk.target_attribute != kNoElement &&
        (fk.target_attribute >= n ||
         elements_[fk.target_attribute].kind != ElementKind::kAttribute)) {
      return Status::InvalidArgument(
          "foreign key target attribute is not an attribute");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "schema '" << name_ << "'";
  if (id_ != kNoSchema) os << " (id " << id_ << ")";
  os << ": " << NumEntities() << " entities, " << NumAttributes()
     << " attributes\n";
  // Render the forest depth-first.
  EnsureChildren();
  struct Frame {
    ElementId id;
    size_t depth;
  };
  std::vector<Frame> stack;
  std::vector<ElementId> roots = Roots();
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Element& e = elements_[f.id];
    for (size_t i = 0; i < f.depth; ++i) os << "  ";
    os << (e.kind == ElementKind::kEntity ? "+ " : "- ") << e.name;
    if (e.kind == ElementKind::kAttribute) os << " : " << DataTypeName(e.type);
    if (e.primary_key) os << " [pk]";
    os << "\n";
    const auto& kids = children_[f.id];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  for (const ForeignKey& fk : foreign_keys_) {
    os << "  fk: " << Path(fk.attribute) << " -> "
       << elements_[fk.target_entity].name;
    if (fk.target_attribute != kNoElement) {
      os << "." << elements_[fk.target_attribute].name;
    }
    os << "\n";
  }
  return os.str();
}

void Schema::InvalidateCache() const {
  children_valid_.store(false, std::memory_order_release);
}

void Schema::EnsureChildren() const {
  // Double-checked build: schemas shared by a snapshot are scored from
  // several worker threads at once, and the first Children() call may
  // land on all of them simultaneously.
  if (children_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(children_mutex_);
  if (children_valid_.load(std::memory_order_relaxed)) return;
  children_.assign(elements_.size(), {});
  for (ElementId i = 0; i < elements_.size(); ++i) {
    ElementId p = elements_[i].parent;
    if (p != kNoElement && p < elements_.size()) {
      children_[p].push_back(i);
    }
  }
  children_valid_.store(true, std::memory_order_release);
}

}  // namespace schemr
