// The Schema class: a forest of elements plus foreign-key links.
//
// A Schema owns a vector of Elements; element ids are indices into that
// vector, so a schema is a compact, cheaply copyable value type. Structure
// is encoded by Element::parent (containment) and by ForeignKey records
// (cross-entity references). Derived adjacency (children lists, entity
// lists) is computed on demand and cached; any mutation invalidates the
// cache.

#ifndef SCHEMR_SCHEMA_SCHEMA_H_
#define SCHEMR_SCHEMA_SCHEMA_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "schema/element.h"
#include "util/status.h"

namespace schemr {

/// A foreign-key edge: `attribute` (in some entity) references
/// `target_entity`, optionally naming the referenced attribute.
struct ForeignKey {
  ElementId attribute = kNoElement;
  ElementId target_entity = kNoElement;
  ElementId target_attribute = kNoElement;  // optional; kNoElement if unnamed

  bool operator==(const ForeignKey&) const = default;
};

/// A schema: metadata + element forest + foreign keys.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  // Defined out of line: the adjacency-cache guard (mutex + atomic flag)
  // is neither copyable nor movable, so the data members are transferred
  // explicitly and the destination gets its own guard. Copies/moves
  // require exclusive ownership of the source, like any other mutation.
  Schema(const Schema& other);
  Schema& operator=(const Schema& other);
  Schema(Schema&& other) noexcept;
  Schema& operator=(Schema&& other) noexcept;

  // --- Metadata -----------------------------------------------------------

  SchemaId id() const { return id_; }
  void set_id(SchemaId id) { id_ = id; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& description() const { return description_; }
  void set_description(std::string d) { description_ = std::move(d); }

  /// Provenance URI ("ddl://...", "xsd://...", "webtable://...").
  const std::string& source() const { return source_; }
  void set_source(std::string s) { source_ = std::move(s); }

  // --- Construction -------------------------------------------------------

  /// Adds an entity under `parent` (kNoElement for a root entity).
  /// Returns its id. Invalid parent ids are caught by Validate().
  ElementId AddEntity(std::string name, ElementId parent = kNoElement);

  /// Adds an attribute of `type` to entity `parent`. Returns its id.
  ElementId AddAttribute(std::string name, ElementId parent,
                         DataType type = DataType::kString);

  /// Appends a fully specified element (used by codecs/importers).
  ElementId AddElement(Element element);

  /// Records a foreign key. Referential validity is checked by Validate().
  void AddForeignKey(ElementId attribute, ElementId target_entity,
                     ElementId target_attribute = kNoElement);

  /// Mutable access for importers; invalidates cached adjacency.
  Element* mutable_element(ElementId id);

  // --- Access -------------------------------------------------------------

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const Element& element(ElementId id) const { return elements_[id]; }
  const std::vector<Element>& elements() const { return elements_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Ids of elements with no parent, in insertion order.
  std::vector<ElementId> Roots() const;

  /// Ids of direct children of `id`, in insertion order.
  const std::vector<ElementId>& Children(ElementId id) const;

  /// All entity ids / all attribute ids, in insertion order.
  std::vector<ElementId> Entities() const;
  std::vector<ElementId> Attributes() const;

  size_t NumEntities() const;
  size_t NumAttributes() const;

  /// The entity containing `id`: itself if an entity, else the nearest
  /// entity ancestor; kNoElement for a parentless attribute.
  ElementId EntityOf(ElementId id) const;

  /// Distance from root (roots have depth 0).
  size_t Depth(ElementId id) const;

  /// Dotted path from root, e.g. "patient.height".
  std::string Path(ElementId id) const;

  /// Finds the first element with this exact name (case-insensitive),
  /// optionally restricted to a kind.
  std::optional<ElementId> FindByName(
      std::string_view name,
      std::optional<ElementKind> kind = std::nullopt) const;

  // --- Integrity ----------------------------------------------------------

  /// Checks structural invariants:
  ///  - parent ids in range, containment graph acyclic;
  ///  - attributes never contain children;
  ///  - foreign keys reference an existing attribute and entity;
  ///  - element names non-empty.
  Status Validate() const;

  /// Human-readable multi-line rendering (for tests and examples).
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return id_ == other.id_ && name_ == other.name_ &&
           description_ == other.description_ && source_ == other.source_ &&
           elements_ == other.elements_ && foreign_keys_ == other.foreign_keys_;
  }

 private:
  void InvalidateCache() const;
  void EnsureChildren() const;

  SchemaId id_ = kNoSchema;
  std::string name_;
  std::string description_;
  std::string source_;
  std::vector<Element> elements_;
  std::vector<ForeignKey> foreign_keys_;

  // Lazily built child adjacency; indexed by element id. Schemas inside
  // a published snapshot are shared across scoring threads, so the first
  // use can race: children_mutex_ serializes the build and
  // children_valid_ (acquire/release) publishes it. Invalidation happens
  // only on mutation, which requires exclusive ownership anyway.
  mutable std::mutex children_mutex_;
  mutable std::atomic<bool> children_valid_{false};
  mutable std::vector<std::vector<ElementId>> children_;
};

}  // namespace schemr

#endif  // SCHEMR_SCHEMA_SCHEMA_H_
