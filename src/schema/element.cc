#include "schema/element.h"

namespace schemr {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNone:
      return "none";
    case DataType::kString:
      return "string";
    case DataType::kText:
      return "text";
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kBool:
      return "bool";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
    case DataType::kDateTime:
      return "datetime";
    case DataType::kBinary:
      return "binary";
  }
  return "unknown";
}

const char* ElementKindName(ElementKind kind) {
  switch (kind) {
    case ElementKind::kEntity:
      return "entity";
    case ElementKind::kAttribute:
      return "attribute";
  }
  return "unknown";
}

}  // namespace schemr
