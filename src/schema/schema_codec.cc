#include "schema/schema_codec.h"

#include "util/varint.h"

namespace schemr {

namespace {

constexpr std::string_view kMagic = "SCM1";
constexpr uint8_t kMaxDataType = static_cast<uint8_t>(DataType::kBinary);

constexpr uint8_t kFlagNullable = 0x01;
constexpr uint8_t kFlagPrimaryKey = 0x02;

// kNoElement <-> 0 bijection for optional element references.
uint64_t EncodeRef(ElementId id) {
  return id == kNoElement ? 0 : static_cast<uint64_t>(id) + 1;
}

Status DecodeRef(uint64_t raw, size_t limit, bool allow_none, ElementId* out) {
  if (raw == 0) {
    if (!allow_none) return Status::Corruption("missing element reference");
    *out = kNoElement;
    return Status::OK();
  }
  uint64_t id = raw - 1;
  if (id >= limit) return Status::Corruption("element reference out of range");
  *out = static_cast<ElementId>(id);
  return Status::OK();
}

}  // namespace

std::string EncodeSchema(const Schema& schema) {
  std::string out;
  out.append(kMagic);
  PutVarint64(&out, schema.id() == kNoSchema ? 0 : schema.id() + 1);
  PutLengthPrefixed(&out, schema.name());
  PutLengthPrefixed(&out, schema.description());
  PutLengthPrefixed(&out, schema.source());
  PutVarint64(&out, schema.size());
  for (const Element& e : schema.elements()) {
    PutLengthPrefixed(&out, e.name);
    PutLengthPrefixed(&out, e.documentation);
    out.push_back(static_cast<char>(e.kind));
    out.push_back(static_cast<char>(e.type));
    PutVarint64(&out, EncodeRef(e.parent));
    uint8_t flags = 0;
    if (e.nullable) flags |= kFlagNullable;
    if (e.primary_key) flags |= kFlagPrimaryKey;
    out.push_back(static_cast<char>(flags));
  }
  PutVarint64(&out, schema.foreign_keys().size());
  for (const ForeignKey& fk : schema.foreign_keys()) {
    PutVarint64(&out, EncodeRef(fk.attribute));
    PutVarint64(&out, EncodeRef(fk.target_entity));
    PutVarint64(&out, EncodeRef(fk.target_attribute));
  }
  return out;
}

Result<Schema> DecodeSchema(std::string_view data) {
  if (data.size() < kMagic.size() || data.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("bad schema magic");
  }
  data.remove_prefix(kMagic.size());

  Schema schema;
  uint64_t raw_id = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &raw_id));
  schema.set_id(raw_id == 0 ? kNoSchema : raw_id - 1);

  std::string_view name, description, source;
  SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &name));
  SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &description));
  SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &source));
  schema.set_name(std::string(name));
  schema.set_description(std::string(description));
  schema.set_source(std::string(source));

  uint64_t num_elements = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_elements));
  if (num_elements > data.size()) {
    // Each element needs at least a few bytes; this bounds allocation on
    // corrupt counts.
    return Status::Corruption("element count exceeds payload");
  }
  for (uint64_t i = 0; i < num_elements; ++i) {
    Element e;
    std::string_view ename, edoc;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &ename));
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &edoc));
    e.name = std::string(ename);
    e.documentation = std::string(edoc);
    if (data.size() < 2) return Status::Corruption("truncated element");
    uint8_t kind = static_cast<uint8_t>(data[0]);
    uint8_t type = static_cast<uint8_t>(data[1]);
    data.remove_prefix(2);
    if (kind > 1) return Status::Corruption("bad element kind");
    if (type > kMaxDataType) return Status::Corruption("bad data type");
    e.kind = static_cast<ElementKind>(kind);
    e.type = static_cast<DataType>(type);
    uint64_t raw_parent = 0;
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &raw_parent));
    SCHEMR_RETURN_IF_ERROR(
        DecodeRef(raw_parent, num_elements, /*allow_none=*/true, &e.parent));
    if (data.empty()) return Status::Corruption("truncated element flags");
    uint8_t flags = static_cast<uint8_t>(data[0]);
    data.remove_prefix(1);
    e.nullable = (flags & kFlagNullable) != 0;
    e.primary_key = (flags & kFlagPrimaryKey) != 0;
    schema.AddElement(std::move(e));
  }

  uint64_t num_fks = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_fks));
  if (num_fks > data.size() + 1) {
    return Status::Corruption("foreign key count exceeds payload");
  }
  for (uint64_t i = 0; i < num_fks; ++i) {
    uint64_t raw_attr = 0, raw_entity = 0, raw_target_attr = 0;
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &raw_attr));
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &raw_entity));
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &raw_target_attr));
    ElementId attr, entity, target_attr;
    SCHEMR_RETURN_IF_ERROR(
        DecodeRef(raw_attr, num_elements, /*allow_none=*/false, &attr));
    SCHEMR_RETURN_IF_ERROR(
        DecodeRef(raw_entity, num_elements, /*allow_none=*/false, &entity));
    SCHEMR_RETURN_IF_ERROR(DecodeRef(raw_target_attr, num_elements,
                                     /*allow_none=*/true, &target_attr));
    schema.AddForeignKey(attr, entity, target_attr);
  }

  if (!data.empty()) {
    return Status::Corruption("trailing bytes after schema");
  }
  return schema;
}

}  // namespace schemr
