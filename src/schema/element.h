// Schema elements: the nodes of a schema graph.
//
// Schemr models every schema -- relational or XML -- as a forest of
// elements. Entities (tables, complex types) contain attributes (columns,
// simple elements) and possibly nested entities; foreign keys add
// cross-links between entities. Keywords in a query graph are represented
// as one-element trees (see core/query_graph.h).

#ifndef SCHEMR_SCHEMA_ELEMENT_H_
#define SCHEMR_SCHEMA_ELEMENT_H_

#include <cstdint>
#include <string>

namespace schemr {

/// Index of an element within its schema.
using ElementId = uint32_t;

/// Sentinel for "no element" (roots have this as parent).
inline constexpr ElementId kNoElement = UINT32_MAX;

/// Stable identifier of a schema within a repository.
using SchemaId = uint64_t;

/// Sentinel for "no schema assigned yet".
inline constexpr SchemaId kNoSchema = UINT64_MAX;

/// Role of an element in the schema graph.
enum class ElementKind : uint8_t {
  kEntity = 0,     ///< Table, XSD complex type, nested record.
  kAttribute = 1,  ///< Column, XSD simple element or attribute.
};

/// Logical data type of an attribute. kNone for entities.
enum class DataType : uint8_t {
  kNone = 0,
  kString,
  kText,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
  kDecimal,
  kBool,
  kDate,
  kTime,
  kDateTime,
  kBinary,
};

/// Stable lowercase name of a data type ("int64", "datetime", ...).
const char* DataTypeName(DataType type);

/// Stable name of an element kind ("entity" / "attribute").
const char* ElementKindName(ElementKind kind);

/// One node of a schema graph.
struct Element {
  std::string name;
  /// Optional human documentation (column comment, xs:documentation).
  std::string documentation;
  ElementKind kind = ElementKind::kAttribute;
  DataType type = DataType::kNone;
  /// Containing element; kNoElement for roots.
  ElementId parent = kNoElement;
  bool nullable = true;
  bool primary_key = false;

  bool operator==(const Element&) const = default;
};

}  // namespace schemr

#endif  // SCHEMR_SCHEMA_ELEMENT_H_
