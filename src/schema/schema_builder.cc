#include "schema/schema_builder.h"

#include <cassert>

#include "util/string_util.h"

namespace schemr {

SchemaBuilder& SchemaBuilder::Entity(std::string name) {
  entity_stack_.clear();
  entity_stack_.push_back(schema_.AddEntity(std::move(name)));
  last_attribute_ = kNoElement;
  return *this;
}

SchemaBuilder& SchemaBuilder::NestedEntity(std::string name) {
  ElementId parent = entity_stack_.empty() ? kNoElement : entity_stack_.back();
  entity_stack_.push_back(schema_.AddEntity(std::move(name), parent));
  last_attribute_ = kNoElement;
  return *this;
}

SchemaBuilder& SchemaBuilder::End() {
  if (!entity_stack_.empty()) entity_stack_.pop_back();
  last_attribute_ = kNoElement;
  return *this;
}

SchemaBuilder& SchemaBuilder::Attribute(std::string name, DataType type) {
  ElementId parent = entity_stack_.empty() ? kNoElement : entity_stack_.back();
  last_attribute_ = schema_.AddAttribute(std::move(name), parent, type);
  return *this;
}

SchemaBuilder& SchemaBuilder::PrimaryKey() {
  if (last_attribute_ != kNoElement) {
    Element* e = schema_.mutable_element(last_attribute_);
    e->primary_key = true;
    e->nullable = false;
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::NotNull() {
  if (last_attribute_ != kNoElement) {
    schema_.mutable_element(last_attribute_)->nullable = false;
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::Doc(std::string documentation) {
  ElementId target = last_attribute_ != kNoElement
                         ? last_attribute_
                         : (entity_stack_.empty() ? kNoElement
                                                  : entity_stack_.back());
  if (target != kNoElement) {
    schema_.mutable_element(target)->documentation = std::move(documentation);
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::References(std::string target) {
  if (last_attribute_ != kNoElement) {
    pending_fks_.push_back(PendingFk{last_attribute_, std::move(target)});
  }
  return *this;
}

Schema SchemaBuilder::Build() {
  Result<Schema> result = TryBuild();
  assert(result.ok());
  return std::move(result).value();
}

Result<Schema> SchemaBuilder::TryBuild() {
  for (const PendingFk& fk : pending_fks_) {
    auto dot = fk.target.find('.');
    std::string entity_name =
        dot == std::string::npos ? fk.target : fk.target.substr(0, dot);
    auto entity = schema_.FindByName(entity_name, ElementKind::kEntity);
    if (!entity) {
      return Status::InvalidArgument("unresolved foreign key target '" +
                                     fk.target + "'");
    }
    ElementId target_attr = kNoElement;
    if (dot != std::string::npos) {
      std::string attr_name = fk.target.substr(dot + 1);
      bool found = false;
      for (ElementId child : schema_.Children(*entity)) {
        if (schema_.element(child).kind == ElementKind::kAttribute &&
            EqualsIgnoreCase(schema_.element(child).name, attr_name)) {
          target_attr = child;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("unresolved foreign key attribute '" +
                                       fk.target + "'");
      }
    }
    schema_.AddForeignKey(fk.attribute, *entity, target_attr);
  }
  pending_fks_.clear();
  SCHEMR_RETURN_IF_ERROR(schema_.Validate());
  return std::move(schema_);
}

}  // namespace schemr
