// Entity-level graph derived from a schema's foreign keys.
//
// The tightness-of-fit measure (core/tightness_of_fit.h) needs to know, for
// a pair of entities, whether they are the same entity, in the same "entity
// neighborhood" (transitive closure over foreign keys -- the paper's
// definition), or unrelated. The context matcher additionally uses hop
// distances. EntityGraph precomputes connected components and adjacency
// once per schema.

#ifndef SCHEMR_SCHEMA_ENTITY_GRAPH_H_
#define SCHEMR_SCHEMA_ENTITY_GRAPH_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "schema/schema.h"

namespace schemr {

/// Undirected graph whose vertices are a schema's entities and whose edges
/// are foreign keys (plus parent/child containment between nested
/// entities, which is the XML analogue of a foreign key).
class EntityGraph {
 public:
  explicit EntityGraph(const Schema& schema);

  /// All entity ids, in schema insertion order.
  const std::vector<ElementId>& entities() const { return entities_; }

  /// FK/containment-adjacent entities of `entity` (no duplicates, no self).
  const std::vector<ElementId>& Neighbors(ElementId entity) const;

  /// True iff the two entities are connected through any chain of foreign
  /// keys (the transitive closure the paper uses for the "small penalty").
  bool InSameNeighborhood(ElementId a, ElementId b) const;

  /// Hop distance between two entities; 0 for a==b; SIZE_MAX if
  /// disconnected. BFS per call, O(V+E).
  size_t Distance(ElementId a, ElementId b) const;

  /// Connected-component id of `entity` (dense, starting at 0).
  size_t ComponentOf(ElementId entity) const;

  size_t NumComponents() const { return num_components_; }

 private:
  std::vector<ElementId> entities_;
  std::unordered_map<ElementId, std::vector<ElementId>> adjacency_;
  std::unordered_map<ElementId, size_t> component_;
  size_t num_components_ = 0;

  static const std::vector<ElementId>& EmptyNeighbors();
};

/// Collects the elements of the subtree rooted at `root`, breadth-first,
/// stopping below `max_depth` levels (max_depth = 0 returns just the
/// root). Used by the visualizer's depth capping.
std::vector<ElementId> SubtreeElements(const Schema& schema, ElementId root,
                                       size_t max_depth);

}  // namespace schemr

#endif  // SCHEMR_SCHEMA_ENTITY_GRAPH_H_
