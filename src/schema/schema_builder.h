// Fluent construction of relational schemas, used heavily by tests,
// examples and the corpus generator.
//
//   Schema s = SchemaBuilder("clinic")
//                  .Entity("patient")
//                  .Attribute("id", DataType::kInt64).PrimaryKey()
//                  .Attribute("height", DataType::kDouble)
//                  .Entity("case")
//                  .Attribute("patient_id", DataType::kInt64)
//                  .References("patient")
//                  .Build();

#ifndef SCHEMR_SCHEMA_SCHEMA_BUILDER_H_
#define SCHEMR_SCHEMA_SCHEMA_BUILDER_H_

#include <string>
#include <vector>

#include "schema/schema.h"

namespace schemr {

/// Incrementally builds a Schema. Entity() opens a new (root or nested)
/// entity; Attribute() appends to the most recent entity; References()
/// adds a foreign key from the most recent attribute to a named entity
/// (resolved at Build() time so forward references work).
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string name) : schema_(std::move(name)) {}

  SchemaBuilder& Description(std::string d) {
    schema_.set_description(std::move(d));
    return *this;
  }

  SchemaBuilder& Source(std::string s) {
    schema_.set_source(std::move(s));
    return *this;
  }

  /// Opens a new root entity; subsequent Attribute() calls attach to it.
  SchemaBuilder& Entity(std::string name);

  /// Opens a new entity nested inside the current entity.
  SchemaBuilder& NestedEntity(std::string name);

  /// Closes the current nested entity, returning to its parent entity.
  SchemaBuilder& End();

  /// Appends an attribute to the current entity.
  SchemaBuilder& Attribute(std::string name,
                           DataType type = DataType::kString);

  /// Marks the most recent attribute as primary key (implies NOT NULL).
  SchemaBuilder& PrimaryKey();

  /// Marks the most recent attribute NOT NULL.
  SchemaBuilder& NotNull();

  /// Sets documentation on the most recent element.
  SchemaBuilder& Doc(std::string documentation);

  /// Adds a foreign key from the most recent attribute to entity `name`
  /// (optionally `name.attribute`). Resolved when Build() is called.
  SchemaBuilder& References(std::string target);

  /// Finalizes, validates and returns the schema. Aborts (assert) on
  /// builder misuse in debug builds; use TryBuild for checked building.
  Schema Build();

  /// Finalizes and validates; returns InvalidArgument for unresolved
  /// references or misuse instead of asserting.
  Result<Schema> TryBuild();

 private:
  struct PendingFk {
    ElementId attribute;
    std::string target;  // "entity" or "entity.attribute"
  };

  Schema schema_;
  std::vector<ElementId> entity_stack_;
  ElementId last_attribute_ = kNoElement;
  std::vector<PendingFk> pending_fks_;
};

}  // namespace schemr

#endif  // SCHEMR_SCHEMA_SCHEMA_BUILDER_H_
