#include "schema/entity_graph.h"

#include <algorithm>
#include <deque>

namespace schemr {

EntityGraph::EntityGraph(const Schema& schema) {
  entities_ = schema.Entities();
  for (ElementId e : entities_) adjacency_[e];  // ensure vertex exists

  auto add_edge = [this](ElementId a, ElementId b) {
    if (a == b || a == kNoElement || b == kNoElement) return;
    auto& na = adjacency_[a];
    if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
    auto& nb = adjacency_[b];
    if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
  };

  // Foreign keys: entity containing the referencing attribute <-> target.
  for (const ForeignKey& fk : schema.foreign_keys()) {
    if (fk.attribute >= schema.size() || fk.target_entity >= schema.size()) {
      continue;  // Validate() reports these; the graph just skips them
    }
    ElementId source_entity = schema.EntityOf(fk.attribute);
    add_edge(source_entity, fk.target_entity);
  }
  // Nested entities: containment is the hierarchical analogue of an FK.
  for (ElementId e : entities_) {
    ElementId parent = schema.element(e).parent;
    if (parent != kNoElement) {
      ElementId parent_entity = schema.EntityOf(parent);
      add_edge(e, parent_entity);
    }
  }

  // Connected components by BFS.
  for (ElementId e : entities_) {
    if (component_.count(e)) continue;
    size_t comp = num_components_++;
    std::deque<ElementId> queue{e};
    component_[e] = comp;
    while (!queue.empty()) {
      ElementId cur = queue.front();
      queue.pop_front();
      for (ElementId next : adjacency_[cur]) {
        if (!component_.count(next)) {
          component_[next] = comp;
          queue.push_back(next);
        }
      }
    }
  }
}

const std::vector<ElementId>& EntityGraph::EmptyNeighbors() {
  static const std::vector<ElementId> empty;
  return empty;
}

const std::vector<ElementId>& EntityGraph::Neighbors(ElementId entity) const {
  auto it = adjacency_.find(entity);
  return it == adjacency_.end() ? EmptyNeighbors() : it->second;
}

bool EntityGraph::InSameNeighborhood(ElementId a, ElementId b) const {
  auto ia = component_.find(a);
  auto ib = component_.find(b);
  if (ia == component_.end() || ib == component_.end()) return false;
  return ia->second == ib->second;
}

size_t EntityGraph::Distance(ElementId a, ElementId b) const {
  if (a == b) return 0;
  if (!InSameNeighborhood(a, b)) return SIZE_MAX;
  std::unordered_map<ElementId, size_t> dist;
  std::deque<ElementId> queue{a};
  dist[a] = 0;
  while (!queue.empty()) {
    ElementId cur = queue.front();
    queue.pop_front();
    for (ElementId next : Neighbors(cur)) {
      if (dist.count(next)) continue;
      dist[next] = dist[cur] + 1;
      if (next == b) return dist[next];
      queue.push_back(next);
    }
  }
  return SIZE_MAX;  // unreachable given the component check
}

size_t EntityGraph::ComponentOf(ElementId entity) const {
  auto it = component_.find(entity);
  return it == component_.end() ? SIZE_MAX : it->second;
}

std::vector<ElementId> SubtreeElements(const Schema& schema, ElementId root,
                                       size_t max_depth) {
  std::vector<ElementId> out;
  struct Item {
    ElementId id;
    size_t depth;
  };
  std::deque<Item> queue{{root, 0}};
  while (!queue.empty()) {
    Item item = queue.front();
    queue.pop_front();
    out.push_back(item.id);
    if (item.depth >= max_depth) continue;
    for (ElementId child : schema.Children(item.id)) {
      queue.push_back({child, item.depth + 1});
    }
  }
  return out;
}

}  // namespace schemr
