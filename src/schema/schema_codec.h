// Compact binary (de)serialization of Schema values.
//
// Used by the schema repository to persist schemas in the storage engine
// and by the service layer to cache flattened documents. The format is
// versioned and self-describing enough for forward error reporting:
//
//   "SCM1" magic | varint64 id | lp name | lp description | lp source |
//   varint count | elements... | varint count | foreign keys...
//
// where lp = length-prefixed string and element parents / FK targets are
// stored as id+1 so that kNoElement encodes as 0.

#ifndef SCHEMR_SCHEMA_SCHEMA_CODEC_H_
#define SCHEMR_SCHEMA_SCHEMA_CODEC_H_

#include <string>
#include <string_view>

#include "schema/schema.h"
#include "util/status.h"

namespace schemr {

/// Serializes `schema` to a compact binary string.
std::string EncodeSchema(const Schema& schema);

/// Parses a schema previously produced by EncodeSchema. Returns Corruption
/// for malformed input (bad magic, truncation, out-of-range enums).
Result<Schema> DecodeSchema(std::string_view data);

}  // namespace schemr

#endif  // SCHEMR_SCHEMA_SCHEMA_CODEC_H_
