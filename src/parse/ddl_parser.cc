#include "parse/ddl_parser.h"

#include <unordered_map>
#include <vector>

#include "parse/sql_lexer.h"
#include "util/string_util.h"

namespace schemr {

DataType SqlTypeToDataType(std::string_view sql_type) {
  std::string t = ToLowerAscii(sql_type);
  static const std::unordered_map<std::string, DataType> kMap = {
      {"int", DataType::kInt32},       {"integer", DataType::kInt32},
      {"smallint", DataType::kInt32},  {"tinyint", DataType::kInt32},
      {"mediumint", DataType::kInt32}, {"serial", DataType::kInt64},
      {"bigserial", DataType::kInt64}, {"bigint", DataType::kInt64},
      {"varchar", DataType::kString},  {"char", DataType::kString},
      {"character", DataType::kString}, {"nvarchar", DataType::kString},
      {"nchar", DataType::kString},    {"text", DataType::kText},
      {"clob", DataType::kText},       {"longtext", DataType::kText},
      {"mediumtext", DataType::kText}, {"float", DataType::kFloat},
      {"real", DataType::kFloat},      {"double", DataType::kDouble},
      {"decimal", DataType::kDecimal}, {"numeric", DataType::kDecimal},
      {"number", DataType::kDecimal},  {"money", DataType::kDecimal},
      {"bool", DataType::kBool},       {"boolean", DataType::kBool},
      {"bit", DataType::kBool},        {"date", DataType::kDate},
      {"time", DataType::kTime},       {"timestamp", DataType::kDateTime},
      {"datetime", DataType::kDateTime}, {"blob", DataType::kBinary},
      {"binary", DataType::kBinary},   {"varbinary", DataType::kBinary},
      {"bytea", DataType::kBinary},    {"uuid", DataType::kString},
      {"json", DataType::kText},       {"xml", DataType::kText},
  };
  auto it = kMap.find(t);
  return it == kMap.end() ? DataType::kString : it->second;
}

namespace {

/// Unresolved foreign key captured during parsing, resolved once all
/// tables are known.
struct PendingFk {
  ElementId attribute;
  std::string table;
  std::string column;  // may be empty
  int line;
};

class DdlParser {
 public:
  DdlParser(std::vector<SqlToken> tokens, std::string schema_name)
      : tokens_(std::move(tokens)), schema_(std::move(schema_name)) {}

  Result<Schema> Parse() {
    while (!AtEnd()) {
      // Skip stray semicolons between statements.
      if (AcceptPunct(";")) continue;
      SCHEMR_RETURN_IF_ERROR(ParseCreateTable());
    }
    SCHEMR_RETURN_IF_ERROR(ResolveForeignKeys());
    SCHEMR_RETURN_IF_ERROR(schema_.Validate());
    schema_.set_source("ddl://inline");
    return std::move(schema_);
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == SqlTokenType::kEnd; }
  const SqlToken& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Peek().line));
  }

  /// True and consumes if the next token is the given (unquoted) keyword.
  bool AcceptKeyword(std::string_view kw) {
    const SqlToken& t = Peek();
    if (t.type == SqlTokenType::kIdentifier && !t.quoted &&
        EqualsIgnoreCase(t.text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const SqlToken& t = Peek(ahead);
    return t.type == SqlTokenType::kIdentifier && !t.quoted &&
           EqualsIgnoreCase(t.text, kw);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected '" + std::string(kw) + "'");
    }
    return Status::OK();
  }

  bool AcceptPunct(std::string_view p) {
    const SqlToken& t = Peek();
    if (t.type == SqlTokenType::kPunct && t.text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view p) {
    if (!AcceptPunct(p)) return Error("expected '" + std::string(p) + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    const SqlToken& t = Peek();
    if (t.type != SqlTokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    ++pos_;
    return t.text;
  }

  /// Parses a possibly schema-qualified name (a.b.c), returning the last
  /// component (Schemr schemas are flat namespaces).
  Result<std::string> ParseQualifiedName(const char* what) {
    SCHEMR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
    while (AcceptPunct(".")) {
      SCHEMR_ASSIGN_OR_RETURN(name, ExpectIdentifier(what));
    }
    return name;
  }

  /// Skips a balanced parenthesized expression; opening '(' already
  /// consumed.
  Status SkipBalancedParens() {
    int depth = 1;
    while (depth > 0) {
      if (AtEnd()) return Error("unbalanced parentheses");
      const SqlToken& t = Advance();
      if (t.type == SqlTokenType::kPunct) {
        if (t.text == "(") ++depth;
        if (t.text == ")") --depth;
      }
    }
    return Status::OK();
  }

  Status ParseCreateTable() {
    SCHEMR_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    // Accept and ignore TEMPORARY/TEMP.
    (void)(AcceptKeyword("TEMPORARY") || AcceptKeyword("TEMP"));
    SCHEMR_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (AcceptKeyword("IF")) {
      SCHEMR_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      SCHEMR_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    }
    SCHEMR_ASSIGN_OR_RETURN(std::string table_name,
                            ParseQualifiedName("table name"));
    ElementId entity = schema_.AddEntity(table_name);
    table_ids_[ToLowerAscii(table_name)] = entity;

    SCHEMR_RETURN_IF_ERROR(ExpectPunct("("));
    for (;;) {
      SCHEMR_RETURN_IF_ERROR(ParseTableItem(entity));
      if (AcceptPunct(",")) continue;
      SCHEMR_RETURN_IF_ERROR(ExpectPunct(")"));
      break;
    }
    // Table options (ENGINE=InnoDB, COMMENT '...', etc.): skip until ';'
    // or the next CREATE.
    while (!AtEnd() && !PeekKeyword("CREATE") &&
           !(Peek().type == SqlTokenType::kPunct && Peek().text == ";")) {
      if (PeekKeyword("COMMENT")) {
        ++pos_;
        AcceptPunct("=");
        if (Peek().type == SqlTokenType::kString) {
          schema_.mutable_element(entity)->documentation = Peek().text;
          ++pos_;
          continue;
        }
      }
      ++pos_;
    }
    AcceptPunct(";");
    return Status::OK();
  }

  bool PeekTableConstraint() const {
    return PeekKeyword("PRIMARY") || PeekKeyword("FOREIGN") ||
           PeekKeyword("UNIQUE") || PeekKeyword("CONSTRAINT") ||
           PeekKeyword("CHECK") || PeekKeyword("KEY") ||
           PeekKeyword("INDEX") || PeekKeyword("FULLTEXT");
  }

  Status ParseTableItem(ElementId entity) {
    if (PeekTableConstraint()) return ParseTableConstraint(entity);
    return ParseColumnDef(entity);
  }

  Status ParseColumnDef(ElementId entity) {
    SCHEMR_ASSIGN_OR_RETURN(std::string col_name,
                            ExpectIdentifier("column name"));
    SCHEMR_ASSIGN_OR_RETURN(std::string type_name,
                            ExpectIdentifier("column type"));
    // Compound type names: DOUBLE PRECISION, CHARACTER VARYING, etc.
    if (EqualsIgnoreCase(type_name, "double") && AcceptKeyword("PRECISION")) {
      // type stays "double"
    } else if (EqualsIgnoreCase(type_name, "character") &&
               AcceptKeyword("VARYING")) {
      type_name = "varchar";
    }
    DataType type = SqlTypeToDataType(type_name);
    // Type arguments: VARCHAR(255), DECIMAL(10,2).
    if (AcceptPunct("(")) {
      SCHEMR_RETURN_IF_ERROR(SkipBalancedParens());
    }
    // MySQL UNSIGNED/ZEROFILL.
    (void)AcceptKeyword("UNSIGNED");
    (void)AcceptKeyword("ZEROFILL");

    ElementId attr = schema_.AddAttribute(col_name, entity, type);

    // Column constraints in any order.
    for (;;) {
      if (AcceptKeyword("NOT")) {
        SCHEMR_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        schema_.mutable_element(attr)->nullable = false;
      } else if (AcceptKeyword("NULL")) {
        schema_.mutable_element(attr)->nullable = true;
      } else if (AcceptKeyword("PRIMARY")) {
        SCHEMR_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        Element* e = schema_.mutable_element(attr);
        e->primary_key = true;
        e->nullable = false;
      } else if (AcceptKeyword("UNIQUE")) {
        // no model impact
      } else if (AcceptKeyword("AUTO_INCREMENT") ||
                 AcceptKeyword("AUTOINCREMENT")) {
        // no model impact
      } else if (AcceptKeyword("DEFAULT")) {
        SCHEMR_RETURN_IF_ERROR(SkipDefaultValue());
      } else if (AcceptKeyword("COMMENT")) {
        AcceptPunct("=");
        if (Peek().type != SqlTokenType::kString) {
          return Error("expected string after COMMENT");
        }
        schema_.mutable_element(attr)->documentation = Advance().text;
      } else if (AcceptKeyword("REFERENCES")) {
        SCHEMR_RETURN_IF_ERROR(ParseReferencesClause(attr));
      } else if (AcceptKeyword("CHECK")) {
        SCHEMR_RETURN_IF_ERROR(ExpectPunct("("));
        SCHEMR_RETURN_IF_ERROR(SkipBalancedParens());
      } else if (AcceptKeyword("CONSTRAINT")) {
        SCHEMR_RETURN_IF_ERROR(ExpectIdentifier("constraint name").status());
      } else if (AcceptKeyword("COLLATE")) {
        SCHEMR_RETURN_IF_ERROR(ExpectIdentifier("collation").status());
      } else {
        break;
      }
    }
    return Status::OK();
  }

  /// Skips a DEFAULT value: literal, NULL, ident, or ident(...) call.
  Status SkipDefaultValue() {
    // Optional sign.
    if (Peek().type == SqlTokenType::kPunct &&
        (Peek().text == "-" || Peek().text == "+")) {
      ++pos_;
    }
    const SqlToken& t = Peek();
    if (t.type == SqlTokenType::kString || t.type == SqlTokenType::kNumber) {
      ++pos_;
      return Status::OK();
    }
    if (t.type == SqlTokenType::kIdentifier) {
      ++pos_;
      if (AcceptPunct("(")) SCHEMR_RETURN_IF_ERROR(SkipBalancedParens());
      return Status::OK();
    }
    if (AcceptPunct("(")) return SkipBalancedParens();
    return Error("expected default value");
  }

  Status ParseReferencesClause(ElementId attr) {
    SCHEMR_ASSIGN_OR_RETURN(std::string table,
                            ParseQualifiedName("referenced table"));
    std::string column;
    if (AcceptPunct("(")) {
      SCHEMR_ASSIGN_OR_RETURN(column, ExpectIdentifier("referenced column"));
      SCHEMR_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    pending_fks_.push_back(
        PendingFk{attr, std::move(table), std::move(column), Peek().line});
    // ON DELETE/UPDATE actions.
    while (AcceptKeyword("ON")) {
      if (!AcceptKeyword("DELETE") && !AcceptKeyword("UPDATE")) {
        return Error("expected DELETE or UPDATE after ON");
      }
      if (AcceptKeyword("CASCADE") || AcceptKeyword("RESTRICT")) continue;
      if (AcceptKeyword("SET")) {
        if (!AcceptKeyword("NULL") && !AcceptKeyword("DEFAULT")) {
          return Error("expected NULL or DEFAULT after SET");
        }
        continue;
      }
      if (AcceptKeyword("NO")) {
        SCHEMR_RETURN_IF_ERROR(ExpectKeyword("ACTION"));
        continue;
      }
      return Error("unknown referential action");
    }
    return Status::OK();
  }

  Status ParseTableConstraint(ElementId entity) {
    if (AcceptKeyword("CONSTRAINT")) {
      SCHEMR_RETURN_IF_ERROR(ExpectIdentifier("constraint name").status());
    }
    if (AcceptKeyword("PRIMARY")) {
      SCHEMR_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      SCHEMR_RETURN_IF_ERROR(ExpectPunct("("));
      for (;;) {
        SCHEMR_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("primary key column"));
        if (auto id = FindColumn(entity, col)) {
          Element* e = schema_.mutable_element(*id);
          e->primary_key = true;
          e->nullable = false;
        }
        // Optional ASC/DESC and key length "(10)".
        (void)(AcceptKeyword("ASC") || AcceptKeyword("DESC"));
        if (AcceptPunct("(")) SCHEMR_RETURN_IF_ERROR(SkipBalancedParens());
        if (AcceptPunct(",")) continue;
        SCHEMR_RETURN_IF_ERROR(ExpectPunct(")"));
        break;
      }
      return Status::OK();
    }
    if (AcceptKeyword("FOREIGN")) {
      SCHEMR_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      // Optional index name before the column list.
      if (Peek().type == SqlTokenType::kIdentifier) ++pos_;
      SCHEMR_RETURN_IF_ERROR(ExpectPunct("("));
      std::vector<std::string> columns;
      for (;;) {
        SCHEMR_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("foreign key column"));
        columns.push_back(std::move(col));
        if (AcceptPunct(",")) continue;
        SCHEMR_RETURN_IF_ERROR(ExpectPunct(")"));
        break;
      }
      SCHEMR_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
      SCHEMR_ASSIGN_OR_RETURN(std::string table,
                              ParseQualifiedName("referenced table"));
      std::vector<std::string> ref_columns;
      if (AcceptPunct("(")) {
        for (;;) {
          SCHEMR_ASSIGN_OR_RETURN(std::string col,
                                  ExpectIdentifier("referenced column"));
          ref_columns.push_back(std::move(col));
          if (AcceptPunct(",")) continue;
          SCHEMR_RETURN_IF_ERROR(ExpectPunct(")"));
          break;
        }
      }
      for (size_t i = 0; i < columns.size(); ++i) {
        auto attr = FindColumn(entity, columns[i]);
        if (!attr) {
          return Error("foreign key names unknown column '" + columns[i] +
                       "'");
        }
        pending_fks_.push_back(PendingFk{
            *attr, table, i < ref_columns.size() ? ref_columns[i] : "",
            Peek().line});
      }
      while (AcceptKeyword("ON")) {
        if (!AcceptKeyword("DELETE") && !AcceptKeyword("UPDATE")) {
          return Error("expected DELETE or UPDATE after ON");
        }
        if (AcceptKeyword("CASCADE") || AcceptKeyword("RESTRICT")) continue;
        if (AcceptKeyword("SET")) {
          if (!AcceptKeyword("NULL") && !AcceptKeyword("DEFAULT")) {
            return Error("expected NULL or DEFAULT after SET");
          }
          continue;
        }
        if (AcceptKeyword("NO")) {
          SCHEMR_RETURN_IF_ERROR(ExpectKeyword("ACTION"));
          continue;
        }
        return Error("unknown referential action");
      }
      return Status::OK();
    }
    if (AcceptKeyword("UNIQUE") || AcceptKeyword("CHECK") ||
        AcceptKeyword("KEY") || AcceptKeyword("INDEX") ||
        AcceptKeyword("FULLTEXT")) {
      // UNIQUE [KEY] [name] (cols) / CHECK (expr) / KEY name (cols) / ...
      (void)AcceptKeyword("KEY");
      if (Peek().type == SqlTokenType::kIdentifier) ++pos_;
      SCHEMR_RETURN_IF_ERROR(ExpectPunct("("));
      return SkipBalancedParens();
    }
    return Error("unrecognized table constraint");
  }

  std::optional<ElementId> FindColumn(ElementId entity,
                                      std::string_view name) const {
    for (ElementId child : schema_.Children(entity)) {
      if (schema_.element(child).kind == ElementKind::kAttribute &&
          EqualsIgnoreCase(schema_.element(child).name, name)) {
        return child;
      }
    }
    return std::nullopt;
  }

  Status ResolveForeignKeys() {
    for (const PendingFk& fk : pending_fks_) {
      auto it = table_ids_.find(ToLowerAscii(fk.table));
      if (it == table_ids_.end()) {
        // Dangling references are common in fragments (the referenced table
        // lives outside the uploaded snippet); keep the attribute but drop
        // the edge rather than failing the whole parse.
        continue;
      }
      ElementId target_attr = kNoElement;
      if (!fk.column.empty()) {
        if (auto id = FindColumn(it->second, fk.column)) target_attr = *id;
      }
      schema_.AddForeignKey(fk.attribute, it->second, target_attr);
    }
    return Status::OK();
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
  Schema schema_;
  std::unordered_map<std::string, ElementId> table_ids_;
  std::vector<PendingFk> pending_fks_;
};

}  // namespace

Result<Schema> ParseDdl(std::string_view ddl, std::string schema_name) {
  SCHEMR_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(ddl));
  DdlParser parser(std::move(tokens), std::move(schema_name));
  return parser.Parse();
}

}  // namespace schemr
