// XSD (XML Schema Definition) importer.
//
// The paper's second schema-fragment upload format. The importer maps the
// structural core of XSD onto the Schemr model:
//
//   xs:element with complex content          → entity
//   xs:element with simple type / xs:attribute → attribute
//   xs:complexType (named, top-level)        → resolved at reference sites
//   xs:sequence / xs:all / xs:choice         → transparent containers
//   xs:annotation/xs:documentation           → Element::documentation
//   built-in simple types (xs:string, ...)   → DataType
//
// Nested entities keep their nesting (Schema supports entity-in-entity),
// which EntityGraph then treats as the hierarchical analogue of a foreign
// key. Unresolvable type references degrade to kString attributes -- web
// XSDs are frequently incomplete fragments.

#ifndef SCHEMR_PARSE_XSD_IMPORTER_H_
#define SCHEMR_PARSE_XSD_IMPORTER_H_

#include <string>
#include <string_view>

#include "schema/schema.h"
#include "util/status.h"

namespace schemr {

/// Maps an XSD built-in type local name ("string", "dateTime", ...,
/// prefix already stripped) to a DataType; unknown names → kString.
DataType XsdTypeToDataType(std::string_view xsd_type);

/// Parses an XSD document into a Schema named `schema_name`.
Result<Schema> ParseXsd(std::string_view xsd, std::string schema_name);

}  // namespace schemr

#endif  // SCHEMR_PARSE_XSD_IMPORTER_H_
