// Lexer for the SQL DDL subset that Schemr accepts as schema input
// (uploaded schema fragments and repository imports).
//
// Handles: bare and quoted identifiers ("x", `x`, [x]), string literals
// with '' escaping, integer/decimal numbers, punctuation, line comments
// (--) and block comments (/* */). Keywords are not distinguished at the
// lexer level; the parser matches identifier text case-insensitively.

#ifndef SCHEMR_PARSE_SQL_LEXER_H_
#define SCHEMR_PARSE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace schemr {

enum class SqlTokenType {
  kIdentifier,  ///< bare or quoted identifier (quotes stripped)
  kString,      ///< 'literal' (quotes stripped, '' unescaped)
  kNumber,      ///< integer or decimal literal
  kPunct,       ///< single punctuation char: ( ) , ; . = etc.
  kEnd,         ///< end of input
};

struct SqlToken {
  SqlTokenType type = SqlTokenType::kEnd;
  std::string text;
  /// True if the identifier was quoted (quoted identifiers never match
  /// keywords).
  bool quoted = false;
  /// 1-based line of the token start, for error messages.
  int line = 1;
};

/// Tokenizes `input` completely. Returns ParseError with line info for
/// unterminated strings/comments or illegal characters. The final token is
/// always kEnd.
Result<std::vector<SqlToken>> LexSql(std::string_view input);

}  // namespace schemr

#endif  // SCHEMR_PARSE_SQL_LEXER_H_
