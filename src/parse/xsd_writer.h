// XSD rendering: the inverse of the XSD importer.
//
// Rounds out the schema import/export pair the paper's Applications
// section calls for ("integrating Schemr with schema import and export
// functionality gives users motivation to build metadata repositories").
// Entities become xs:element/xs:complexType/xs:sequence trees (nesting
// preserved); attributes become simple-typed xs:elements.

#ifndef SCHEMR_PARSE_XSD_WRITER_H_
#define SCHEMR_PARSE_XSD_WRITER_H_

#include <string>

#include "schema/schema.h"

namespace schemr {

/// Maps a DataType to the XSD built-in type name (without prefix).
const char* DataTypeToXsdType(DataType type);

/// Renders `schema` as an XSD document. Foreign keys do not round-trip
/// (XSD has no FK notion); everything else does.
std::string WriteXsd(const Schema& schema);

}  // namespace schemr

#endif  // SCHEMR_PARSE_XSD_WRITER_H_
