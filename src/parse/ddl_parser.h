// Parser for SQL DDL (CREATE TABLE ...) into Schemr schemas.
//
// This is the importer behind "a partially designed schema can be specified
// by uploading a DDL" (paper Sec. 1). The accepted grammar covers the
// common core of SQL-92 DDL plus widespread dialect extras:
//
//   script        := { statement } EOF
//   statement     := create_table ';'?
//   create_table  := CREATE TABLE [IF NOT EXISTS] name '(' item {',' item} ')'
//                    [table_option...]
//   item          := column_def | table_constraint
//   column_def    := name type [type_args] { column_constraint }
//   column_constraint := NOT NULL | NULL | PRIMARY KEY | UNIQUE
//                      | DEFAULT literal | AUTO_INCREMENT | COMMENT 'text'
//                      | REFERENCES name ['(' name ')'] [fk_action...]
//   table_constraint  := [CONSTRAINT name] (
//                        PRIMARY KEY '(' names ')' | UNIQUE '(' names ')'
//                      | FOREIGN KEY '(' name ')' REFERENCES name
//                        ['(' name ')'] [fk_action...]
//                      | CHECK '(' balanced ')' | KEY/INDEX name? '(' ... ')')
//
// All CREATE TABLE statements in one script become entities of a single
// Schema; foreign keys may reference tables defined later in the script.
// Unknown SQL types map to kString rather than failing, because web-scraped
// DDL is messy and recall matters more than type fidelity for search.

#ifndef SCHEMR_PARSE_DDL_PARSER_H_
#define SCHEMR_PARSE_DDL_PARSER_H_

#include <string>
#include <string_view>

#include "schema/schema.h"
#include "util/status.h"

namespace schemr {

/// Maps an SQL type name (case-insensitive) to a Schemr DataType.
/// Unrecognized names map to kString.
DataType SqlTypeToDataType(std::string_view sql_type);

/// Parses a DDL script into a Schema named `schema_name`. Returns
/// ParseError with a line number on malformed input; the parsed schema is
/// validated before being returned.
Result<Schema> ParseDdl(std::string_view ddl, std::string schema_name);

}  // namespace schemr

#endif  // SCHEMR_PARSE_DDL_PARSER_H_
