#include "parse/xsd_writer.h"

#include "util/xml_writer.h"

namespace schemr {

const char* DataTypeToXsdType(DataType type) {
  switch (type) {
    case DataType::kNone:
      return "string";
    case DataType::kString:
      return "string";
    case DataType::kText:
      return "string";
    case DataType::kInt32:
      return "int";
    case DataType::kInt64:
      return "long";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kBool:
      return "boolean";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
    case DataType::kDateTime:
      return "dateTime";
    case DataType::kBinary:
      return "base64Binary";
  }
  return "string";
}

namespace {

void WriteDocumentation(XmlWriter* xml, const Element& element) {
  if (element.documentation.empty()) return;
  xml->Open("xs:annotation");
  xml->SimpleElement("xs:documentation", element.documentation);
  xml->Close();
}

void WriteElement(XmlWriter* xml, const Schema& schema, ElementId id) {
  const Element& element = schema.element(id);
  if (element.kind == ElementKind::kAttribute) {
    xml->Open("xs:element")
        .Attribute("name", element.name)
        .Attribute("type", std::string("xs:") + DataTypeToXsdType(element.type));
    // Always explicit so nullability round-trips through the importer
    // (whose default for unmarked elements is nullable).
    xml->Attribute("minOccurs", element.nullable ? "0" : "1");
    WriteDocumentation(xml, element);
    xml->Close();
    return;
  }
  // Entity: element with inline complex type wrapping a sequence.
  xml->Open("xs:element").Attribute("name", element.name);
  WriteDocumentation(xml, element);
  xml->Open("xs:complexType");
  xml->Open("xs:sequence");
  for (ElementId child : schema.Children(id)) {
    WriteElement(xml, schema, child);
  }
  xml->Close();  // sequence
  xml->Close();  // complexType
  xml->Close();  // element
}

}  // namespace

std::string WriteXsd(const Schema& schema) {
  XmlWriter xml;
  xml.Open("xs:schema")
      .Attribute("xmlns:xs", "http://www.w3.org/2001/XMLSchema");
  for (ElementId root : schema.Roots()) {
    WriteElement(&xml, schema, root);
  }
  return xml.Finish();
}

}  // namespace schemr
