#include "parse/ddl_writer.h"

#include <unordered_map>

namespace schemr {

const char* DataTypeToSqlType(DataType type) {
  switch (type) {
    case DataType::kNone:
      return "VARCHAR";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kText:
      return "TEXT";
    case DataType::kInt32:
      return "INTEGER";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kFloat:
      return "REAL";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kDecimal:
      return "DECIMAL";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kDate:
      return "DATE";
    case DataType::kTime:
      return "TIME";
    case DataType::kDateTime:
      return "TIMESTAMP";
    case DataType::kBinary:
      return "BLOB";
  }
  return "VARCHAR";
}

namespace {

/// Quotes identifiers that are not bare SQL names (spaces, dashes, dots,
/// leading digits, embedded quotes).
std::string QuoteIfNeeded(const std::string& name) {
  bool bare = !name.empty() && ((name[0] >= 'a' && name[0] <= 'z') ||
                                (name[0] >= 'A' && name[0] <= 'Z') ||
                                name[0] == '_');
  for (char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '$')) {
      bare = false;
      break;
    }
  }
  if (bare) return name;
  std::string quoted = "\"";
  for (char c : name) {
    if (c == '"') quoted += '"';  // SQL doubles embedded quotes
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string WriteDdl(const Schema& schema) {
  // Foreign keys by source attribute, for inline REFERENCES clauses.
  std::unordered_map<ElementId, const ForeignKey*> fk_by_attr;
  for (const ForeignKey& fk : schema.foreign_keys()) {
    fk_by_attr[fk.attribute] = &fk;
  }

  std::string out;
  for (ElementId entity : schema.Entities()) {
    out += "CREATE TABLE " + QuoteIfNeeded(schema.element(entity).name) +
           " (\n";
    bool first = true;
    for (ElementId child : schema.Children(entity)) {
      const Element& e = schema.element(child);
      if (e.kind != ElementKind::kAttribute) continue;
      if (!first) out += ",\n";
      first = false;
      out += "  " + QuoteIfNeeded(e.name) + " " + DataTypeToSqlType(e.type);
      if (e.primary_key) {
        out += " PRIMARY KEY";
      } else if (!e.nullable) {
        out += " NOT NULL";
      }
      auto fk = fk_by_attr.find(child);
      if (fk != fk_by_attr.end()) {
        out += " REFERENCES " +
               QuoteIfNeeded(schema.element(fk->second->target_entity).name);
        if (fk->second->target_attribute != kNoElement) {
          out += " (" +
                 QuoteIfNeeded(
                     schema.element(fk->second->target_attribute).name) +
                 ")";
        }
      }
    }
    out += "\n);\n\n";
  }
  return out;
}

}  // namespace schemr
