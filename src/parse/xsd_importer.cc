#include "parse/xsd_importer.h"

#include <unordered_map>

#include "parse/xml_parser.h"
#include "util/string_util.h"

namespace schemr {

DataType XsdTypeToDataType(std::string_view xsd_type) {
  static const std::unordered_map<std::string_view, DataType> kMap = {
      {"string", DataType::kString},
      {"normalizedString", DataType::kString},
      {"token", DataType::kString},
      {"anyURI", DataType::kString},
      {"ID", DataType::kString},
      {"IDREF", DataType::kString},
      {"NMTOKEN", DataType::kString},
      {"int", DataType::kInt32},
      {"integer", DataType::kInt64},
      {"long", DataType::kInt64},
      {"short", DataType::kInt32},
      {"byte", DataType::kInt32},
      {"nonNegativeInteger", DataType::kInt64},
      {"positiveInteger", DataType::kInt64},
      {"unsignedInt", DataType::kInt64},
      {"unsignedLong", DataType::kInt64},
      {"float", DataType::kFloat},
      {"double", DataType::kDouble},
      {"decimal", DataType::kDecimal},
      {"boolean", DataType::kBool},
      {"date", DataType::kDate},
      {"time", DataType::kTime},
      {"dateTime", DataType::kDateTime},
      {"gYear", DataType::kDate},
      {"gYearMonth", DataType::kDate},
      {"duration", DataType::kString},
      {"base64Binary", DataType::kBinary},
      {"hexBinary", DataType::kBinary},
  };
  auto it = kMap.find(xsd_type);
  return it == kMap.end() ? DataType::kString : it->second;
}

namespace {

std::string_view StripPrefix(std::string_view qname) {
  size_t colon = qname.find(':');
  return colon == std::string_view::npos ? qname : qname.substr(colon + 1);
}

class XsdImporter {
 public:
  explicit XsdImporter(std::string schema_name)
      : schema_(std::move(schema_name)) {}

  Result<Schema> Import(const XmlNode& root) {
    if (root.LocalName() != "schema") {
      return Status::ParseError("XSD root element must be <schema>, got <" +
                                root.name + ">");
    }
    // Index named top-level complex types for reference resolution.
    for (const XmlNode* ct : root.ChildrenNamed("complexType")) {
      if (const std::string* name = ct->FindAttribute("name")) {
        named_complex_types_[*name] = ct;
      }
    }
    for (const XmlNode* st : root.ChildrenNamed("simpleType")) {
      if (const std::string* name = st->FindAttribute("name")) {
        named_simple_types_[*name] = st;
      }
    }
    // Global element declarations become root entities/attributes.
    for (const XmlNode* el : root.ChildrenNamed("element")) {
      SCHEMR_RETURN_IF_ERROR(ImportElement(*el, kNoElement, 0));
    }
    if (schema_.empty()) {
      return Status::ParseError("XSD contains no element declarations");
    }
    schema_.set_source("xsd://inline");
    SCHEMR_RETURN_IF_ERROR(schema_.Validate());
    return std::move(schema_);
  }

 private:
  static constexpr int kMaxDepth = 64;

  static std::string Documentation(const XmlNode& node) {
    if (const XmlNode* ann = node.FirstChild("annotation")) {
      if (const XmlNode* doc = ann->FirstChild("documentation")) {
        return std::string(Trim(doc->text));
      }
    }
    return "";
  }

  /// Imports one xs:element declaration under `parent`.
  Status ImportElement(const XmlNode& el, ElementId parent, int depth) {
    if (depth > kMaxDepth) {
      return Status::ParseError("XSD nesting too deep (recursive type?)");
    }
    // Reference to a global element: <xs:element ref="foo"/>.
    if (const std::string* ref = el.FindAttribute("ref")) {
      // Model as a string attribute named after the target; full expansion
      // of global refs can recurse unboundedly on hostile input.
      ElementId id = schema_.AddAttribute(std::string(StripPrefix(*ref)),
                                          parent, DataType::kString);
      schema_.mutable_element(id)->documentation = Documentation(el);
      return Status::OK();
    }
    const std::string* name = el.FindAttribute("name");
    if (name == nullptr || name->empty()) {
      return Status::ParseError("xs:element missing name");
    }

    const XmlNode* inline_complex = el.FirstChild("complexType");
    const std::string* type_attr = el.FindAttribute("type");

    // Resolve a named complex type if the type attribute points at one.
    const XmlNode* complex = inline_complex;
    if (complex == nullptr && type_attr != nullptr) {
      auto it = named_complex_types_.find(std::string(StripPrefix(*type_attr)));
      if (it != named_complex_types_.end()) complex = it->second;
    }

    if (complex != nullptr) {
      ElementId entity = schema_.AddEntity(*name, parent);
      schema_.mutable_element(entity)->documentation = Documentation(el);
      return ImportComplexType(*complex, entity, depth + 1);
    }

    // Simple-typed element → attribute.
    DataType type = DataType::kString;
    if (type_attr != nullptr) {
      type = ResolveSimpleType(*type_attr);
    } else if (const XmlNode* st = el.FirstChild("simpleType")) {
      type = ResolveInlineSimpleType(*st);
    }
    ElementId attr = schema_.AddAttribute(*name, parent, type);
    Element* e = schema_.mutable_element(attr);
    e->documentation = Documentation(el);
    // XSD default minOccurs is 1: particles are required unless marked.
    const std::string* min_occurs = el.FindAttribute("minOccurs");
    e->nullable = (min_occurs != nullptr && *min_occurs == "0");
    return Status::OK();
  }

  Status ImportComplexType(const XmlNode& ct, ElementId entity, int depth) {
    if (depth > kMaxDepth) {
      return Status::ParseError("XSD nesting too deep (recursive type?)");
    }
    for (const auto& child : ct.children) {
      std::string_view local = child->LocalName();
      if (local == "sequence" || local == "all" || local == "choice") {
        SCHEMR_RETURN_IF_ERROR(ImportParticle(*child, entity, depth + 1));
      } else if (local == "attribute") {
        SCHEMR_RETURN_IF_ERROR(ImportXsdAttribute(*child, entity));
      } else if (local == "simpleContent" || local == "complexContent") {
        // extension/restriction wrapper: descend into it.
        for (const auto& inner : child->children) {
          std::string_view inner_local = inner->LocalName();
          if (inner_local == "extension" || inner_local == "restriction") {
            SCHEMR_RETURN_IF_ERROR(
                ImportComplexType(*inner, entity, depth + 1));
          }
        }
      }
      // annotation and others: ignored.
    }
    return Status::OK();
  }

  Status ImportParticle(const XmlNode& particle, ElementId entity, int depth) {
    if (depth > kMaxDepth) {
      return Status::ParseError("XSD nesting too deep (recursive type?)");
    }
    for (const auto& child : particle.children) {
      std::string_view local = child->LocalName();
      if (local == "element") {
        SCHEMR_RETURN_IF_ERROR(ImportElement(*child, entity, depth + 1));
      } else if (local == "sequence" || local == "all" || local == "choice") {
        SCHEMR_RETURN_IF_ERROR(ImportParticle(*child, entity, depth + 1));
      } else if (local == "any") {
        // wildcard content: no model impact
      }
    }
    return Status::OK();
  }

  Status ImportXsdAttribute(const XmlNode& attr_node, ElementId entity) {
    const std::string* name = attr_node.FindAttribute("name");
    if (name == nullptr || name->empty()) {
      // ref= attributes: model by target name.
      if (const std::string* ref = attr_node.FindAttribute("ref")) {
        schema_.AddAttribute(std::string(StripPrefix(*ref)), entity,
                             DataType::kString);
        return Status::OK();
      }
      return Status::ParseError("xs:attribute missing name");
    }
    DataType type = DataType::kString;
    if (const std::string* type_attr = attr_node.FindAttribute("type")) {
      type = ResolveSimpleType(*type_attr);
    }
    ElementId id = schema_.AddAttribute(*name, entity, type);
    Element* e = schema_.mutable_element(id);
    e->documentation = Documentation(attr_node);
    if (const std::string* use = attr_node.FindAttribute("use")) {
      e->nullable = (*use != "required");
    }
    return Status::OK();
  }

  DataType ResolveSimpleType(std::string_view qname) {
    std::string local(StripPrefix(qname));
    auto it = named_simple_types_.find(local);
    if (it != named_simple_types_.end()) {
      return ResolveInlineSimpleType(*it->second);
    }
    return XsdTypeToDataType(local);
  }

  DataType ResolveInlineSimpleType(const XmlNode& st) {
    if (const XmlNode* restriction = st.FirstChild("restriction")) {
      if (const std::string* base = restriction->FindAttribute("base")) {
        return XsdTypeToDataType(StripPrefix(*base));
      }
    }
    if (const XmlNode* list = st.FirstChild("list")) {
      (void)list;
      return DataType::kText;
    }
    return DataType::kString;
  }

  Schema schema_;
  std::unordered_map<std::string, const XmlNode*> named_complex_types_;
  std::unordered_map<std::string, const XmlNode*> named_simple_types_;
};

}  // namespace

Result<Schema> ParseXsd(std::string_view xsd, std::string schema_name) {
  SCHEMR_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xsd));
  XsdImporter importer(std::move(schema_name));
  return importer.Import(*doc.root);
}

}  // namespace schemr
