#include "parse/sql_lexer.h"

namespace schemr {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9') || c == '$';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

Result<std::vector<SqlToken>> LexSql(std::string_view input) {
  std::vector<SqlToken> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = input.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line));
  };

  while (i < n) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t start_line = line;
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (input[i] == '\n') ++line;
        if (input[i] == '*' && input[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        line = static_cast<int>(start_line);
        return error("unterminated block comment");
      }
      continue;
    }
    // String literal.
    if (c == '\'') {
      SqlToken tok;
      tok.type = SqlTokenType::kString;
      tok.line = line;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            tok.text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        if (input[i] == '\n') ++line;
        tok.text += input[i++];
      }
      if (!closed) return error("unterminated string literal");
      tokens.push_back(std::move(tok));
      continue;
    }
    // Quoted identifiers: "x", `x`, [x].
    if (c == '"' || c == '`' || c == '[') {
      char close = c == '[' ? ']' : c;
      SqlToken tok;
      tok.type = SqlTokenType::kIdentifier;
      tok.quoted = true;
      tok.line = line;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == close) {
          ++i;
          closed = true;
          break;
        }
        if (input[i] == '\n') ++line;
        tok.text += input[i++];
      }
      if (!closed) return error("unterminated quoted identifier");
      tokens.push_back(std::move(tok));
      continue;
    }
    // Number.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(input[i + 1]))) {
      SqlToken tok;
      tok.type = SqlTokenType::kNumber;
      tok.line = line;
      bool seen_dot = false;
      while (i < n && (IsDigit(input[i]) || (input[i] == '.' && !seen_dot))) {
        if (input[i] == '.') seen_dot = true;
        tok.text += input[i++];
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      SqlToken tok;
      tok.type = SqlTokenType::kIdentifier;
      tok.line = line;
      while (i < n && IsIdentChar(input[i])) tok.text += input[i++];
      tokens.push_back(std::move(tok));
      continue;
    }
    // Punctuation we understand.
    static constexpr std::string_view kPunct = "(),;.=<>+-*/";
    if (kPunct.find(c) != std::string_view::npos) {
      SqlToken tok;
      tok.type = SqlTokenType::kPunct;
      tok.text = std::string(1, c);
      tok.line = line;
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }

  SqlToken end;
  end.type = SqlTokenType::kEnd;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace schemr
