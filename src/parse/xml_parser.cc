#include "parse/xml_parser.h"

namespace schemr {

const std::string* XmlNode::FindAttribute(std::string_view attr_name) const {
  for (const auto& [key, value] : attributes) {
    if (key == attr_name) return &value;
  }
  return nullptr;
}

std::string_view XmlNode::LocalName() const {
  size_t colon = name.find(':');
  return colon == std::string::npos
             ? std::string_view(name)
             : std::string_view(name).substr(colon + 1);
}

const XmlNode* XmlNode::FirstChild(std::string_view local_name) const {
  for (const auto& child : children) {
    if (child->LocalName() == local_name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::ChildrenNamed(
    std::string_view local_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children) {
    if (child->LocalName() == local_name) out.push_back(child.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    if (AtEnd() || Peek() != '<') return Error("expected root element");
    XmlDocument doc;
    auto root = std::make_unique<XmlNode>();
    SCHEMR_RETURN_IF_ERROR(ParseElement(root.get()));
    doc.root = std::move(root);
    SkipMiscAfterRoot();
    if (!AtEnd()) return Error("content after root element");
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(std::string_view s) {
    if (input_.substr(pos_).starts_with(s)) {
      for (size_t i = 0; i < s.size(); ++i) Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_));
  }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      Advance();
    }
  }

  bool SkipComment() {
    if (!Consume("<!--")) return false;
    while (!AtEnd() && !Consume("-->")) Advance();
    return true;
  }

  bool SkipProcessingInstruction() {
    if (!Consume("<?")) return false;
    while (!AtEnd() && !Consume("?>")) Advance();
    return true;
  }

  bool SkipDoctype() {
    if (!Consume("<!DOCTYPE")) return false;
    int depth = 1;
    while (!AtEnd() && depth > 0) {
      if (Peek() == '<') ++depth;
      if (Peek() == '>') --depth;
      Advance();
    }
    return true;
  }

  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (SkipComment() || SkipProcessingInstruction() || SkipDoctype()) {
        continue;
      }
      break;
    }
  }

  void SkipMiscAfterRoot() {
    for (;;) {
      SkipWhitespace();
      if (SkipComment() || SkipProcessingInstruction()) continue;
      break;
    }
  }

  static bool IsNameStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  /// Decodes &amp; &lt; &gt; &quot; &apos; and numeric references.
  Status AppendEntity(std::string* out) {
    // '&' already consumed by caller? No: caller calls at '&'.
    Advance();  // consume '&'
    std::string entity;
    while (!AtEnd() && Peek() != ';' && entity.size() < 12) {
      entity += Peek();
      Advance();
    }
    if (AtEnd() || Peek() != ';') return Error("unterminated entity");
    Advance();  // consume ';'
    if (entity == "amp") {
      *out += '&';
    } else if (entity == "lt") {
      *out += '<';
    } else if (entity == "gt") {
      *out += '>';
    } else if (entity == "quot") {
      *out += '"';
    } else if (entity == "apos") {
      *out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string digits = entity.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Error("bad numeric entity");
      long code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return Error("bad numeric entity");
        }
        code = code * base + d;
        if (code > 0x10FFFF) return Error("numeric entity out of range");
      }
      AppendUtf8(out, static_cast<uint32_t>(code));
    } else {
      return Error("unknown entity '&" + entity + ";'");
    }
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<std::string> ParseAttributeValue() {
    char quote = Peek();
    if (quote != '"' && quote != '\'') {
      return Error("expected quoted attribute value");
    }
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        SCHEMR_RETURN_IF_ERROR(AppendEntity(&value));
      } else {
        value += Peek();
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Status ParseElement(XmlNode* node) {
    if (!Consume("<")) return Error("expected '<'");
    SCHEMR_ASSIGN_OR_RETURN(node->name, ParseName());
    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || (Peek() == '/' && Peek(1) == '>')) break;
      SCHEMR_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      SCHEMR_ASSIGN_OR_RETURN(std::string value, ParseAttributeValue());
      node->attributes.emplace_back(std::move(attr_name), std::move(value));
    }
    if (Consume("/>")) return Status::OK();
    if (!Consume(">")) return Error("expected '>'");

    // Content.
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + node->name + ">");
      if (Consume("<![CDATA[")) {
        while (!AtEnd() && !input_.substr(pos_).starts_with("]]>")) {
          node->text += Peek();
          Advance();
        }
        if (!Consume("]]>")) return Error("unterminated CDATA");
        continue;
      }
      if (SkipComment() || SkipProcessingInstruction()) continue;
      if (Peek() == '<' && Peek(1) == '/') {
        Consume("</");
        SCHEMR_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' in end tag");
        if (close_name != node->name) {
          return Error("mismatched end tag </" + close_name + "> for <" +
                       node->name + ">");
        }
        return Status::OK();
      }
      if (Peek() == '<') {
        auto child = std::make_unique<XmlNode>();
        SCHEMR_RETURN_IF_ERROR(ParseElement(child.get()));
        node->children.push_back(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        SCHEMR_RETURN_IF_ERROR(AppendEntity(&node->text));
        continue;
      }
      node->text += Peek();
      Advance();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

}  // namespace schemr
