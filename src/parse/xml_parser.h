// Minimal non-validating XML parser producing a DOM tree.
//
// Supports the subset needed to read XSD files and GraphML: elements,
// attributes, character data, comments, processing instructions, CDATA
// sections and the five predefined entities. No DTDs, no namespaces
// resolution (prefixes are kept verbatim; XsdImporter matches local names).

#ifndef SCHEMR_PARSE_XML_PARSER_H_
#define SCHEMR_PARSE_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace schemr {

/// One element node of the DOM. Text content is accumulated in `text`
/// (interleaved ordering is not preserved -- sufficient for schema files).
struct XmlNode {
  std::string name;  ///< tag name including any namespace prefix
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;

  /// Attribute value by name, or nullptr.
  const std::string* FindAttribute(std::string_view name) const;

  /// Local name after any ':' prefix ("xs:element" → "element").
  std::string_view LocalName() const;

  /// First child whose local name matches, or nullptr.
  const XmlNode* FirstChild(std::string_view local_name) const;

  /// All children whose local name matches.
  std::vector<const XmlNode*> ChildrenNamed(std::string_view local_name) const;
};

/// A parsed document: exactly one root element.
struct XmlDocument {
  std::unique_ptr<XmlNode> root;
};

/// Parses a complete XML document. Returns ParseError with line info on
/// malformed input (mismatched tags, bad entities, truncation).
Result<XmlDocument> ParseXml(std::string_view input);

}  // namespace schemr

#endif  // SCHEMR_PARSE_XML_PARSER_H_
