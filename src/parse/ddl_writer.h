// DDL rendering: the inverse of the DDL parser.
//
// Used for round-trip testing, for exporting repository schemas, and by
// the corpus tooling to produce realistic DDL query fragments.

#ifndef SCHEMR_PARSE_DDL_WRITER_H_
#define SCHEMR_PARSE_DDL_WRITER_H_

#include <string>

#include "schema/schema.h"

namespace schemr {

/// Maps a DataType back to a canonical SQL type name.
const char* DataTypeToSqlType(DataType type);

/// Renders a relational schema as CREATE TABLE statements. Nested
/// entities are flattened into their own tables (hierarchy does not
/// round-trip; relational DDL has no nesting).
std::string WriteDdl(const Schema& schema);

}  // namespace schemr

#endif  // SCHEMR_PARSE_DDL_WRITER_H_
