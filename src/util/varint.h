// LEB128-style variable-length integer coding, used by the on-disk index
// segment format and the storage-engine record format.
//
// Unsigned values are encoded little-endian, 7 bits per byte, with the high
// bit as a continuation flag (same scheme as Lucene/protobuf varints).

#ifndef SCHEMR_UTIL_VARINT_H_
#define SCHEMR_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace schemr {

/// Appends the varint encoding of `value` to `*out`.
void PutVarint32(std::string* out, uint32_t value);
void PutVarint64(std::string* out, uint64_t value);

/// Appends a length-prefixed string (varint length + raw bytes).
void PutLengthPrefixed(std::string* out, std::string_view value);

/// Decodes a varint from the front of `*input`, advancing it past the
/// consumed bytes. Returns Corruption on truncated or oversized input.
Status GetVarint32(std::string_view* input, uint32_t* value);
Status GetVarint64(std::string_view* input, uint64_t* value);

/// Decodes a length-prefixed string from the front of `*input`.
Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

/// Fixed-width little-endian coding (for checksums and file headers).
void PutFixed32(std::string* out, uint32_t value);
void PutFixed64(std::string* out, uint64_t value);
Status GetFixed32(std::string_view* input, uint32_t* value);
Status GetFixed64(std::string_view* input, uint64_t* value);

}  // namespace schemr

#endif  // SCHEMR_UTIL_VARINT_H_
