#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace schemr {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// The sink is read on every emitted line but replaced rarely; a shared_ptr
// swapped under a mutex keeps an in-flight emit safe against a concurrent
// SetLogSink.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

std::shared_ptr<LogSink>& SinkSlot() {
  static std::shared_ptr<LogSink>* sink = new std::shared_ptr<LogSink>();
  return *sink;
}

std::shared_ptr<LogSink> CurrentSink() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  return SinkSlot();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = sink ? std::make_shared<LogSink>(std::move(sink)) : nullptr;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    if (std::shared_ptr<LogSink> sink = CurrentSink()) {
      (*sink)(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
}

}  // namespace internal
}  // namespace schemr
