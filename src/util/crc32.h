// CRC-32 (IEEE 802.3 polynomial, reflected) used to checksum storage-engine
// records and index segment footers.

#ifndef SCHEMR_UTIL_CRC32_H_
#define SCHEMR_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace schemr {

/// Extends a running CRC with `data`. Start from `crc = 0`.
uint32_t Crc32Extend(uint32_t crc, std::string_view data);

/// Convenience: CRC of a whole buffer.
inline uint32_t Crc32(std::string_view data) { return Crc32Extend(0, data); }

/// CRC masked so that a CRC of data containing embedded CRCs does not
/// degenerate (same trick as LevelDB/RocksDB).
uint32_t Crc32Mask(uint32_t crc);
uint32_t Crc32Unmask(uint32_t masked);

}  // namespace schemr

#endif  // SCHEMR_UTIL_CRC32_H_
