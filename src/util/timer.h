// Wall-clock stopwatch used by the offline indexer, benches and examples.

#ifndef SCHEMR_UTIL_TIMER_H_
#define SCHEMR_UTIL_TIMER_H_

#include <chrono>

namespace schemr {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch that reports its elapsed seconds into a sink on
/// destruction. Sink is anything with `void Observe(double seconds)` —
/// in practice an obs::Histogram — so this header stays free of an obs
/// dependency. A null sink makes the timer a no-op.
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink* sink) : sink_(sink) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Reports early (idempotent); destruction then reports nothing.
  void Stop() {
    if (sink_ != nullptr) {
      sink_->Observe(timer_.ElapsedSeconds());
      sink_ = nullptr;
    }
  }

 private:
  Sink* sink_;
  Timer timer_;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_TIMER_H_
