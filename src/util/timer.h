// Wall-clock stopwatch used by the offline indexer, benches and examples.

#ifndef SCHEMR_UTIL_TIMER_H_
#define SCHEMR_UTIL_TIMER_H_

#include <chrono>

namespace schemr {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_TIMER_H_
