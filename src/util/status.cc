#include "util/status.h"

namespace schemr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace schemr
