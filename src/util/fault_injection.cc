#include "util/fault_injection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

// (The obs layer counts fired faults into schemr_faults_injected through
// SetFaultHook; see obs/fault_bridge.h.)

namespace schemr {

namespace {

std::atomic<FaultHook> g_fault_hook{nullptr};

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Parses "kind[:arg][@skip][xcount]" into `spec`.
Status ParseFaultBody(std::string_view body, FaultSpec* spec) {
  // Strip the numeric suffixes from the right: xcount, then @skip.
  size_t x = body.rfind('x');
  if (x != std::string_view::npos) {
    uint64_t count = 0;
    if (ParseUint(body.substr(x + 1), &count)) {
      spec->count = static_cast<int>(count);
      body = body.substr(0, x);
    }
  }
  size_t at = body.rfind('@');
  if (at != std::string_view::npos) {
    uint64_t skip = 0;
    if (!ParseUint(body.substr(at + 1), &skip)) {
      return Status::InvalidArgument("bad @skip in fault spec");
    }
    spec->skip = static_cast<int>(skip);
    body = body.substr(0, at);
  }
  std::string_view kind = body;
  std::string_view arg;
  size_t colon = body.find(':');
  if (colon != std::string_view::npos) {
    kind = body.substr(0, colon);
    arg = body.substr(colon + 1);
  }
  if (kind == "eio") {
    spec->kind = FaultKind::kError;
    spec->error_code = EIO;
  } else if (kind == "enospc") {
    spec->kind = FaultKind::kError;
    spec->error_code = ENOSPC;
  } else if (kind == "error") {
    uint64_t code = 0;
    if (!ParseUint(arg, &code)) {
      return Status::InvalidArgument("error fault needs :<errno>");
    }
    spec->kind = FaultKind::kError;
    spec->error_code = static_cast<int>(code);
  } else if (kind == "short") {
    uint64_t bytes = 0;
    if (!ParseUint(arg, &bytes)) {
      return Status::InvalidArgument("short fault needs :<bytes>");
    }
    spec->kind = FaultKind::kShortWrite;
    spec->error_code = EIO;
    spec->arg = bytes;
  } else if (kind == "crash") {
    spec->kind = FaultKind::kCrash;
  } else if (kind == "delay") {
    uint64_t millis = 0;
    if (!ParseUint(arg, &millis)) {
      return Status::InvalidArgument("delay fault needs :<ms>");
    }
    spec->kind = FaultKind::kDelay;
    spec->arg = millis;
  } else if (kind == "yield") {
    uint64_t micros = 0;
    if (!arg.empty() && !ParseUint(arg, &micros)) {
      return Status::InvalidArgument("yield fault takes :<max_us>");
    }
    spec->kind = FaultKind::kYield;
    spec->arg = micros;
  } else {
    return Status::InvalidArgument("unknown fault kind '" +
                                   std::string(kind) + "'");
  }
  return Status::OK();
}

}  // namespace

void SetFaultHook(FaultHook hook) {
  g_fault_hook.store(hook, std::memory_order_release);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* f = new FaultInjector();
    const char* env = std::getenv("SCHEMR_FAULTS");
    if (env != nullptr && *env != '\0') {
      Status st = f->ArmFromSpec(env);
      if (!st.ok()) {
        SCHEMR_LOG(kWarning) << "ignoring SCHEMR_FAULTS: " << st;
      } else {
        SCHEMR_LOG(kWarning) << "fault injection armed from SCHEMR_FAULTS: "
                             << env;
      }
    }
    const char* perturb = std::getenv("SCHEMR_PERTURB");
    if (perturb != nullptr && *perturb != '\0' && *perturb != '0') {
      f->EnablePerturbation(true);
      SCHEMR_LOG(kWarning)
          << "thread-schedule perturbation enabled from SCHEMR_PERTURB";
    }
    return f;
  }();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site] = spec;
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  active_.store(!sites_.empty() || counting_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  crash_at_.store(0, std::memory_order_relaxed);
  counting_.store(false, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  active_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  for (const std::string& entry : Split(spec, ";")) {
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry '" +
                                     std::string(entry) +
                                     "' is not site=kind");
    }
    FaultSpec parsed;
    SCHEMR_RETURN_IF_ERROR(ParseFaultBody(entry.substr(eq + 1), &parsed));
    Arm(entry.substr(0, eq), parsed);
  }
  return Status::OK();
}

void FaultInjector::CountOps(bool enable) {
  std::lock_guard<std::mutex> lock(mutex_);
  counting_.store(enable, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  if (!enable) crash_at_.store(0, std::memory_order_relaxed);
  active_.store(enable || !sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::ScheduleCrashAtOp(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_at_.store(nth, std::memory_order_relaxed);
  counting_.store(true, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Fired(const char* site) {
  fired_.fetch_add(1, std::memory_order_relaxed);
  FaultHook hook = g_fault_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(site);
}

bool FaultInjector::NextAction(const char* site, bool is_write,
                               FaultSpec* out, bool* crash_now) {
  *crash_now = false;
  if (counting_.load(std::memory_order_relaxed)) {
    uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t target = crash_at_.load(std::memory_order_relaxed);
    if (target != 0 && op == target) {
      Fired(site);
      if (is_write) {
        *crash_now = true;
        return false;
      }
      throw InjectedCrash{site};
    }
  }
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    FaultSpec& armed = it->second;
    if (armed.skip > 0) {
      --armed.skip;
      return false;
    }
    if (armed.count == 0) return false;
    if (armed.count > 0) --armed.count;
    *out = armed;
    fire = true;
  }
  Fired(site);
  return fire;
}

ssize_t FaultInjector::Write(const char* site, int fd, const void* buf,
                             size_t n) {
  if (!enabled()) return ::write(fd, buf, n);
  FaultSpec spec;
  bool crash_now = false;
  bool fire = NextAction(site, /*is_write=*/true, &spec, &crash_now);
  if (crash_now || (fire && spec.kind == FaultKind::kCrash)) {
    // A kill mid-write(2): a prefix of the payload reaches the file.
    if (n > 1) (void)!::write(fd, buf, n / 2);
    throw InjectedCrash{site};
  }
  if (!fire) return ::write(fd, buf, n);
  switch (spec.kind) {
    case FaultKind::kError:
      errno = spec.error_code;
      return -1;
    case FaultKind::kShortWrite: {
      size_t allowed = spec.arg < n ? static_cast<size_t>(spec.arg) : n;
      if (allowed > 0) (void)!::write(fd, buf, allowed);
      errno = spec.error_code;
      return -1;
    }
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return ::write(fd, buf, n);
    case FaultKind::kCrash:
    case FaultKind::kYield:  // meaningful only at Perturb() sites
      break;                 // kCrash handled above
  }
  return ::write(fd, buf, n);
}

int FaultInjector::Fsync(const char* site, int fd) {
  if (!enabled()) return ::fsync(fd);
  FaultSpec spec;
  bool crash_now = false;
  bool fire = NextAction(site, /*is_write=*/false, &spec, &crash_now);
  if (!fire) return ::fsync(fd);
  switch (spec.kind) {
    case FaultKind::kError:
    case FaultKind::kShortWrite:
      // An fsync that fails leaves the durability of prior writes
      // unknown; model the worst case by not syncing at all.
      errno = spec.error_code;
      return -1;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return ::fsync(fd);
    case FaultKind::kCrash:
      throw InjectedCrash{site};
    case FaultKind::kYield:  // meaningful only at Perturb() sites
      break;
  }
  return ::fsync(fd);
}

int FaultInjector::Check(const char* site) {
  if (!enabled()) return 0;
  FaultSpec spec;
  bool crash_now = false;
  bool fire = NextAction(site, /*is_write=*/false, &spec, &crash_now);
  if (!fire) return 0;
  switch (spec.kind) {
    case FaultKind::kError:
    case FaultKind::kShortWrite:
      return spec.error_code;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return 0;
    case FaultKind::kCrash:
      throw InjectedCrash{site};
    case FaultKind::kYield:  // meaningful only at Perturb() sites
      break;
  }
  return 0;
}

void FaultInjector::CrashPoint(const char* site) {
  if (!enabled()) return;
  FaultSpec spec;
  bool crash_now = false;
  bool fire = NextAction(site, /*is_write=*/false, &spec, &crash_now);
  if (fire && spec.kind == FaultKind::kCrash) throw InjectedCrash{site};
}

int FaultInjector::Accept(const char* site, int fd, struct sockaddr* addr,
                          socklen_t* len) {
  if (!enabled()) return ::accept(fd, addr, len);
  FaultSpec spec;
  bool crash_now = false;
  bool fire = NextAction(site, /*is_write=*/false, &spec, &crash_now);
  if (!fire) return ::accept(fd, addr, len);
  switch (spec.kind) {
    case FaultKind::kError:
    case FaultKind::kShortWrite:
      errno = spec.error_code;
      return -1;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return ::accept(fd, addr, len);
    case FaultKind::kCrash:
      throw InjectedCrash{site};
    case FaultKind::kYield:  // meaningful only at Perturb() sites
      break;
  }
  return ::accept(fd, addr, len);
}

ssize_t FaultInjector::Recv(const char* reset_site, const char* short_site,
                            int fd, void* buf, size_t n, int flags) {
  if (!enabled()) return ::recv(fd, buf, n, flags);
  FaultSpec spec;
  bool crash_now = false;
  if (NextAction(reset_site, /*is_write=*/false, &spec, &crash_now)) {
    switch (spec.kind) {
      case FaultKind::kError:
      case FaultKind::kShortWrite:
        errno = spec.error_code;
        return -1;
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
        break;
      case FaultKind::kCrash:
        throw InjectedCrash{reset_site};
      case FaultKind::kYield:
        break;
    }
  }
  if (NextAction(short_site, /*is_write=*/false, &spec, &crash_now)) {
    if (spec.kind == FaultKind::kCrash) throw InjectedCrash{short_site};
    // Any non-crash kind dribbles: cap the read at `arg` bytes (at least
    // one, so a capped read still makes progress and the connection
    // reassembles rather than spinning).
    uint64_t cap = spec.arg > 0 ? spec.arg : 1;
    if (cap < n) n = static_cast<size_t>(cap);
  }
  return ::recv(fd, buf, n, flags);
}

ssize_t FaultInjector::Send(const char* reset_site, const char* short_site,
                            int fd, const void* buf, size_t n, int flags) {
  if (!enabled()) return ::send(fd, buf, n, flags);
  FaultSpec spec;
  bool crash_now = false;
  if (NextAction(reset_site, /*is_write=*/false, &spec, &crash_now)) {
    switch (spec.kind) {
      case FaultKind::kError:
      case FaultKind::kShortWrite:
        errno = spec.error_code;
        return -1;
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
        break;
      case FaultKind::kCrash:
        throw InjectedCrash{reset_site};
      case FaultKind::kYield:
        break;
    }
  }
  if (NextAction(short_site, /*is_write=*/false, &spec, &crash_now)) {
    if (spec.kind == FaultKind::kCrash) throw InjectedCrash{short_site};
    // Torn mid-response write: a prefix reaches the peer, then the
    // connection errors. The ambiguous failure mode retrying clients must
    // treat as non-retryable.
    size_t allowed = spec.arg < n ? static_cast<size_t>(spec.arg) : n;
    if (allowed > 0) (void)::send(fd, buf, allowed, flags);
    errno = spec.error_code;
    return -1;
  }
  return ::send(fd, buf, n, flags);
}

namespace {

/// Sleeps up to `max_us` microseconds (yields when 0 or when the draw
/// lands on 0). Each thread draws from its own cheap LCG so perturbation
/// adds no cross-thread synchronization of its own.
void RandomizedYield(uint64_t max_us) {
  thread_local uint64_t state =
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  uint64_t draw = (state >> 33) % (max_us + 1);
  if (draw == 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(draw));
  }
}

constexpr uint64_t kDefaultPerturbMaxMicros = 100;

}  // namespace

void FaultInjector::EnablePerturbation(bool enable) {
  perturb_all_.store(enable, std::memory_order_relaxed);
}

void FaultInjector::Perturb(const char* site) {
  // Fast path: one relaxed load each when nothing is armed.
  if (!perturb_all_.load(std::memory_order_relaxed)) {
    if (!active_.load(std::memory_order_relaxed)) return;
    // A site-armed yield/delay still applies without global perturbation.
    FaultSpec spec;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sites_.find(site);
      if (it == sites_.end()) return;
      FaultSpec& armed = it->second;
      if (armed.kind != FaultKind::kYield && armed.kind != FaultKind::kDelay) {
        return;  // perturbation points never error or crash
      }
      if (armed.skip > 0) {
        --armed.skip;
        return;
      }
      if (armed.count == 0) return;
      if (armed.count > 0) --armed.count;
      spec = armed;
    }
    Fired(site);
    if (spec.kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
    } else {
      RandomizedYield(spec.arg);
    }
    return;
  }
  RandomizedYield(kDefaultPerturbMaxMicros);
}

}  // namespace schemr
