// Fault-injection framework for robustness testing.
//
// Library code threads its syscalls (and a few pure decision points)
// through named *fault sites*; tests and the crash-recovery torture
// harness arm faults at those sites to simulate the storage failure modes
// a production deployment will eventually see: short/torn writes, fsync
// failures, ENOSPC/EIO, and hard process kills at arbitrary points
// ("crash points"). When nothing is armed the shims are a single relaxed
// atomic load away from the raw syscall, so they are compiled into
// production builds unconditionally.
//
// Two arming models compose:
//   * Per-site faults (`Arm`): a FaultSpec naming the kind, an optional
//     number of hits to let pass first (`skip`), and how many times to
//     fire (`count`, -1 = forever).
//   * Scheduled crashes (`ScheduleCrashAtOp`): every shim hit increments
//     a global op counter; the N-th hit throws InjectedCrash regardless
//     of site. The torture harness measures a clean run's op count, then
//     replays the workload killing it at a random op each cycle.
//
// Crashes are simulated by throwing InjectedCrash. The struct is
// deliberately not derived from std::exception so that defensive
// `catch (const std::exception&)` blocks in library code cannot swallow
// a scheduled kill; only harnesses that opt in catch it. After a crash
// the faulted object must be discarded (its destructor only releases
// resources), exactly as a real `kill -9` would abandon process state.
//
// Faults can also be armed from the environment (see README, "Fault
// injection"): SCHEMR_FAULTS="site=kind[:arg][@skip][xcount];..." e.g.
//   SCHEMR_FAULTS="kv/append/fsync=eio;kv/compact/after_marker=crash@2"

#ifndef SCHEMR_UTIL_FAULT_INJECTION_H_
#define SCHEMR_UTIL_FAULT_INJECTION_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/status.h"

namespace schemr {

/// Thrown by a shim when a crash fault fires. Catch by exact type in the
/// harness; never caught by library code.
struct InjectedCrash {
  std::string site;
};

enum class FaultKind {
  kError,       ///< shim fails with `error_code` (as errno)
  kShortWrite,  ///< write persists only `arg` bytes, then fails (torn write)
  kCrash,       ///< shim throws InjectedCrash (simulated kill -9)
  kDelay,       ///< shim sleeps `arg` milliseconds, then proceeds normally
  kYield,       ///< perturbation point sleeps a random 0..`arg` microseconds
                ///< (0 = a bare sched yield); only Perturb() honors it
};

struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  int error_code = 5;  ///< EIO; the errno reported for kError/kShortWrite
  uint64_t arg = 0;    ///< kShortWrite: bytes allowed; kDelay: milliseconds
  int skip = 0;        ///< let this many hits pass before firing
  int count = -1;      ///< fire this many times, then lie dormant (-1 = ∞)
};

/// Process-wide fault injector. Thread-safe; the disarmed fast path is one
/// relaxed atomic load per shim call.
class FaultInjector {
 public:
  /// The process-wide injector all shim points consult. Reads
  /// SCHEMR_FAULTS from the environment once on first use.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- arming ---------------------------------------------------------------

  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);

  /// Disarms every site, cancels any scheduled crash, disables and zeroes
  /// the op counter. (The lifetime fault-fired total is kept.)
  void DisarmAll();

  /// Parses and arms a semicolon-separated spec list:
  ///   site=kind[:arg][@skip][xcount]
  /// kinds: eio | enospc | error:<errno> | short:<bytes> | crash |
  ///        delay:<ms>.
  Status ArmFromSpec(const std::string& spec);

  // --- torture-harness op scheduling ---------------------------------------

  /// Counts every shim hit into ops_seen() without firing anything (for
  /// measuring a clean run).
  void CountOps(bool enable);

  /// Arranges for the `nth` (1-based) shim hit from now to throw
  /// InjectedCrash. A crash that fires inside a write shim first persists
  /// a prefix of the payload, simulating a kill mid-write(2). Implies
  /// CountOps(true); ops_seen() restarts at zero.
  void ScheduleCrashAtOp(uint64_t nth);

  uint64_t ops_seen() const { return ops_.load(std::memory_order_relaxed); }

  /// Lifetime count of faults fired (also surfaced through the hook below
  /// as the schemr_faults_injected metric).
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  /// True when any site is armed or op counting/crash scheduling is on.
  bool enabled() const { return active_.load(std::memory_order_relaxed); }

  // --- shim points ----------------------------------------------------------

  /// Behaves like ::write(fd, buf, n) unless a fault at `site` (or a
  /// scheduled crash) fires. kShortWrite persists a prefix and fails with
  /// the spec's errno; a crash persists half the payload, then throws.
  ssize_t Write(const char* site, int fd, const void* buf, size_t n);

  /// Behaves like ::fsync(fd) unless a fault fires.
  int Fsync(const char* site, int fd);

  /// Pure decision point: returns 0 (proceed) or an errno the caller
  /// should fail with. kCrash throws; kDelay sleeps then returns 0.
  int Check(const char* site);

  /// Named crash point. No-op unless a kCrash fault is armed at `site` or
  /// a scheduled crash lands on this hit.
  void CrashPoint(const char* site);

  // --- socket shim points ---------------------------------------------------
  // The network front end (service/http_server) threads its socket
  // syscalls through these so the chaos harness can reset, truncate, and
  // stall real connections. Each op consults the failure-mode sites the
  // server passes ("net/accept/fail", "net/read/{reset,short}",
  // "net/write/{reset,short}"); the armed FaultSpec supplies mechanics
  // (errno, byte caps, delays). kCrash at a socket site throws like any
  // other shim — the chaos harness arms errors, not kills, on the serving
  // path.

  /// Behaves like ::accept(fd, addr, len). A kError fault at `site` fails
  /// the accept with the spec's errno without accepting anything (EMFILE
  /// exhaustion, ECONNABORTED races); kDelay stalls the acceptor first.
  int Accept(const char* site, int fd, struct sockaddr* addr,
             socklen_t* len);

  /// Behaves like ::recv(fd, buf, n, flags). A kError fault at
  /// `reset_site` fails the read outright (peer reset); a kShortWrite
  /// fault at `short_site` caps this read at `arg` bytes — a trickling
  /// peer, which is not an error but forces every reassembly loop to
  /// handle arbitrary fragmentation.
  ssize_t Recv(const char* reset_site, const char* short_site, int fd,
               void* buf, size_t n, int flags);

  /// Behaves like ::send(fd, buf, n, flags). A kError fault at
  /// `reset_site` fails before any byte leaves; a kShortWrite fault at
  /// `short_site` sends a prefix of `arg` bytes and then fails with the
  /// spec's errno — a torn mid-response write, the ambiguous failure a
  /// client must never retry.
  ssize_t Send(const char* reset_site, const char* short_site, int fd,
               const void* buf, size_t n, int flags);

  // --- thread-schedule perturbation ----------------------------------------

  /// Perturbation point for race hunting: concurrency-sensitive hand-offs
  /// (snapshot swaps, executor queue push/pop) call this so tests can
  /// shake out orderings the scheduler rarely produces. Fires only for a
  /// kYield/kDelay spec armed at `site`, or — when perturbation is enabled
  /// globally (EnablePerturbation / SCHEMR_PERTURB=1 in the environment) —
  /// as a randomized yield-or-microsleep at every perturbation site.
  /// Never throws, never errors, and never advances the torture-harness op
  /// counter: perturbation reorders schedules without changing workload
  /// op counts or crash semantics.
  void Perturb(const char* site);

  /// Globally enables randomized perturbation at every Perturb() site.
  void EnablePerturbation(bool enable);
  bool perturbation_enabled() const {
    return perturb_all_.load(std::memory_order_relaxed);
  }

 private:
  /// Returns the spec to apply at this hit, if one fires. Also advances
  /// the op counter and throws on a scheduled crash (except from Write,
  /// which handles the partial-persist itself via `crash_now`).
  bool NextAction(const char* site, bool is_write, FaultSpec* out,
                  bool* crash_now);
  void Fired(const char* site);

  mutable std::mutex mutex_;
  std::map<std::string, FaultSpec> sites_;
  std::atomic<bool> active_{false};
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> fired_{0};
  std::atomic<bool> counting_{false};
  std::atomic<uint64_t> crash_at_{0};  ///< 0 = no crash scheduled
  std::atomic<bool> perturb_all_{false};
};

/// Observer invoked (site name) every time a fault fires, so the obs layer
/// can count faults into the metrics registry without a util→obs
/// dependency (see obs/fault_bridge.h). Must be async-signal-unsafe-free
/// and thread-safe. Passing nullptr uninstalls.
using FaultHook = void (*)(const char* site);
void SetFaultHook(FaultHook hook);

}  // namespace schemr

#endif  // SCHEMR_UTIL_FAULT_INJECTION_H_
