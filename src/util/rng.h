// Deterministic pseudo-random number generation.
//
// Every randomized component in Schemr (corpus generation, simulated search
// histories, benchmark workloads) takes an explicit 64-bit seed and derives
// all randomness from this generator, so experiments are reproducible
// bit-for-bit across runs and platforms. The core is splitmix64 feeding
// xoshiro256**, both public-domain algorithms.

#ifndef SCHEMR_UTIL_RNG_H_
#define SCHEMR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace schemr {

/// Deterministic, seedable 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Gaussian via Box-Muller, mean/stddev as given.
  double NextGaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (heavy-tailed choice,
  /// used to model skewed vocabulary popularity). Uses an O(n) CDF table
  /// cached per (n, s) instance -- construct one ZipfSampler for hot loops.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks a child generator with an independent stream, so components can
  /// be reordered without perturbing each other's randomness.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Precomputed-CDF Zipf sampler for hot loops.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);
  size_t Sample(Rng* rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_RNG_H_
