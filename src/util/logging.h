// Minimal leveled logging for library diagnostics.
//
// Logging is off by default (level kWarning) so library users are not
// spammed; the offline indexer and examples raise it to kInfo. Output
// goes to stderr unless a sink is installed with SetLogSink (the service
// layer captures library warnings into its metrics stream this way; see
// obs/log_bridge.h).

#ifndef SCHEMR_UTIL_LOGGING_H_
#define SCHEMR_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace schemr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets / reads the process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log line (already formatted, without trailing
/// newline). Must be thread-safe; called from whatever thread logs.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the output sink. Passing nullptr restores the default
/// stderr sink.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log line; emits to stderr on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace schemr

#define SCHEMR_LOG(level)                                              \
  ::schemr::internal::LogMessage(::schemr::LogLevel::level, __FILE__, \
                                 __LINE__)

#endif  // SCHEMR_UTIL_LOGGING_H_
