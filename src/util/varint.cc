#include "util/varint.h"

namespace schemr {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

void PutLengthPrefixed(std::string* out, std::string_view value) {
  PutVarint64(out, value.size());
  out->append(value.data(), value.size());
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v64 = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(input, &v64));
  if (v64 > UINT32_MAX) {
    return Status::Corruption("varint32 overflow");
  }
  *value = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (len > input->size()) {
    return Status::Corruption("length-prefixed string truncated");
  }
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

Status GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i])) << (8 * i);
  }
  input->remove_prefix(4);
  *value = v;
  return Status::OK();
}

Status GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>((*input)[i])) << (8 * i);
  }
  input->remove_prefix(8);
  *value = v;
  return Status::OK();
}

}  // namespace schemr
