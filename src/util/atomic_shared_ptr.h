// A mutex-guarded shared_ptr slot with acquire/release load-store
// semantics.
//
// Why not std::atomic<std::shared_ptr<T>>: libstdc++'s _Sp_atomic
// protects its raw pointer field with a spin lock embedded in the
// control-block word, but load() releases that lock with a *relaxed*
// RMW. A reader's plain read of the pointer field therefore has no
// happens-before edge to the next store()'s plain write — formally a
// data race under the C++ memory model, and ThreadSanitizer reports it
// as one (the serving suite runs under TSan in CI). A plain mutex gives
// the same pointer-swap publication pattern the ordering it needs; the
// critical section is only a shared_ptr copy (one refcount bump), so
// the cost is a few uncontended atomic ops per access.
//
// Use it exactly like the atomic it replaces: writers build immutable
// state, then store(); readers load() once and use the snapshot for as
// long as they hold the pointer. Retirement stays refcount-driven.

#ifndef SCHEMR_UTIL_ATOMIC_SHARED_PTR_H_
#define SCHEMR_UTIL_ATOMIC_SHARED_PTR_H_

#include <memory>
#include <mutex>
#include <utility>

namespace schemr {

template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

  void store(std::shared_ptr<T> next) {
    // Drop the previous value outside the lock: releasing the last
    // reference can run an arbitrary destructor.
    std::shared_ptr<T> previous;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      previous = std::exchange(ptr_, std::move(next));
    }
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<T> ptr_;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_ATOMIC_SHARED_PTR_H_
