#include "util/executor.h"

#include <chrono>
#include <utility>

#include "util/fault_injection.h"

namespace schemr {

BoundedExecutor::BoundedExecutor(const Options& options) : options_(options) {
  size_t n = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() {
  Shutdown(0.0);
}

Status BoundedExecutor::TrySubmit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      return Status::Unavailable("executor is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::Unavailable("executor queue full (" +
                                 std::to_string(options_.queue_capacity) +
                                 " pending)");
    }
    queue_.push_back(std::move(task));
  }
  FaultInjector::Global().Perturb("exec/queue/push");
  work_available_.notify_one();
  return Status::OK();
}

size_t BoundedExecutor::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

size_t BoundedExecutor::NumRunning() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

bool BoundedExecutor::wedged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void BoundedExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    FaultInjector::Global().Perturb("exec/queue/pop");
    task(/*cancelled=*/false);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    drained_.notify_all();
  }
}

Status BoundedExecutor::Shutdown(double deadline_seconds) {
  std::deque<Task> cancelled;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_done_) return shutdown_status_;
    draining_ = true;
    auto drained = [this] { return queue_.empty() && running_ == 0; };
    if (deadline_seconds > 0.0) {
      drained_.wait_for(
          lock,
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_seconds)),
          drained);
    }
    cancelled.swap(queue_);
    stopping_ = true;
    shutdown_done_ = true;
    shutdown_status_ =
        cancelled.empty()
            ? Status::OK()
            : Status::Unavailable("drain deadline expired; " +
                                  std::to_string(cancelled.size()) +
                                  " pending requests cancelled");
  }
  work_available_.notify_all();
  // Flush the stranded tasks so their waiters are signalled, then join:
  // workers only finish the task they already started.
  for (Task& task : cancelled) task(/*cancelled=*/true);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_status_;
}

}  // namespace schemr
