#include "util/xml_writer.h"

#include <cassert>
#include <cstdio>

#include "util/string_util.h"

namespace schemr {

XmlWriter::XmlWriter(bool declaration) {
  if (declaration) {
    out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  }
}

void XmlWriter::Indent() {
  for (size_t i = 0; i < stack_.size(); ++i) out_ += "  ";
}

XmlWriter& XmlWriter::Open(std::string_view name) {
  if (start_tag_open_) {
    out_ += ">\n";
    start_tag_open_ = false;
  }
  Indent();
  out_ += "<";
  out_ += name;
  stack_.emplace_back(name);
  flags_.push_back({false, false});
  if (stack_.size() > 1) flags_[stack_.size() - 2].has_children = true;
  start_tag_open_ = true;
  return *this;
}

XmlWriter& XmlWriter::Attribute(std::string_view name,
                                std::string_view value) {
  assert(start_tag_open_);
  out_ += " ";
  out_ += name;
  out_ += "=\"";
  out_ += XmlEscape(value);
  out_ += "\"";
  return *this;
}

XmlWriter& XmlWriter::Attribute(std::string_view name, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Attribute(name, std::string_view(buf));
}

XmlWriter& XmlWriter::Attribute(std::string_view name, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return Attribute(name, std::string_view(buf));
}

XmlWriter& XmlWriter::Text(std::string_view text) {
  if (text.empty()) return *this;
  if (start_tag_open_) {
    out_ += ">";
    start_tag_open_ = false;
  }
  if (!flags_.empty()) flags_.back().has_text = true;
  out_ += XmlEscape(text);
  return *this;
}

XmlWriter& XmlWriter::Close() {
  assert(!stack_.empty());
  std::string name = stack_.back();
  bool has_text = flags_.back().has_text;
  bool has_children = flags_.back().has_children;
  stack_.pop_back();
  flags_.pop_back();
  if (start_tag_open_) {
    out_ += "/>\n";
    start_tag_open_ = false;
    return *this;
  }
  if (has_children || !has_text) Indent();
  out_ += "</";
  out_ += name;
  out_ += ">\n";
  return *this;
}

XmlWriter& XmlWriter::SimpleElement(std::string_view name,
                                    std::string_view text) {
  Open(name);
  Text(text);
  return Close();
}

std::string XmlWriter::Finish() {
  while (!stack_.empty()) Close();
  return std::move(out_);
}

}  // namespace schemr
