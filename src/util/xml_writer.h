// Streaming XML writer used for GraphML output and service responses.
//
// Produces well-formed, pretty-printed XML; element and attribute text is
// escaped automatically. Misuse (closing with no open element) is an
// assertion failure -- callers are internal.

#ifndef SCHEMR_UTIL_XML_WRITER_H_
#define SCHEMR_UTIL_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace schemr {

class XmlWriter {
 public:
  /// If `declaration` is true, emits <?xml version="1.0" ...?> first.
  explicit XmlWriter(bool declaration = true);

  /// Opens <name>; attributes may follow until text/children are added.
  XmlWriter& Open(std::string_view name);

  /// Adds an attribute to the most recently opened element. Must precede
  /// any Text/child of that element.
  XmlWriter& Attribute(std::string_view name, std::string_view value);
  XmlWriter& Attribute(std::string_view name, double value);
  XmlWriter& Attribute(std::string_view name, long long value);

  /// Appends escaped character data to the current element.
  XmlWriter& Text(std::string_view text);

  /// Closes the current element (self-closing if empty).
  XmlWriter& Close();

  /// Convenience: <name>text</name>.
  XmlWriter& SimpleElement(std::string_view name, std::string_view text);

  /// Finishes (closes any remaining elements) and returns the document.
  std::string Finish();

 private:
  struct FrameFlags {
    bool has_children = false;
    bool has_text = false;
  };

  void Indent();

  std::string out_;
  std::vector<std::string> stack_;
  std::vector<FrameFlags> flags_;
  bool start_tag_open_ = false;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_XML_WRITER_H_
