#include "util/string_util.h"

#include <algorithm>
#include <cctype>

namespace schemr {

namespace {
inline char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
inline char UpperChar(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), UpperChar);
  return out;
}

bool IsMostlyAlphabetic(std::string_view s) {
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == ' ' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t subst = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      prev = cur;
    }
  }
  return row[a.size()];
}

}  // namespace schemr
