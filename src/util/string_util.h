// Small string helpers shared across Schemr modules.

#ifndef SCHEMR_UTIL_STRING_UTIL_H_
#define SCHEMR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace schemr {

/// Lowercases ASCII letters; other bytes pass through unchanged.
std::string ToLowerAscii(std::string_view s);

/// Uppercases ASCII letters; other bytes pass through unchanged.
std::string ToUpperAscii(std::string_view s);

/// True if every byte is an ASCII letter, digit, space or underscore.
/// (Used by the WebTables-style corpus filter: "schemas containing
/// non-alphabetical characters" are dropped.)
bool IsMostlyAlphabetic(std::string_view s);

/// Splits on any character in `delims`; empty pieces are dropped.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Escapes &, <, >, " and ' for inclusion in XML/HTML text or attributes.
std::string XmlEscape(std::string_view s);

/// Levenshtein edit distance (byte-wise), used in tests and matchers.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace schemr

#endif  // SCHEMR_UTIL_STRING_UTIL_H_
