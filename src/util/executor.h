// Fixed worker pool over a bounded pending queue — the execution
// substrate of the concurrent serving core (DESIGN.md §9).
//
// Submission never blocks and never queues into collapse: TrySubmit
// either enqueues or fails fast with Unavailable when the queue is at
// capacity, so the caller (the admission layer) can shed load with a
// well-formed overload response instead of letting latency grow without
// bound. Shutdown(deadline) implements graceful drain: intake stops,
// queued and in-flight work is given until the deadline to finish, and
// whatever is still pending is handed back to its task as a cancellation
// (run with cancelled=true on the draining thread). After Shutdown the
// executor is wedged: TrySubmit returns the sticky Unavailable, mirroring
// the KV store's wedge semantics for writes.
//
// Tasks receive a `cancelled` flag instead of being silently dropped so a
// caller blocked on a task's completion is always signalled — a drain
// deadline must never strand a waiter.

#ifndef SCHEMR_UTIL_EXECUTOR_H_
#define SCHEMR_UTIL_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace schemr {

class BoundedExecutor {
 public:
  /// A unit of work. `cancelled` is false when run by a worker, true when
  /// the task was still queued at the drain deadline (or the executor was
  /// destroyed) and is being flushed without execution.
  using Task = std::function<void(bool cancelled)>;

  struct Options {
    /// Worker threads. At least 1.
    size_t num_workers = 4;
    /// Pending (not yet running) task bound; TrySubmit sheds beyond it.
    size_t queue_capacity = 64;
  };

  explicit BoundedExecutor(const Options& options);

  /// Cancels pending work and joins workers (Shutdown(0) if still open).
  ~BoundedExecutor();

  BoundedExecutor(const BoundedExecutor&) = delete;
  BoundedExecutor& operator=(const BoundedExecutor&) = delete;

  /// Enqueues `task` for a worker, or fails without blocking:
  /// Unavailable("queue full") at capacity, Unavailable("shut down") once
  /// draining/wedged. The task will eventually run exactly once, with
  /// cancelled=false (a worker picked it up) or cancelled=true (drain).
  Status TrySubmit(Task task);

  /// Tasks enqueued but not yet picked up by a worker.
  size_t QueueDepth() const;

  /// Tasks currently executing on workers.
  size_t NumRunning() const;

  size_t num_workers() const { return workers_.size(); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Graceful drain: stops intake immediately, then waits up to
  /// `deadline_seconds` (0 = no wait) for queued + in-flight work to
  /// finish. Tasks still queued at the deadline are run with
  /// cancelled=true on the calling thread; in-flight tasks are always
  /// joined (they bound themselves via their own request deadlines).
  /// Returns OK on a clean drain, Unavailable when pending work had to be
  /// cancelled. Idempotent; later calls return the first outcome.
  Status Shutdown(double deadline_seconds);

  /// True once Shutdown has begun: submissions are rejected for good.
  bool wedged() const;

 private:
  void WorkerLoop();

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  size_t running_ = 0;
  bool draining_ = false;  ///< intake stopped
  bool stopping_ = false;  ///< workers must exit when the queue is empty
  bool shutdown_done_ = false;
  Status shutdown_status_;
};

}  // namespace schemr

#endif  // SCHEMR_UTIL_EXECUTOR_H_
