#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace schemr {

namespace {

inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  double z1 = mag * std::sin(2.0 * M_PI * u2);
  cached_gaussian_ = z1;
  has_gaussian_ = true;
  return mean + stddev * z0;
}

size_t Rng::NextZipf(size_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace schemr
