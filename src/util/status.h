// Error-handling primitives for the Schemr library.
//
// Following the Arrow/RocksDB convention, no exceptions cross library
// boundaries: every fallible operation returns a Status (or a Result<T>,
// which is a Status plus a value). Statuses carry a coarse machine-readable
// code and a human-readable message.

#ifndef SCHEMR_UTIL_STATUS_H_
#define SCHEMR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace schemr {

/// Coarse classification of an error, used for programmatic dispatch.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kParseError,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

/// Returns a stable lowercase name for a status code (e.g. "parse error").
const char* StatusCodeName(StatusCode code);

/// The outcome of a fallible operation: either OK or a code plus message.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// message string otherwise. Use the factory functions (Status::ParseError
/// etc.) to construct errors; default construction yields OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The operation was refused because the service cannot take it right
  /// now (queue full, shutting down, wedged); retrying later may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A Status plus a value of type T when the status is OK.
///
/// Mirrors arrow::Result. Accessing the value of an error Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise a caller-supplied fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace schemr

/// Propagates a non-OK Status from the current function.
#define SCHEMR_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::schemr::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value or propagates error.
#define SCHEMR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define SCHEMR_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define SCHEMR_ASSIGN_OR_RETURN_NAME(a, b) SCHEMR_ASSIGN_OR_RETURN_CAT(a, b)
#define SCHEMR_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SCHEMR_ASSIGN_OR_RETURN_IMPL(                                            \
      SCHEMR_ASSIGN_OR_RETURN_NAME(_schemr_result_, __LINE__), lhs, expr)

#endif  // SCHEMR_UTIL_STATUS_H_
