#include "util/crc32.h"

#include <array>

namespace schemr {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

constexpr uint32_t kMaskDelta = 0xA282EAD8u;

}  // namespace

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Crc32Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace schemr
