#include "obs/federation.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

namespace schemr {

namespace {

using MetricKind = MetricsRegistry::MetricKind;
using MetricSnapshot = MetricsRegistry::MetricSnapshot;

/// In-flight histogram assembly: buckets stay cumulative until the whole
/// scrape is parsed (the emitter writes them cumulative).
struct HistogramBuild {
  std::vector<double> bounds;
  std::vector<uint64_t> cumulative;
  bool saw_inf = false;
  bool saw_sum = false;
  bool saw_count = false;
  double sum = 0.0;
  uint64_t count = 0;
};

/// Splits "name_bucket" / "name_sum" / "name_count" into (base, suffix);
/// returns an empty suffix for plain sample names.
std::string_view HistogramSuffix(std::string_view name,
                                 std::string_view* base) {
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      *base = name.substr(0, name.size() - suffix.size());
      return suffix;
    }
  }
  *base = name;
  return {};
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  *out = std::strtoull(copy.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  *out = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<std::vector<MetricSnapshot>> ParsePrometheusSnapshots(
    std::string_view text) {
  std::map<std::string, MetricKind> kinds;
  std::map<std::string, std::string> helps;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramBuild> histograms;

  size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    if (line.empty()) continue;
    const auto bad = [line_no](const char* what) {
      return Status::InvalidArgument("scrape line " + std::to_string(line_no) +
                                     ": " + what);
    };
    if (line[0] == '#') {
      // "# TYPE name kind" / "# HELP name text"; other comments ignored.
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      if (!is_type && !is_help) continue;
      std::string_view rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos || space == 0) {
        return bad("malformed comment line");
      }
      const std::string name(rest.substr(0, space));
      std::string_view value = rest.substr(space + 1);
      if (is_help) {
        helps[name].assign(value);
        continue;
      }
      MetricKind kind;
      if (value == "counter") {
        kind = MetricKind::kCounter;
      } else if (value == "gauge") {
        kind = MetricKind::kGauge;
      } else if (value == "histogram") {
        kind = MetricKind::kHistogram;
      } else {
        // Untyped / summary families are not schemr's dialect; skip the
        // family (its samples will be skipped as unannounced too).
        continue;
      }
      kinds[name] = kind;
      continue;
    }

    // Sample: name[{le="bound"}] value
    size_t name_end = line.find_first_of(" {");
    if (name_end == std::string_view::npos || name_end == 0) {
      return bad("malformed sample");
    }
    const std::string_view sample_name = line.substr(0, name_end);
    std::string_view base;
    const std::string_view suffix = HistogramSuffix(sample_name, &base);
    std::string le;
    std::string_view rest = line.substr(name_end);
    if (!rest.empty() && rest[0] == '{') {
      const size_t close = rest.find('}');
      if (close == std::string_view::npos) return bad("unterminated labels");
      std::string_view labels = rest.substr(1, close - 1);
      rest.remove_prefix(close + 1);
      if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
        // Labeled series outside the histogram dialect: not ours; skip.
        continue;
      }
      le.assign(labels.substr(4, labels.size() - 5));
    }
    if (rest.empty() || rest[0] != ' ') return bad("missing sample value");
    std::string_view value = rest.substr(1);

    const std::string base_name(base);
    const auto kind_it = kinds.find(base_name);
    if (suffix.empty() || kind_it == kinds.end() ||
        kind_it->second != MetricKind::kHistogram) {
      // Plain counter/gauge sample (a histogram family's name never
      // appears bare in this dialect).
      const auto plain_it = kinds.find(std::string(sample_name));
      if (plain_it == kinds.end()) continue;  // unannounced: skip
      if (plain_it->second == MetricKind::kCounter) {
        uint64_t v = 0;
        if (!ParseUint64(value, &v)) return bad("bad counter value");
        counters[std::string(sample_name)] = v;
      } else if (plain_it->second == MetricKind::kGauge) {
        double v = 0.0;
        if (!ParseDouble(value, &v)) return bad("bad gauge value");
        gauges[std::string(sample_name)] = v;
      }
      continue;
    }

    HistogramBuild& build = histograms[base_name];
    if (suffix == "_bucket") {
      uint64_t v = 0;
      if (!ParseUint64(value, &v)) return bad("bad bucket value");
      if (le == "+Inf") {
        build.saw_inf = true;
      } else {
        double bound = 0.0;
        if (!ParseDouble(le, &bound)) return bad("bad le bound");
        if (build.saw_inf) return bad("bucket after +Inf");
        build.bounds.push_back(bound);
      }
      build.cumulative.push_back(v);
    } else if (suffix == "_sum") {
      if (!ParseDouble(value, &build.sum)) return bad("bad histogram sum");
      build.saw_sum = true;
    } else {
      if (!ParseUint64(value, &build.count)) {
        return bad("bad histogram count");
      }
      build.saw_count = true;
    }
  }

  std::vector<MetricSnapshot> out;
  for (const auto& [name, kind] : kinds) {
    MetricSnapshot m;
    m.name = name;
    m.kind = kind;
    const auto help_it = helps.find(name);
    if (help_it != helps.end()) m.help = help_it->second;
    switch (kind) {
      case MetricKind::kCounter: {
        const auto it = counters.find(name);
        if (it == counters.end()) continue;
        m.counter_value = it->second;
        break;
      }
      case MetricKind::kGauge: {
        const auto it = gauges.find(name);
        if (it == gauges.end()) continue;
        m.gauge_value = it->second;
        break;
      }
      case MetricKind::kHistogram: {
        const auto it = histograms.find(name);
        if (it == histograms.end()) continue;
        const HistogramBuild& build = it->second;
        if (!build.saw_inf || !build.saw_sum || !build.saw_count ||
            build.cumulative.size() != build.bounds.size() + 1) {
          return Status::InvalidArgument("incomplete histogram family " +
                                         name);
        }
        m.histogram.bounds = build.bounds;
        m.histogram.buckets.resize(build.cumulative.size());
        uint64_t previous = 0;
        for (size_t i = 0; i < build.cumulative.size(); ++i) {
          if (build.cumulative[i] < previous) {
            return Status::InvalidArgument("non-cumulative buckets in " +
                                           name);
          }
          m.histogram.buckets[i] = build.cumulative[i] - previous;
          previous = build.cumulative[i];
        }
        m.histogram.sum = build.sum;
        m.histogram.count = build.count;
        break;
      }
    }
    out.push_back(std::move(m));
  }
  // std::map iteration already yields name order; keep the invariant
  // explicit for callers that splice lists together.
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<MetricSnapshot> MergeMetricSnapshots(
    const std::vector<std::vector<MetricSnapshot>>& scrapes) {
  std::map<std::string, MetricSnapshot> merged;
  std::set<std::string> dropped;  ///< kind or bucket-bound disagreement
  for (const std::vector<MetricSnapshot>& scrape : scrapes) {
    for (const MetricSnapshot& m : scrape) {
      if (dropped.count(m.name) > 0) continue;
      auto [it, inserted] = merged.emplace(m.name, m);
      if (inserted) continue;
      MetricSnapshot& into = it->second;
      if (into.kind != m.kind ||
          (m.kind == MetricKind::kHistogram &&
           into.histogram.bounds != m.histogram.bounds)) {
        dropped.insert(m.name);
        merged.erase(it);
        continue;
      }
      switch (m.kind) {
        case MetricKind::kCounter:
          into.counter_value += m.counter_value;
          break;
        case MetricKind::kGauge:
          into.gauge_value += m.gauge_value;
          break;
        case MetricKind::kHistogram:
          for (size_t i = 0; i < into.histogram.buckets.size(); ++i) {
            into.histogram.buckets[i] += m.histogram.buckets[i];
          }
          into.histogram.count += m.histogram.count;
          into.histogram.sum += m.histogram.sum;
          break;
      }
    }
  }
  std::vector<MetricSnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, m] : merged) out.push_back(std::move(m));
  return out;
}

std::vector<MetricSnapshot> RenameForFleet(
    std::vector<MetricSnapshot> metrics) {
  for (MetricSnapshot& m : metrics) {
    constexpr std::string_view kPrefix = "schemr_";
    if (m.name.rfind(kPrefix, 0) == 0) {
      m.name = "schemr_fleet_" + m.name.substr(kPrefix.size());
    } else {
      m.name = "schemr_fleet_" + m.name;
    }
  }
  std::sort(metrics.begin(), metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return metrics;
}

}  // namespace schemr
