// Deterministic workload replay + perf gating (DESIGN.md §10).
//
// The replay engine closes the loop the audit log opens: take a recorded
// workload (an audit log directory/segment, or a portable XML workload
// file), re-execute it against ONE pinned CorpusSnapshot, and check that
// the ranked results still digest to the same values. Replay runs with no
// deadline and no matcher budget, so the pipeline is fully deterministic:
// the same snapshot and workload must produce the same digests on every
// run, on any machine, at any thread count. A digest mismatch therefore
// means the ranking changed — a nondeterminism bug or an unintended
// ranking regression, never benign timing noise.
//
// The report (ReplayReportToJson → BENCH_replay.json) carries per-phase
// latency percentiles, throughput, and the mismatch/degraded/error
// counts; CompareBenchReports diffs two such reports and is the engine
// behind tools/bench_gate, which fails CI when latency regresses beyond
// tolerance or any digest mismatches appear.

#ifndef SCHEMR_OBS_REPLAY_H_
#define SCHEMR_OBS_REPLAY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/serving_corpus.h"
#include "util/status.h"

namespace schemr {

/// One replayable request. `expected_digest` 0 means "not recorded":
/// replay then only checks run-to-run stability, not against a recording.
struct WorkloadEntry {
  std::string keywords;
  std::string fragment;
  uint32_t top_k = 10;
  uint32_t candidate_pool = 50;
  /// Signature pre-filter threshold this entry was recorded under
  /// (SearchEngineOptions::prefilter). 0 = exact mode: replay must
  /// reproduce the full-pipeline digests. A workload that opts into the
  /// approximate screen carries the threshold here, so its recorded
  /// digests were produced under the SAME screen and still gate exactly.
  double prefilter = 0.0;
  uint64_t fingerprint = 0;       ///< recorded fingerprint (0 = unknown)
  uint64_t expected_digest = 0;   ///< recorded result digest (0 = none)
};

/// Loads a workload from `path`: an audit log (directory of audit-*.log
/// segments, or one segment file) or an XML workload file (<workload>
/// with <query> children), auto-detected. Audit records that retained no
/// query text (fast healthy requests) cannot be re-executed and are
/// skipped; `skipped` (optional) receives how many.
Result<std::vector<WorkloadEntry>> LoadWorkload(const std::string& path,
                                                size_t* skipped = nullptr);

/// The portable workload format:
///   <workload>
///     <query keywords="..." top_k="10" pool="50" digest="...">
///       <fragment>CREATE TABLE ...</fragment>
///     </query>
///   </workload>
std::string WorkloadToXml(const std::vector<WorkloadEntry>& entries);

/// Parses the XML workload format (exposed for tests; LoadWorkload calls
/// it for non-audit files).
Result<std::vector<WorkloadEntry>> WorkloadFromXml(const std::string& xml);

/// WorkloadToXml to a file.
Status SaveWorkload(const std::string& path,
                    const std::vector<WorkloadEntry>& entries);

struct ReplayOptions {
  /// Worker threads executing entries (results are digest-identical at
  /// any thread count; only the latency distribution shifts).
  size_t threads = 1;
  /// Times each entry is executed. Repeats > 1 also cross-check digests
  /// between repeats of the same entry.
  size_t repeat = 1;
  /// Threads each search uses to score its candidate pool
  /// (SearchEngineOptions::scoring_threads). Replaying the same recording
  /// at different values must produce identical digests -- that equality
  /// is exactly what the CI perf gate enforces every push.
  size_t engine_threads = 1;
  /// When > 0, forces SearchEngineOptions::prefilter to this threshold
  /// for EVERY entry, overriding what the workload recorded. Forcing the
  /// approximate screen onto an exact-recorded workload changes which
  /// candidates can rank, so its digests mismatch and the gate fails --
  /// by design: approximate mode cannot silently pass an exact gate. Use
  /// a workload recorded under the same threshold to gate approximate
  /// serving.
  double force_prefilter = 0.0;
};

/// Latency percentiles over one timing series, in seconds.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct ReplayReport {
  size_t entries = 0;            ///< workload size
  size_t executed = 0;           ///< entries × repeat
  size_t threads = 1;
  size_t repeat = 1;
  size_t engine_threads = 1;     ///< per-search scoring threads
  size_t errors = 0;             ///< pipeline returned non-OK
  size_t degraded = 0;           ///< should be 0: replay runs undeadlined
  size_t digest_mismatches = 0;  ///< vs recording, or between repeats
  double wall_seconds = 0.0;
  double qps = 0.0;
  LatencySummary total;
  LatencySummary phase1;
  LatencySummary phase2;
  LatencySummary phase3;
  /// Digest each entry produced on its first execution (parallel to the
  /// workload; 0 for entries that errored).
  std::vector<uint64_t> digests;
};

/// Re-executes `workload` against the pinned `snapshot`.
Result<ReplayReport> ReplayWorkload(
    std::shared_ptr<const CorpusSnapshot> snapshot,
    const std::vector<WorkloadEntry>& workload,
    const ReplayOptions& options = {});

/// Serializes a report as BENCH_replay.json.
std::string ReplayReportToJson(const ReplayReport& report);

/// Flattens the numeric fields of a BENCH_replay.json document into
/// dotted paths ("latency_seconds.total.p95" → 0.0042). ParseError on
/// malformed input. Understands exactly the subset ReplayReportToJson
/// and the service's /statusz emit (objects, numbers, booleans as 1/0,
/// strings — strings are ignored).
Result<std::map<std::string, double>> ParseBenchJson(const std::string& json);

struct GateOptions {
  /// Allowed fractional latency regression per percentile (+10%).
  double latency_tolerance = 0.10;
  /// Multiplier applied to every baseline latency before comparing.
  /// < 1.0 artificially tightens the baseline (the CI negative test);
  /// > 1.0 loosens it (cross-machine comparisons against a committed
  /// baseline).
  double baseline_scale = 1.0;
  /// Digest mismatches tolerated (0: any mismatch fails the gate).
  uint64_t max_digest_mismatches = 0;
  /// Allowed fractional throughput drop: fail when current qps falls
  /// below (baseline qps / baseline_scale) × (1 - qps_tolerance). The
  /// default is forgiving (throughput is far noisier than percentiles on
  /// shared CI machines); reports without a qps field skip the check.
  double qps_tolerance = 0.75;
};

struct GateResult {
  bool pass = true;
  /// Human-readable violations, one per failed check (empty on pass).
  std::vector<std::string> violations;
};

/// Diffs a current BENCH_replay.json against a baseline one. Fails on
/// any latency percentile beyond tolerance, digest mismatches beyond the
/// cap, or new errors (current errors > baseline errors).
Result<GateResult> CompareBenchReports(const std::string& baseline_json,
                                       const std::string& current_json,
                                       const GateOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_OBS_REPLAY_H_
