// Metrics federation for the replica fleet (DESIGN.md §15).
//
// The coordinator's /metrics merge mode scrapes each ready replica's
// Prometheus text exposition, merges the scrapes into one fleet-wide
// snapshot list, and re-emits it (renamed `schemr_fleet_*`) through the
// same emitter the per-process registries use. Merge semantics:
//
//   * counters merge by sum — each replica's counter is an independent
//     event count, so the fleet total is exact;
//   * histograms merge bucket-wise — every schemr process builds its
//     latency histograms from Histogram::DefaultLatencyBounds(), so
//     adding per-bucket counts (plus _sum/_count) is exact, and fleet
//     percentiles derived from the merged histogram are as accurate as
//     any single replica's. A family whose bounds disagree across
//     scrapes (version skew mid-rollout) is dropped from the merge
//     rather than summed wrongly;
//   * gauges merge by sum — fleet gauges read as totals across replicas
//     (in-flight requests, live segments), which is the aggregation
//     every schemr gauge supports.
//
// A scrape that fails to parse is the caller's problem (skip the dead
// replica and merge the rest); this layer never sees the network.

#ifndef SCHEMR_OBS_FEDERATION_H_
#define SCHEMR_OBS_FEDERATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace schemr {

/// Parses one Prometheus text-exposition body (the dialect
/// ToPrometheusText emits: unlabeled counters/gauges, histograms with a
/// single `le` label) back into snapshot structs, name-sorted.
/// Histogram buckets are de-cumulated; families announced by `# TYPE`
/// but missing samples are dropped. InvalidArgument on structurally
/// unparseable input.
Result<std::vector<MetricsRegistry::MetricSnapshot>> ParsePrometheusSnapshots(
    std::string_view text);

/// Merges N scrapes into one snapshot list (name-sorted). Counters and
/// gauges sum; histograms add bucket-wise when bounds match across every
/// scrape and are dropped from the result otherwise. Help text comes
/// from the first scrape that carries the family.
std::vector<MetricsRegistry::MetricSnapshot> MergeMetricSnapshots(
    const std::vector<std::vector<MetricsRegistry::MetricSnapshot>>& scrapes);

/// Renames merged series for fleet exposition: `schemr_<x>` →
/// `schemr_fleet_<x>` (anything else gains the `schemr_fleet_` prefix
/// wholesale), so federated series never collide with the coordinator
/// process's own registry in one exposition body.
std::vector<MetricsRegistry::MetricSnapshot> RenameForFleet(
    std::vector<MetricsRegistry::MetricSnapshot> metrics);

}  // namespace schemr

#endif  // SCHEMR_OBS_FEDERATION_H_
