#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>

namespace schemr {

namespace {

using MetricSnapshot = MetricsRegistry::MetricSnapshot;
using MetricKind = MetricsRegistry::MetricKind;

std::string FormatNumber(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void AppendEscapedJson(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  char buf[160];
  for (const MetricSnapshot& m : registry.Collect()) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " ";
      // Prometheus escapes backslash and newline in help text.
      for (char c : m.help) {
        if (c == '\\') {
          out += "\\\\";
        } else if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      out += '\n';
    }
    out += "# TYPE " + m.name + " " + KindName(m.kind) + "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", m.name.c_str(),
                      m.counter_value);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += m.name + " " + FormatNumber(m.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          cumulative += m.histogram.buckets[i];
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "+Inf";
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                        m.name.c_str(), le.c_str(), cumulative);
          out += buf;
        }
        out += m.name + "_sum " + FormatNumber(m.histogram.sum) + "\n";
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                      m.name.c_str(), m.histogram.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (const MetricSnapshot& m : registry.Collect()) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"";
    AppendEscapedJson(&out, m.name);
    out += "\": ";
    switch (m.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, m.counter_value);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += FormatNumber(m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        std::snprintf(buf, sizeof(buf), "{\"count\": %" PRIu64 ", \"sum\": %s",
                      m.histogram.count,
                      FormatNumber(m.histogram.sum).c_str());
        out += buf;
        out += ", \"p50\": " + FormatNumber(m.histogram.Quantile(0.50));
        out += ", \"p95\": " + FormatNumber(m.histogram.Quantile(0.95));
        out += ", \"p99\": " + FormatNumber(m.histogram.Quantile(0.99));
        out += ", \"buckets\": [";
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          if (i > 0) out += ", ";
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "\"+Inf\"";
          std::snprintf(buf, sizeof(buf), "{\"le\": %s, \"count\": %" PRIu64 "}",
                        le.c_str(), m.histogram.buckets[i]);
          out += buf;
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace schemr
