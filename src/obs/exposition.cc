#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

namespace schemr {

namespace {

using MetricSnapshot = MetricsRegistry::MetricSnapshot;
using MetricKind = MetricsRegistry::MetricKind;

std::string FormatNumber(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void AppendEscapedJson(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  return ToPrometheusText(registry.Collect());
}

std::string ToPrometheusText(
    const std::vector<MetricsRegistry::MetricSnapshot>& metrics) {
  std::string out;
  char buf[160];
  for (const MetricSnapshot& m : metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " ";
      // Prometheus escapes backslash and newline in help text.
      for (char c : m.help) {
        if (c == '\\') {
          out += "\\\\";
        } else if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      out += '\n';
    }
    out += "# TYPE " + m.name + " " + KindName(m.kind) + "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", m.name.c_str(),
                      m.counter_value);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += m.name + " " + FormatNumber(m.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          cumulative += m.histogram.buckets[i];
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "+Inf";
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                        m.name.c_str(), le.c_str(), cumulative);
          out += buf;
        }
        out += m.name + "_sum " + FormatNumber(m.histogram.sum) + "\n";
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                      m.name.c_str(), m.histogram.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (const MetricSnapshot& m : registry.Collect()) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"";
    AppendEscapedJson(&out, m.name);
    out += "\": ";
    switch (m.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, m.counter_value);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += FormatNumber(m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        std::snprintf(buf, sizeof(buf), "{\"count\": %" PRIu64 ", \"sum\": %s",
                      m.histogram.count,
                      FormatNumber(m.histogram.sum).c_str());
        out += buf;
        out += ", \"p50\": " + FormatNumber(m.histogram.Quantile(0.50));
        out += ", \"p95\": " + FormatNumber(m.histogram.Quantile(0.95));
        out += ", \"p99\": " + FormatNumber(m.histogram.Quantile(0.99));
        out += ", \"buckets\": [";
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          if (i > 0) out += ", ";
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "\"+Inf\"";
          std::snprintf(buf, sizeof(buf), "{\"le\": %s, \"count\": %" PRIu64 "}",
                        le.c_str(), m.histogram.buckets[i]);
          out += buf;
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

namespace {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool IsValidLabelName(std::string_view name) {
  return IsValidMetricName(name) && name.find(':') == std::string_view::npos;
}

/// Parses a sample value: a C double, or the spec's +Inf / -Inf / NaN.
bool ParseSampleValue(std::string_view token, double* value) {
  if (token == "+Inf" || token == "Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const std::string copy(token);
  char* end = nullptr;
  *value = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && !copy.empty();
}

/// Parses `{key="value",...}` starting at text[pos] == '{'. Advances
/// *pos past the closing brace. Stores the `le` label's raw value if
/// present.
Status ParseLabels(std::string_view line, size_t* pos, std::string* le) {
  ++*pos;  // consume '{'
  bool first = true;
  while (*pos < line.size() && line[*pos] != '}') {
    if (!first) {
      if (line[*pos] != ',') {
        return Status::InvalidArgument("expected ',' between labels");
      }
      ++*pos;
      if (*pos < line.size() && line[*pos] == '}') break;  // trailing comma
    }
    first = false;
    const size_t eq = line.find('=', *pos);
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("label without '='");
    }
    const std::string_view name = line.substr(*pos, eq - *pos);
    if (!IsValidLabelName(name)) {
      return Status::InvalidArgument("bad label name '" + std::string(name) +
                                     "'");
    }
    *pos = eq + 1;
    if (*pos >= line.size() || line[*pos] != '"') {
      return Status::InvalidArgument("label value must be double-quoted");
    }
    ++*pos;
    std::string value;
    bool closed = false;
    while (*pos < line.size()) {
      const char c = line[*pos];
      if (c == '\\') {
        if (*pos + 1 >= line.size()) {
          return Status::InvalidArgument("dangling escape in label value");
        }
        const char esc = line[*pos + 1];
        if (esc != '\\' && esc != '"' && esc != 'n') {
          return Status::InvalidArgument(
              std::string("invalid label escape '\\") + esc + "'");
        }
        value += esc == 'n' ? '\n' : esc;
        *pos += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++*pos;
        break;
      }
      value += c;
      ++*pos;
    }
    if (!closed) {
      return Status::InvalidArgument("unterminated label value");
    }
    if (name == "le") *le = value;
  }
  if (*pos >= line.size() || line[*pos] != '}') {
    return Status::InvalidArgument("unterminated label set");
  }
  ++*pos;  // consume '}'
  return Status::OK();
}

/// Per-family bookkeeping accumulated while scanning samples.
struct FamilyState {
  std::string kind;  ///< from # TYPE; empty = none seen yet
  bool has_samples = false;
  // Histogram accumulation:
  double last_bucket = -1.0;      ///< previous bucket's cumulative value
  bool last_le_inf = false;       ///< most recent bucket was le="+Inf"
  bool saw_inf_bucket = false;
  double inf_bucket_value = 0.0;
  bool has_sum = false;
  bool has_count = false;
  double count_value = 0.0;
};

/// Strips a histogram-series suffix: "foo_bucket" -> "foo". Returns the
/// suffix ("bucket", "sum", "count") or empty.
std::string_view SplitHistogramSuffix(std::string_view name,
                                      std::string_view* base) {
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      *base = name.substr(0, name.size() - suffix.size());
      return suffix.substr(1);
    }
  }
  *base = name;
  return {};
}

}  // namespace

Status CheckPrometheusText(std::string_view text) {
  std::map<std::string, FamilyState> families;
  size_t line_number = 0;
  size_t start = 0;
  auto fail = [&line_number](const std::string& message,
                             std::string_view line) {
    return Status::InvalidArgument(
        "exposition line " + std::to_string(line_number) + ": " + message +
        " in '" + std::string(line.substr(0, 120)) + "'");
  };
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      if (start == text.size()) break;
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return fail("malformed # TYPE", line);
        }
        const std::string name(rest.substr(0, sp));
        const std::string_view kind = rest.substr(sp + 1);
        if (!IsValidMetricName(name)) {
          return fail("bad metric name in # TYPE", line);
        }
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail("unknown metric kind '" + std::string(kind) + "'",
                      line);
        }
        FamilyState& family = families[name];
        if (!family.kind.empty()) {
          return fail("duplicate # TYPE for family '" + name + "'", line);
        }
        if (family.has_samples) {
          return fail("# TYPE after samples for family '" + name + "'",
                      line);
        }
        family.kind = std::string(kind);
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const size_t sp = rest.find(' ');
        const std::string_view name =
            sp == std::string_view::npos ? rest : rest.substr(0, sp);
        if (!IsValidMetricName(name)) {
          return fail("bad metric name in # HELP", line);
        }
        const std::string_view help =
            sp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sp + 1);
        for (size_t i = 0; i < help.size(); ++i) {
          if (help[i] != '\\') continue;
          if (i + 1 >= help.size() ||
              (help[i + 1] != '\\' && help[i + 1] != 'n')) {
            return fail("invalid escape in # HELP text", line);
          }
          ++i;
        }
      }
      continue;  // other comments are free-form
    }

    // A sample: name[{labels}] value [timestamp]
    size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    const std::string_view name = line.substr(0, pos);
    if (!IsValidMetricName(name)) {
      return fail("bad metric name", line);
    }
    std::string le;
    if (pos < line.size() && line[pos] == '{') {
      Status labels = ParseLabels(line, &pos, &le);
      if (!labels.ok()) return fail(labels.message(), line);
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail("expected ' ' before sample value", line);
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t value_end = pos;
    while (value_end < line.size() && line[value_end] != ' ') ++value_end;
    double value = 0.0;
    if (!ParseSampleValue(line.substr(pos, value_end - pos), &value)) {
      return fail("unparsable sample value", line);
    }
    // Anything after the value must be a timestamp (integer milliseconds).
    pos = value_end;
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos < line.size()) {
      double timestamp = 0.0;
      if (!ParseSampleValue(line.substr(pos), &timestamp)) {
        return fail("trailing junk after sample value", line);
      }
    }

    // Resolve the family: exact TYPE, else a histogram series suffix.
    std::string_view base = name;
    std::string_view suffix;
    auto it = families.find(std::string(name));
    if (it != families.end() && !it->second.kind.empty() &&
        it->second.kind != "histogram") {
      // Plain counter/gauge sample.
    } else {
      suffix = SplitHistogramSuffix(name, &base);
      it = families.find(std::string(base));
      if (it == families.end() || it->second.kind.empty()) {
        // Maybe the full name IS a histogram family (unlikely but legal
        // for a histogram sample line named exactly the family? No —
        // histograms only emit suffixed series).
        return fail("sample without a preceding # TYPE", line);
      }
      if (!suffix.empty() && it->second.kind != "histogram") {
        // `foo_sum` where family `foo` is a counter: treat the full name
        // as its own (untyped) family.
        return fail("sample without a preceding # TYPE", line);
      }
      if (suffix.empty() && it->second.kind == "histogram") {
        return fail("histogram family sampled without a series suffix",
                    line);
      }
    }
    FamilyState& family = it->second;
    family.has_samples = true;

    if (family.kind == "counter") {
      if (!(value >= 0.0) || value != value ||
          value == std::numeric_limits<double>::infinity()) {
        return fail("counter sample must be finite and non-negative", line);
      }
      if (value != static_cast<double>(static_cast<uint64_t>(value))) {
        return fail("counter sample must be integral", line);
      }
    } else if (family.kind == "histogram") {
      if (suffix == "bucket") {
        if (le.empty()) {
          return fail("histogram bucket without an le label", line);
        }
        if (value + 1e-9 < family.last_bucket) {
          return fail("histogram buckets must be cumulative "
                      "(non-decreasing)",
                      line);
        }
        family.last_bucket = value;
        family.last_le_inf = le == "+Inf";
        if (family.last_le_inf) {
          family.saw_inf_bucket = true;
          family.inf_bucket_value = value;
        }
      } else if (suffix == "sum") {
        family.has_sum = true;
      } else if (suffix == "count") {
        family.has_count = true;
        family.count_value = value;
      }
    }
  }

  for (const auto& [name, family] : families) {
    if (family.kind != "histogram" || !family.has_samples) continue;
    if (!family.saw_inf_bucket || !family.last_le_inf) {
      return Status::InvalidArgument("histogram '" + name +
                                     "' must end its buckets with le=\"+Inf\"");
    }
    if (!family.has_sum) {
      return Status::InvalidArgument("histogram '" + name + "' has no _sum");
    }
    if (!family.has_count) {
      return Status::InvalidArgument("histogram '" + name +
                                     "' has no _count");
    }
    if (family.count_value != family.inf_bucket_value) {
      return Status::InvalidArgument(
          "histogram '" + name +
          "' _count disagrees with its +Inf bucket (" +
          FormatNumber(family.count_value) + " vs " +
          FormatNumber(family.inf_bucket_value) + ")");
    }
  }
  return Status::OK();
}

}  // namespace schemr
