#include "obs/replay.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/fingerprint.h"
#include "core/query_parser.h"
#include "core/search_engine.h"
#include "obs/audit_log.h"
#include "parse/xml_parser.h"
#include "util/timer.h"
#include "util/xml_writer.h"

namespace schemr {

namespace {

uint64_t ParseU64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 10);
}

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1.0,
                       std::ceil(q * static_cast<double>(v.size())) - 1.0));
  return v[rank];
}

LatencySummary Summarize(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  LatencySummary s;
  s.p50 = Percentile(&samples, 0.50);
  s.p95 = Percentile(&samples, 0.95);
  s.p99 = Percentile(&samples, 0.99);
  return s;
}

void JsonLatency(std::ostringstream* out, const char* name,
                 const LatencySummary& s, bool trailing_comma) {
  *out << "    \"" << name << "\": {\"p50\": " << s.p50
       << ", \"p95\": " << s.p95 << ", \"p99\": " << s.p99 << "}"
       << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

Result<std::vector<WorkloadEntry>> WorkloadFromXml(const std::string& xml) {
  SCHEMR_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  if (doc.root->LocalName() != "workload") {
    return Status::ParseError("expected <workload> root, got <" +
                              doc.root->name + ">");
  }
  std::vector<WorkloadEntry> entries;
  for (const XmlNode* query : doc.root->ChildrenNamed("query")) {
    WorkloadEntry entry;
    if (const std::string* v = query->FindAttribute("keywords")) {
      entry.keywords = *v;
    }
    if (const std::string* v = query->FindAttribute("top_k")) {
      entry.top_k = static_cast<uint32_t>(ParseU64(*v));
    }
    if (const std::string* v = query->FindAttribute("pool")) {
      entry.candidate_pool = static_cast<uint32_t>(ParseU64(*v));
    }
    if (const std::string* v = query->FindAttribute("prefilter")) {
      entry.prefilter = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = query->FindAttribute("digest")) {
      entry.expected_digest = ParseU64(*v);
    }
    if (const std::string* v = query->FindAttribute("fingerprint")) {
      entry.fingerprint = ParseU64(*v);
    }
    if (const XmlNode* fragment = query->FirstChild("fragment")) {
      entry.fragment = fragment->text;
    }
    if (entry.keywords.empty() && entry.fragment.empty()) {
      return Status::ParseError(
          "<query> with neither keywords nor a fragment");
    }
    if (entry.top_k == 0) entry.top_k = 10;
    if (entry.candidate_pool < entry.top_k) entry.candidate_pool = entry.top_k;
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::ParseError("workload has no <query> entries");
  }
  return entries;
}

std::string WorkloadToXml(const std::vector<WorkloadEntry>& entries) {
  XmlWriter xml;
  xml.Open("workload");
  xml.Attribute("count", static_cast<long long>(entries.size()));
  for (const WorkloadEntry& entry : entries) {
    xml.Open("query").Attribute("keywords", entry.keywords);
    xml.Attribute("top_k", static_cast<long long>(entry.top_k));
    xml.Attribute("pool", static_cast<long long>(entry.candidate_pool));
    if (entry.prefilter > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", entry.prefilter);
      xml.Attribute("prefilter", buf);
    }
    if (entry.fingerprint != 0) {
      xml.Attribute("fingerprint", std::to_string(entry.fingerprint));
    }
    if (entry.expected_digest != 0) {
      xml.Attribute("digest", std::to_string(entry.expected_digest));
    }
    if (!entry.fragment.empty()) {
      xml.SimpleElement("fragment", entry.fragment);
    }
    xml.Close();
  }
  return xml.Finish();
}

Status SaveWorkload(const std::string& path,
                    const std::vector<WorkloadEntry>& entries) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out << WorkloadToXml(entries);
  out.close();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<std::vector<WorkloadEntry>> LoadWorkload(const std::string& path,
                                                size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  if (LooksLikeAuditLog(path)) {
    std::error_code ec;
    auto report = std::filesystem::is_directory(path, ec)
                      ? ReadAuditLog(path)
                      : ReadAuditSegment(path);
    SCHEMR_RETURN_IF_ERROR(report.status());
    std::vector<WorkloadEntry> entries;
    for (const AuditRecord& record : report->records) {
      if (!record.has_query_text) {
        // Fast healthy requests elide their text; only their fingerprint
        // and digest were kept, so they cannot be re-executed.
        if (skipped != nullptr) ++(*skipped);
        continue;
      }
      WorkloadEntry entry;
      entry.keywords = record.keywords;
      entry.fragment = record.fragment;
      entry.top_k = record.top_k != 0 ? record.top_k : 10;
      entry.candidate_pool = std::max(record.candidate_pool, entry.top_k);
      entry.fingerprint = record.fingerprint;
      // Digests from records that completed the pipeline become the
      // replay expectation; shed/cancelled records carry none.
      entry.expected_digest = record.result_digest;
      entries.push_back(std::move(entry));
    }
    if (entries.empty()) {
      return Status::InvalidArgument(
          "audit log at " + path +
          " holds no replayable records (none retained query text)");
    }
    return entries;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open workload " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return WorkloadFromXml(contents);
}

Result<ReplayReport> ReplayWorkload(
    std::shared_ptr<const CorpusSnapshot> snapshot,
    const std::vector<WorkloadEntry>& workload, const ReplayOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("replay needs a corpus snapshot");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  const size_t threads = std::max<size_t>(1, options.threads);
  const size_t repeat = std::max<size_t>(1, options.repeat);
  const size_t engine_threads = std::max<size_t>(1, options.engine_threads);
  // One engine pinned to the snapshot; Search is const and thread-safe.
  const SearchEngine engine(snapshot);

  struct Execution {
    double total = 0.0;
    double phase1 = 0.0;
    double phase2 = 0.0;
    double phase3 = 0.0;
    uint64_t digest = 0;
    bool error = false;
    bool degraded = false;
  };
  std::vector<Execution> executions(workload.size() * repeat);
  std::atomic<size_t> cursor{0};

  auto worker = [&] {
    for (;;) {
      const size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
      if (slot >= executions.size()) return;
      const WorkloadEntry& entry = workload[slot % workload.size()];
      Execution& exec = executions[slot];
      auto parsed = ParseQuery(entry.keywords, entry.fragment);
      if (!parsed.ok()) {
        exec.error = true;
        continue;
      }
      SearchEngineOptions engine_options;
      engine_options.top_k = entry.top_k;
      engine_options.extraction.pool_size = entry.candidate_pool;
      engine_options.scoring_threads = engine_threads;
      engine_options.prefilter = options.force_prefilter > 0.0
                                     ? options.force_prefilter
                                     : entry.prefilter;
      // No deadline, no matcher budget: determinism over realism. Timing
      // noise must move the percentiles, never the digests.
      SearchStats stats;
      engine_options.stats = &stats;
      auto results = engine.Search(*parsed, engine_options);
      if (!results.ok()) {
        exec.error = true;
        continue;
      }
      exec.total = stats.total_seconds;
      exec.phase1 = stats.phase1_seconds;
      exec.phase2 = stats.phase2_seconds;
      exec.phase3 = stats.phase3_seconds;
      exec.degraded = stats.degraded;
      exec.digest = DigestResults(*results);
    }
  };

  const Timer wall;
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ReplayReport report;
  report.entries = workload.size();
  report.executed = executions.size();
  report.threads = threads;
  report.repeat = repeat;
  report.engine_threads = engine_threads;
  report.wall_seconds = wall.ElapsedSeconds();
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(report.executed) / report.wall_seconds
                   : 0.0;
  report.digests.assign(workload.size(), 0);

  std::vector<double> total, phase1, phase2, phase3;
  total.reserve(executions.size());
  for (size_t slot = 0; slot < executions.size(); ++slot) {
    const Execution& exec = executions[slot];
    const size_t entry_index = slot % workload.size();
    if (exec.error) {
      ++report.errors;
      continue;
    }
    if (exec.degraded) ++report.degraded;
    total.push_back(exec.total);
    phase1.push_back(exec.phase1);
    phase2.push_back(exec.phase2);
    phase3.push_back(exec.phase3);
    if (slot < workload.size()) {
      report.digests[entry_index] = exec.digest;
      const uint64_t expected = workload[entry_index].expected_digest;
      if (expected != 0 && exec.digest != expected) {
        ++report.digest_mismatches;
      }
    } else if (exec.digest != report.digests[entry_index]) {
      // A repeat disagreeing with the first execution is nondeterminism
      // inside this very run — the strongest possible signal.
      ++report.digest_mismatches;
    }
  }
  report.total = Summarize(std::move(total));
  report.phase1 = Summarize(std::move(phase1));
  report.phase2 = Summarize(std::move(phase2));
  report.phase3 = Summarize(std::move(phase3));
  return report;
}

std::string ReplayReportToJson(const ReplayReport& report) {
  std::ostringstream out;
  out.precision(9);
  out << "{\n";
  out << "  \"schemr_bench\": \"replay\",\n";
  out << "  \"entries\": " << report.entries << ",\n";
  out << "  \"executed\": " << report.executed << ",\n";
  out << "  \"threads\": " << report.threads << ",\n";
  out << "  \"repeat\": " << report.repeat << ",\n";
  out << "  \"engine_threads\": " << report.engine_threads << ",\n";
  out << "  \"errors\": " << report.errors << ",\n";
  out << "  \"degraded\": " << report.degraded << ",\n";
  out << "  \"digest_mismatches\": " << report.digest_mismatches << ",\n";
  out << "  \"wall_seconds\": " << report.wall_seconds << ",\n";
  out << "  \"qps\": " << report.qps << ",\n";
  out << "  \"latency_seconds\": {\n";
  JsonLatency(&out, "total", report.total, true);
  JsonLatency(&out, "phase1", report.phase1, true);
  JsonLatency(&out, "phase2", report.phase2, true);
  JsonLatency(&out, "phase3", report.phase3, false);
  out << "  }\n";
  out << "}\n";
  return out.str();
}

namespace {

/// Minimal recursive-descent parser for the JSON subset bench reports
/// use: objects, numbers, booleans (as 1/0), strings (string values are
/// skipped). Flattens nested objects with '.'-joined keys.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view input) : input_(input) {}

  Status Parse(std::map<std::string, double>* out) {
    SkipSpace();
    SCHEMR_RETURN_IF_ERROR(ParseObject("", out));
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing characters in bench JSON");
    }
    return Status::OK();
  }

 private:
  Status ParseObject(const std::string& prefix,
                     std::map<std::string, double>* out) {
    SCHEMR_RETURN_IF_ERROR(Expect('{'));
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SCHEMR_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      SCHEMR_RETURN_IF_ERROR(Expect(':'));
      SkipSpace();
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (Peek() == '{') {
        SCHEMR_RETURN_IF_ERROR(ParseObject(path, out));
      } else if (Peek() == '"') {
        std::string ignored;
        SCHEMR_RETURN_IF_ERROR(ParseString(&ignored));
      } else if (Peek() == 't' || Peek() == 'f') {
        // Booleans read as 1/0 (the /statusz body carries flags like
        // "serving" beside its numbers).
        const bool truthy = Peek() == 't';
        const std::string_view word = truthy ? "true" : "false";
        if (input_.substr(pos_, word.size()) != word) {
          return Status::ParseError("bad literal in bench JSON at byte " +
                                    std::to_string(pos_));
        }
        pos_ += word.size();
        (*out)[path] = truthy ? 1.0 : 0.0;
      } else {
        double value = 0.0;
        SCHEMR_RETURN_IF_ERROR(ParseNumber(&value));
        (*out)[path] = value;
      }
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseString(std::string* out) {
    SCHEMR_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < input_.size() && input_[pos_] != '"') {
      if (input_[pos_] == '\\') ++pos_;  // good enough for our own output
      if (pos_ < input_.size()) out->push_back(input_[pos_++]);
    }
    return Expect('"');
  }

  Status ParseNumber(double* out) {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected a number in bench JSON at byte " +
                                std::to_string(pos_));
    }
    *out = std::strtod(std::string(input_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return Status::OK();
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  Status Expect(char c) {
    if (pos_ >= input_.size() || input_[pos_] != c) {
      return Status::ParseError(std::string("expected '") + c +
                                "' in bench JSON at byte " +
                                std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::map<std::string, double>> ParseBenchJson(const std::string& json) {
  std::map<std::string, double> out;
  SCHEMR_RETURN_IF_ERROR(FlatJsonParser(json).Parse(&out));
  return out;
}

Result<GateResult> CompareBenchReports(const std::string& baseline_json,
                                       const std::string& current_json,
                                       const GateOptions& options) {
  SCHEMR_ASSIGN_OR_RETURN(auto baseline, ParseBenchJson(baseline_json));
  SCHEMR_ASSIGN_OR_RETURN(auto current, ParseBenchJson(current_json));
  GateResult result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.violations.push_back(std::move(message));
  };

  for (const auto& [key, base_value] : baseline) {
    if (key.rfind("latency_seconds.", 0) != 0) continue;
    auto it = current.find(key);
    if (it == current.end()) {
      fail("missing latency series in current report: " + key);
      continue;
    }
    const double limit =
        base_value * options.baseline_scale * (1.0 + options.latency_tolerance);
    if (it->second > limit) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s regressed: %.6fs > %.6fs (baseline %.6fs, scale "
                    "%.2f, tolerance +%.0f%%)",
                    key.c_str(), it->second, limit, base_value,
                    options.baseline_scale, options.latency_tolerance * 100.0);
      fail(buf);
    }
  }

  const double mismatches = current.count("digest_mismatches")
                                ? current.at("digest_mismatches")
                                : 0.0;
  if (mismatches > static_cast<double>(options.max_digest_mismatches)) {
    fail("digest mismatches: " +
         std::to_string(static_cast<uint64_t>(mismatches)) + " (allowed " +
         std::to_string(options.max_digest_mismatches) + ")");
  }

  if (baseline.count("qps") != 0 && current.count("qps") != 0) {
    const double required = baseline.at("qps") / options.baseline_scale *
                            (1.0 - options.qps_tolerance);
    if (current.at("qps") < required) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "throughput regressed: %.2f qps < %.2f qps required "
                    "(baseline %.2f, scale %.2f, tolerance -%.0f%%)",
                    current.at("qps"), required, baseline.at("qps"),
                    options.baseline_scale, options.qps_tolerance * 100.0);
      fail(buf);
    }
  }

  const double base_errors =
      baseline.count("errors") ? baseline.at("errors") : 0.0;
  const double cur_errors =
      current.count("errors") ? current.at("errors") : 0.0;
  if (cur_errors > base_errors) {
    fail("replay errors grew: " +
         std::to_string(static_cast<uint64_t>(cur_errors)) + " > baseline " +
         std::to_string(static_cast<uint64_t>(base_errors)));
  }
  return result;
}

}  // namespace schemr
