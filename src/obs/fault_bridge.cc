#include "obs/fault_bridge.h"

#include <mutex>

#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace schemr {

namespace {

Counter* g_faults_injected = nullptr;

void CountFault(const char* /*site*/) {
  if (g_faults_injected != nullptr) g_faults_injected->Increment();
}

}  // namespace

void InstallFaultMetricsBridge() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_faults_injected = MetricsRegistry::Global().GetCounter(
        "schemr_faults_injected",
        "Faults fired by the fault-injection framework.");
    SetFaultHook(&CountFault);
  });
}

}  // namespace schemr
