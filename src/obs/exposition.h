// Metric exposition formats.
//
// Renders a MetricsRegistry as Prometheus text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/) or as a
// JSON object, for scraping endpoints and the CLI `stats` subcommand.

#ifndef SCHEMR_OBS_EXPOSITION_H_
#define SCHEMR_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

namespace schemr {

/// Prometheus text format, version 0.0.4: `# HELP` / `# TYPE` comment
/// lines followed by samples; histograms expand to `_bucket{le="..."}`
/// (cumulative), `_sum` and `_count` series.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// JSON object keyed by metric name; counters/gauges map to numbers,
/// histograms to {count, sum, p50, p95, p99, buckets: [{le, count}...]}.
std::string ToJson(const MetricsRegistry& registry);

}  // namespace schemr

#endif  // SCHEMR_OBS_EXPOSITION_H_
