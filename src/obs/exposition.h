// Metric exposition formats.
//
// Renders a MetricsRegistry as Prometheus text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/) or as a
// JSON object, for scraping endpoints and the CLI `stats` subcommand.

#ifndef SCHEMR_OBS_EXPOSITION_H_
#define SCHEMR_OBS_EXPOSITION_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace schemr {

/// Prometheus text format, version 0.0.4: `# HELP` / `# TYPE` comment
/// lines followed by samples; histograms expand to `_bucket{le="..."}`
/// (cumulative), `_sum` and `_count` series.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// Same emitter over an already-collected (or synthesized) snapshot
/// list. The federation layer (obs/federation.h) renders merged fleet
/// series through this, so federated output is format-identical to a
/// registry's own.
std::string ToPrometheusText(
    const std::vector<MetricsRegistry::MetricSnapshot>& metrics);

/// JSON object keyed by metric name; counters/gauges map to numbers,
/// histograms to {count, sum, p50, p95, p99, buckets: [{le, count}...]}.
std::string ToJson(const MetricsRegistry& registry);

/// Structural conformance check over a text-exposition body (what a
/// Prometheus scraper would reject). Enforced rules:
///   - every sample belongs to a family announced by a preceding
///     `# TYPE` line (histogram `_bucket`/`_sum`/`_count` series resolve
///     to their base family), and a family's TYPE appears only once;
///   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
///     [a-zA-Z_][a-zA-Z0-9_]*, and label values are double-quoted with
///     only \\ \" \n escapes;
///   - `# HELP` text escapes backslash and newline;
///   - sample values parse as numbers (+Inf/-Inf/NaN allowed); counter
///     samples are finite, non-negative integers (this registry's
///     counters are uint64);
///   - each histogram family's buckets are cumulative (non-decreasing in
///     order of appearance), end in le="+Inf", carry a `_sum`, and a
///     `_count` equal to the +Inf bucket.
/// InvalidArgument names the first offending line; used by the CI smoke
/// check (`schemr checkmetrics`) and the exposition tests.
Status CheckPrometheusText(std::string_view text);

}  // namespace schemr

#endif  // SCHEMR_OBS_EXPOSITION_H_
