#include "obs/log_bridge.h"

#include <cstdio>

#include "obs/metrics.h"
#include "util/logging.h"

namespace schemr {

void InstallMetricsLogSink() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* total = registry.GetCounter("schemr_log_messages_total",
                                       "Log lines emitted at any level.");
  Counter* warnings = registry.GetCounter(
      "schemr_log_warnings_total", "Log lines emitted at WARN level.");
  Counter* errors = registry.GetCounter("schemr_log_errors_total",
                                        "Log lines emitted at ERROR level.");
  SetLogSink([total, warnings, errors](LogLevel level,
                                       std::string_view message) {
    total->Increment();
    if (level == LogLevel::kWarning) warnings->Increment();
    if (level == LogLevel::kError) errors->Increment();
    std::fprintf(stderr, "%.*s\n", static_cast<int>(message.size()),
                 message.data());
  });
}

}  // namespace schemr
