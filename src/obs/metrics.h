// Runtime metrics for the Schemr pipeline.
//
// A process-wide MetricsRegistry holds named counters, gauges, and
// fixed-bucket latency histograms. The increment path is lock-free
// (relaxed atomics); registration takes a mutex once, after which callers
// cache the returned pointer (metric objects are never deleted or moved,
// only zeroed by Reset()). Exposition as Prometheus text and JSON lives in
// obs/exposition.h; per-request tracing in obs/trace.h.
//
// Naming follows the Prometheus convention: `schemr_<area>_<what>_<unit>`,
// counters suffixed `_total`, latency histograms `_seconds`. DESIGN.md
// ("Observability") maps each pipeline phase to its metric names.

#ifndef SCHEMR_OBS_METRICS_H_
#define SCHEMR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace schemr {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can move both ways (pool sizes, live keys).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A consistent read of one histogram (see Histogram::Snapshot()).
struct HistogramSnapshot {
  std::vector<double> bounds;     ///< upper bounds, excluding +Inf
  std::vector<uint64_t> buckets;  ///< cumulative-free per-bucket counts;
                                  ///< size = bounds.size() + 1 (last = +Inf)
  uint64_t count = 0;
  double sum = 0.0;

  /// Percentile estimate (q in [0, 1]) by linear interpolation inside the
  /// containing bucket. Returns 0 for an empty histogram.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram. Observation is lock-free: one relaxed
/// fetch_add per bucket counter plus a CAS loop for the running sum.
class Histogram {
 public:
  /// Default bucket bounds for request latencies, in seconds:
  /// 10us .. 10s, roughly 1-2.5-5 per decade.
  static const std::vector<double>& DefaultLatencyBounds();

  explicit Histogram(std::vector<double> bounds);

  /// Records one observation (same unit as the bounds; seconds for
  /// latency histograms).
  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe named-metric registry. Get* registers on first use and
/// returns a stable pointer; callers on hot paths should look up once and
/// cache it. Reset() zeroes every metric but never invalidates pointers.
class MetricsRegistry {
 public:
  /// The process-wide registry all Schemr libraries report into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  /// `bounds` applies only on first registration; subsequent calls with
  /// the same name return the existing histogram.
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          const std::vector<double>& bounds =
                              Histogram::DefaultLatencyBounds());

  /// Zeroes all registered metrics (tests, CLI workloads).
  void Reset();

  enum class MetricKind { kCounter, kGauge, kHistogram };

  /// One metric's state, copied out under the registry lock.
  struct MetricSnapshot {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    uint64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot histogram;
  };

  /// All metrics in lexicographic name order.
  std::vector<MetricSnapshot> Collect() const;

 private:
  struct Entry {
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace schemr

#endif  // SCHEMR_OBS_METRICS_H_
