#include "obs/audit_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/varint.h"

namespace schemr {

namespace fs = std::filesystem;

namespace {

// Record framing: fixed32 masked CRC (over the payload) | fixed32 payload
// length | payload. The fixed-width prelude makes the salvage resync scan
// cheap and unambiguous.
constexpr size_t kFramePrelude = 8;
constexpr uint8_t kRecordVersion = 1;
/// Sanity cap on one record (keywords + fragment are service-limited to
/// ~1MB; anything claiming more is framing damage, not data).
constexpr uint32_t kMaxRecordBytes = 4u << 20;

constexpr char kSegmentPrefix[] = "audit-";
constexpr char kSegmentSuffix[] = ".log";

struct AuditMetrics {
  Counter* records;
  Counter* bytes;
  Counter* drops;
  Counter* slow;
  Gauge* segments;

  static const AuditMetrics& Get() {
    static const AuditMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new AuditMetrics{
          r.GetCounter("schemr_audit_records_total",
                       "Requests recorded into the audit log."),
          r.GetCounter("schemr_audit_bytes_written_total",
                       "Bytes appended to audit segments."),
          r.GetCounter("schemr_audit_drops_total",
                       "Audit records dropped because an append failed."),
          r.GetCounter("schemr_audit_slow_queries_total",
                       "Audited requests over the slow-query threshold "
                       "(full query text retained)."),
          r.GetGauge("schemr_audit_segments",
                     "Audit segment files currently on disk."),
      };
    }();
    return *metrics;
  }
};

std::string SegmentFileName(const std::string& dir, uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(id));
  return dir + "/" + kSegmentPrefix + buf + kSegmentSuffix;
}

/// Segment ids present in `dir`, ascending. Non-matching files ignored.
std::vector<uint64_t> ListSegmentIds(const std::string& dir) {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= sizeof(kSegmentPrefix) - 1 + sizeof(kSegmentSuffix) - 1)
      continue;
    if (name.rfind(kSegmentPrefix, 0) != 0) continue;
    if (name.substr(name.size() - (sizeof(kSegmentSuffix) - 1)) !=
        kSegmentSuffix)
      continue;
    const std::string digits = name.substr(
        sizeof(kSegmentPrefix) - 1,
        name.size() - (sizeof(kSegmentPrefix) - 1) - (sizeof(kSegmentSuffix) - 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    ids.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Tries to parse one framed record at `data[offset..]`. On success sets
/// *consumed and *payload and returns true. `frame_ok` distinguishes "not
/// a valid frame here" from "valid frame, undecodable payload".
bool ParseFrameAt(std::string_view data, size_t offset, size_t* consumed,
                  std::string_view* payload) {
  if (offset + kFramePrelude > data.size()) return false;
  std::string_view cursor = data.substr(offset);
  uint32_t masked_crc = 0;
  uint32_t length = 0;
  if (!GetFixed32(&cursor, &masked_crc).ok()) return false;
  if (!GetFixed32(&cursor, &length).ok()) return false;
  if (length > kMaxRecordBytes) return false;
  if (offset + kFramePrelude + length > data.size()) return false;
  std::string_view body = data.substr(offset + kFramePrelude, length);
  if (Crc32Unmask(masked_crc) != Crc32(body)) return false;
  *consumed = kFramePrelude + length;
  *payload = body;
  return true;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

}  // namespace

const char* AuditOutcomeName(AuditOutcome outcome) {
  switch (outcome) {
    case AuditOutcome::kOk:
      return "ok";
    case AuditOutcome::kDegraded:
      return "degraded";
    case AuditOutcome::kError:
      return "error";
    case AuditOutcome::kShedQueueFull:
      return "shed_queue_full";
    case AuditOutcome::kShedDeadline:
      return "shed_deadline";
    case AuditOutcome::kShedDrain:
      return "shed_drain";
    case AuditOutcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsShedOutcome(AuditOutcome outcome) {
  return outcome == AuditOutcome::kShedQueueFull ||
         outcome == AuditOutcome::kShedDeadline ||
         outcome == AuditOutcome::kShedDrain;
}

void EncodeAuditRecord(const AuditRecord& record, std::string* out) {
  out->push_back(static_cast<char>(kRecordVersion));
  PutVarint64(out, record.timestamp_micros);
  PutFixed64(out, record.fingerprint);
  out->push_back(static_cast<char>(record.outcome));
  PutVarint64(out, record.total_micros);
  PutVarint64(out, record.phase1_micros);
  PutVarint64(out, record.phase2_micros);
  PutVarint64(out, record.phase3_micros);
  PutVarint64(out, record.deadline_micros);
  PutVarint64(out, record.budget_micros);
  PutFixed64(out, record.result_digest);
  PutVarint32(out, record.result_count);
  PutVarint32(out, record.top_k);
  PutVarint32(out, record.candidate_pool);
  PutVarint32(out, record.coarse_only_candidates);
  PutVarint32(out, record.dropped_matchers);
  uint32_t flags = 0;
  if (record.deadline_hit) flags |= 1u;
  if (record.has_query_text) flags |= 2u;
  if (record.cache_hit) flags |= 4u;
  if (!record.request_id.empty()) flags |= 8u;
  PutVarint32(out, flags);
  if (record.has_query_text) {
    PutLengthPrefixed(out, record.keywords);
    PutLengthPrefixed(out, record.fragment);
  }
  // Trailing optional field (flags bit 8): records without a request id
  // stay byte-identical to the pre-fleet layout, so old segments and new
  // readers interoperate in both directions under version 1.
  if (!record.request_id.empty()) {
    PutLengthPrefixed(out, record.request_id);
  }
}

Status DecodeAuditRecord(std::string_view payload, AuditRecord* record) {
  if (payload.empty()) return Status::Corruption("empty audit record");
  const uint8_t version = static_cast<uint8_t>(payload[0]);
  if (version != kRecordVersion) {
    return Status::Corruption("unknown audit record version " +
                              std::to_string(version));
  }
  payload.remove_prefix(1);
  *record = AuditRecord{};
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->timestamp_micros));
  SCHEMR_RETURN_IF_ERROR(GetFixed64(&payload, &record->fingerprint));
  if (payload.empty()) return Status::Corruption("truncated audit record");
  const uint8_t outcome = static_cast<uint8_t>(payload[0]);
  if (outcome > static_cast<uint8_t>(AuditOutcome::kCancelled)) {
    return Status::Corruption("bad audit outcome byte");
  }
  record->outcome = static_cast<AuditOutcome>(outcome);
  payload.remove_prefix(1);
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->total_micros));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->phase1_micros));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->phase2_micros));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->phase3_micros));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->deadline_micros));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&payload, &record->budget_micros));
  SCHEMR_RETURN_IF_ERROR(GetFixed64(&payload, &record->result_digest));
  SCHEMR_RETURN_IF_ERROR(GetVarint32(&payload, &record->result_count));
  SCHEMR_RETURN_IF_ERROR(GetVarint32(&payload, &record->top_k));
  SCHEMR_RETURN_IF_ERROR(GetVarint32(&payload, &record->candidate_pool));
  SCHEMR_RETURN_IF_ERROR(
      GetVarint32(&payload, &record->coarse_only_candidates));
  SCHEMR_RETURN_IF_ERROR(GetVarint32(&payload, &record->dropped_matchers));
  uint32_t flags = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint32(&payload, &flags));
  record->deadline_hit = (flags & 1u) != 0;
  record->has_query_text = (flags & 2u) != 0;
  record->cache_hit = (flags & 4u) != 0;
  if (record->has_query_text) {
    std::string_view keywords, fragment;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &keywords));
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &fragment));
    record->keywords.assign(keywords);
    record->fragment.assign(fragment);
  }
  if ((flags & 8u) != 0) {
    std::string_view request_id;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &request_id));
    record->request_id.assign(request_id);
  }
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes in audit record");
  }
  return Status::OK();
}

AuditLog::AuditLog(std::string dir, AuditLogOptions options)
    : dir_(std::move(dir)), options_(options) {}

AuditLog::~AuditLog() { Close(); }

Result<std::unique_ptr<AuditLog>> AuditLog::Open(std::string dir,
                                                 AuditLogOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create audit dir " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<AuditLog> log(new AuditLog(std::move(dir), options));

  std::vector<uint64_t> ids = ListSegmentIds(log->dir_);
  uint64_t open_id = ids.empty() ? 1 : ids.back();
  uint64_t resume_offset = 0;
  if (!ids.empty()) {
    // Validate the newest segment's tail: scan framed records forward and
    // truncate whatever a crashed writer left dangling, exactly like the
    // kv store's crashed-tail rule. A mid-file flip is left for readers
    // to salvage; the writer just rolls to a fresh segment instead of
    // appending after damage.
    const std::string path = SegmentFileName(log->dir_, open_id);
    auto contents = ReadWholeFile(path);
    if (contents.ok()) {
      size_t offset = 0;
      bool damaged = false;
      while (offset < contents->size()) {
        size_t consumed = 0;
        std::string_view payload;
        if (!ParseFrameAt(*contents, offset, &consumed, &payload)) {
          // Anything between here and EOF that still frames as a record
          // means mid-file damage, not a torn tail.
          for (size_t probe = offset + 1;
               probe + kFramePrelude <= contents->size(); ++probe) {
            size_t c2 = 0;
            std::string_view p2;
            if (ParseFrameAt(*contents, probe, &c2, &p2)) {
              damaged = true;
              break;
            }
          }
          break;
        }
        offset += consumed;
      }
      if (damaged) {
        open_id = ids.back() + 1;  // leave the damaged file for salvage
      } else {
        if (offset < contents->size()) {
          // Torn tail: truncate to the last whole record.
          std::error_code trunc_ec;
          fs::resize_file(path, offset, trunc_ec);
          if (trunc_ec) open_id = ids.back() + 1;
        }
        resume_offset = offset;
        if (resume_offset >= options.max_segment_bytes) {
          open_id = ids.back() + 1;
          resume_offset = 0;
        }
      }
    } else {
      open_id = ids.back() + 1;
    }
  }

  std::lock_guard<std::mutex> lock(log->mutex_);
  log->active_segment_id_ = open_id;
  log->active_bytes_ = resume_offset;
  const std::string path = SegmentFileName(log->dir_, open_id);
  if (FaultInjector::Global().Check("audit/rotate/open") != 0) {
    return Status::IOError("injected fault opening audit segment " + path);
  }
  log->fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log->fd_ < 0) {
    return Status::IOError("cannot open audit segment " + path);
  }
  AuditMetrics::Get().segments->Set(
      static_cast<double>(ListSegmentIds(log->dir_).size()));
  return log;
}

Status AuditLog::RotateLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ++active_segment_id_;
  active_bytes_ = 0;
  if (FaultInjector::Global().Check("audit/rotate/open") != 0) {
    return Status::IOError("injected fault rotating audit segment");
  }
  const std::string path = SegmentFileName(dir_, active_segment_id_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Status::IOError("cannot open audit segment " + path);

  // Retention: delete oldest segments beyond the bound. Deletion failures
  // are ignored (the bound is best-effort, never request-fatal).
  std::vector<uint64_t> ids = ListSegmentIds(dir_);
  if (ids.size() > options_.max_segments) {
    const size_t excess = ids.size() - options_.max_segments;
    for (size_t i = 0; i < excess; ++i) {
      std::error_code ec;
      fs::remove(SegmentFileName(dir_, ids[i]), ec);
    }
  }
  AuditMetrics::Get().segments->Set(
      static_cast<double>(ListSegmentIds(dir_).size()));
  return Status::OK();
}

void AuditLog::AppendLocked(const AuditRecord& record) {
  if (fd_ < 0) return;  // append path disabled by an earlier failure
  std::string payload;
  EncodeAuditRecord(record, &payload);
  std::string frame;
  frame.reserve(kFramePrelude + payload.size());
  PutFixed32(&frame, Crc32Mask(Crc32(payload)));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);

  const AuditMetrics& metrics = AuditMetrics::Get();
  FaultInjector& fi = FaultInjector::Global();
  const ssize_t written =
      fi.Write("audit/append/write", fd_, frame.data(), frame.size());
  if (written != static_cast<ssize_t>(frame.size())) {
    // A short or failed append leaves a torn tail; the next Open (or any
    // reader) truncates/skips it. Disable this segment and try to roll a
    // fresh one so subsequent records still land somewhere.
    metrics.drops->Increment();
    if (written > 0) active_bytes_ += static_cast<uint64_t>(written);
    if (!RotateLocked().ok()) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;  // wedge the appender; reads and serving are unaffected
    }
    return;
  }
  if (options_.sync_on_write &&
      fi.Fsync("audit/append/fsync", fd_) != 0) {
    metrics.drops->Increment();
    return;  // record is written but not durable; keep appending
  }
  active_bytes_ += frame.size();
  metrics.records->Increment();
  metrics.bytes->Increment(frame.size());
  if (active_bytes_ >= options_.max_segment_bytes) {
    if (!RotateLocked().ok() && fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
}

void AuditLog::Record(AuditRecord record) {
  const bool slow =
      record.total_micros >=
      static_cast<uint64_t>(options_.slow_threshold_seconds * 1e6);
  // Query text is retained when the request is worth replaying or
  // debugging by hand: slow, refused, or failed. Fast healthy requests
  // keep only their fingerprint.
  const bool keep_text = slow || IsShedOutcome(record.outcome) ||
                         record.outcome == AuditOutcome::kError;
  if (!keep_text) {
    record.keywords.clear();
    record.fragment.clear();
    record.has_query_text = false;
  } else {
    record.has_query_text = true;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (slow) {
    AuditMetrics::Get().slow->Increment();
    slow_ring_.push_back(record);
    while (slow_ring_.size() > options_.slow_ring_capacity) {
      slow_ring_.pop_front();
    }
  }
  AppendLocked(record);
}

std::vector<AuditRecord> AuditLog::SlowQueries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

void AuditLog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<AuditReadReport> ReadAuditSegment(const std::string& path) {
  SCHEMR_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
  AuditReadReport report;
  report.segments_read = 1;
  size_t offset = 0;
  while (offset < contents.size()) {
    size_t consumed = 0;
    std::string_view payload;
    if (ParseFrameAt(contents, offset, &consumed, &payload)) {
      AuditRecord record;
      if (DecodeAuditRecord(payload, &record).ok()) {
        report.records.push_back(std::move(record));
      } else {
        ++report.skipped_records;
        report.skipped_bytes += consumed;
      }
      offset += consumed;
      continue;
    }
    // Damage at `offset`: resync by scanning forward for the next offset
    // that frames a valid record. If none exists, this is a torn tail.
    size_t resync = offset + 1;
    bool found = false;
    for (; resync + kFramePrelude <= contents.size(); ++resync) {
      size_t c2 = 0;
      std::string_view p2;
      if (ParseFrameAt(contents, resync, &c2, &p2)) {
        found = true;
        break;
      }
    }
    if (!found) {
      report.torn_tail = true;
      report.skipped_bytes += contents.size() - offset;
      break;
    }
    ++report.skipped_records;
    report.skipped_bytes += resync - offset;
    offset = resync;
  }
  return report;
}

Result<AuditReadReport> ReadAuditLog(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError("not an audit directory: " + dir);
  }
  AuditReadReport report;
  for (uint64_t id : ListSegmentIds(dir)) {
    auto segment = ReadAuditSegment(SegmentFileName(dir, id));
    if (!segment.ok()) continue;  // unreadable segment: skip, keep going
    report.segments_read += segment->segments_read;
    report.skipped_records += segment->skipped_records;
    report.skipped_bytes += segment->skipped_bytes;
    report.torn_tail = report.torn_tail || segment->torn_tail;
    for (AuditRecord& r : segment->records) {
      report.records.push_back(std::move(r));
    }
  }
  return report;
}

Result<AuditReadReport> ReadAuditSegmentFrom(const std::string& path,
                                             uint64_t start_offset,
                                             uint64_t* next_offset) {
  SCHEMR_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
  AuditReadReport report;
  report.segments_read = 1;
  *next_offset = start_offset;
  if (start_offset >= contents.size()) return report;
  size_t offset = static_cast<size_t>(start_offset);
  while (offset < contents.size()) {
    size_t consumed = 0;
    std::string_view payload;
    if (ParseFrameAt(contents, offset, &consumed, &payload)) {
      AuditRecord record;
      if (DecodeAuditRecord(payload, &record).ok()) {
        report.records.push_back(std::move(record));
      } else {
        ++report.skipped_records;
        report.skipped_bytes += consumed;
      }
      offset += consumed;
      *next_offset = offset;
      continue;
    }
    // Same resync scan as ReadAuditSegment, but the cursor only advances
    // over damage that is *followed by* a valid record: a tail that does
    // not frame yet may simply be a record the writer has not finished,
    // and must be re-read by the next poll.
    size_t resync = offset + 1;
    bool found = false;
    for (; resync + kFramePrelude <= contents.size(); ++resync) {
      size_t c2 = 0;
      std::string_view p2;
      if (ParseFrameAt(contents, resync, &c2, &p2)) {
        found = true;
        break;
      }
    }
    if (!found) {
      report.torn_tail = true;
      report.skipped_bytes += contents.size() - offset;
      break;  // *next_offset stays parked at the incomplete frame
    }
    ++report.skipped_records;
    report.skipped_bytes += resync - offset;
    offset = resync;
  }
  return report;
}

Result<AuditReadReport> ReadAuditLogFrom(const std::string& dir,
                                         AuditCursor* cursor) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError("not an audit directory: " + dir);
  }
  AuditReadReport report;
  const std::vector<uint64_t> ids = ListSegmentIds(dir);
  if (ids.empty()) return report;
  if (cursor->segment_id < ids.front()) {
    // Retention deleted the cursor's segment out from under us; the
    // records between are gone, resume at the oldest survivor.
    cursor->segment_id = ids.front();
    cursor->offset = 0;
  }
  for (uint64_t id : ids) {
    if (id < cursor->segment_id) continue;
    const uint64_t start = id == cursor->segment_id ? cursor->offset : 0;
    uint64_t next = start;
    auto segment = ReadAuditSegmentFrom(SegmentFileName(dir, id), start, &next);
    if (!segment.ok()) continue;  // unreadable segment: skip, keep going
    report.segments_read += segment->segments_read;
    report.skipped_records += segment->skipped_records;
    report.skipped_bytes += segment->skipped_bytes;
    for (AuditRecord& r : segment->records) {
      report.records.push_back(std::move(r));
    }
    cursor->segment_id = id;
    cursor->offset = next;
    if (segment->torn_tail) {
      if (id == ids.back()) {
        // The live segment ends mid-record: park here and let the next
        // poll pick the record up once the writer finishes it.
        report.torn_tail = true;
        break;
      }
      // A torn tail in a *rotated* segment can never heal (the writer
      // has moved on); consume it so the follow loop cannot wedge.
    }
  }
  return report;
}

bool LooksLikeAuditLog(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return !ListSegmentIds(path).empty();
  const std::string name = fs::path(path).filename().string();
  return name.rfind(kSegmentPrefix, 0) == 0 &&
         name.size() > sizeof(kSegmentSuffix) &&
         name.substr(name.size() - (sizeof(kSegmentSuffix) - 1)) ==
             kSegmentSuffix;
}

}  // namespace schemr
