// Bridges fired faults into the metrics registry.
//
// util/fault_injection.h exposes a process-wide hook so fired faults can
// be observed without a util→obs dependency (the same inversion as
// obs/log_bridge.h over util/logging.h). InstallFaultMetricsBridge wires
// that hook to the `schemr_faults_injected` counter. The store and the
// search engine install it lazily alongside their own metric handles, so
// any process that can reach a fault site is already counting.

#ifndef SCHEMR_OBS_FAULT_BRIDGE_H_
#define SCHEMR_OBS_FAULT_BRIDGE_H_

namespace schemr {

/// Installs (idempotently) a FaultHook that counts every fired fault into
/// the schemr_faults_injected counter of the global registry.
void InstallFaultMetricsBridge();

}  // namespace schemr

#endif  // SCHEMR_OBS_FAULT_BRIDGE_H_
