#include "obs/trace.h"

#include <cassert>
#include <cstdio>

namespace schemr {

namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

size_t SearchTrace::BeginSpan(std::string_view name) {
  SpanRecord span;
  span.name = std::string(name);
  span.parent = open_stack_.empty() ? kNoParent : open_stack_.back();
  spans_.push_back(std::move(span));
  const size_t id = spans_.size() - 1;
  open_stack_.push_back(id);
  return id;
}

void SearchTrace::EndSpan(size_t id, double seconds) {
  assert(id < spans_.size());
  assert(!open_stack_.empty() && open_stack_.back() == id);
  spans_[id].seconds = seconds;
  if (!open_stack_.empty() && open_stack_.back() == id) {
    open_stack_.pop_back();
  }
}

size_t SearchTrace::AddSpan(std::string_view name, double seconds,
                            size_t parent) {
  SpanRecord span;
  span.name = std::string(name);
  span.parent = parent != kNoParent
                    ? parent
                    : (open_stack_.empty() ? kNoParent : open_stack_.back());
  span.seconds = seconds;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void SearchTrace::Annotate(size_t id, std::string_view key,
                           std::string_view value) {
  assert(id < spans_.size());
  spans_[id].annotations.push_back(
      TraceAnnotation{std::string(key), std::string(value)});
}

void SearchTrace::Annotate(size_t id, std::string_view key, double value) {
  Annotate(id, key, std::string_view(FormatDouble(value)));
}

void SearchTrace::Annotate(size_t id, std::string_view key, uint64_t value) {
  Annotate(id, key, std::string_view(std::to_string(value)));
}

std::vector<size_t> SearchTrace::ChildrenOf(size_t id) const {
  std::vector<size_t> children;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == id) children.push_back(i);
  }
  return children;
}

std::string SearchTrace::ToString() const {
  std::string out;
  // Depth-first over the span tree, preserving record order per level.
  std::vector<std::pair<size_t, size_t>> stack;  // (span, depth), reversed
  std::vector<size_t> roots = ChildrenOf(kNoParent);
  for (size_t i = roots.size(); i-- > 0;) stack.emplace_back(roots[i], 0);
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans_[id];
    out.append(depth * 2, ' ');
    out += span.name;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.3fms", span.seconds * 1e3);
    out += buf;
    if (!span.annotations.empty()) {
      out += " [";
      for (size_t i = 0; i < span.annotations.size(); ++i) {
        if (i > 0) out += ' ';
        out += span.annotations[i].key;
        out += '=';
        out += span.annotations[i].value;
      }
      out += ']';
    }
    out += '\n';
    std::vector<size_t> children = ChildrenOf(id);
    for (size_t i = children.size(); i-- > 0;) {
      stack.emplace_back(children[i], depth + 1);
    }
  }
  return out;
}

}  // namespace schemr
