// Windowed telemetry and tail-based trace retention (DESIGN.md §12).
//
// The metrics registry (obs/metrics.h) accumulates lifetime totals; a
// live introspection plane needs *current* rates and percentiles ("what
// is the p99 right now", not "since the process started"). Two
// primitives provide that:
//
//   * MetricsSnapshotRing + TelemetrySampler — a background thread
//     periodically copies the whole registry (MetricsRegistry::Collect)
//     into a lock-free ring of immutable samples. A windowed view (1m /
//     5m / 15m) is the delta between the newest sample and the newest
//     sample at least that old: counter deltas become rates, histogram
//     bucket deltas become window-local percentiles. Readers touch only
//     atomic shared_ptr loads; the sampler never blocks a request.
//
//   * TraceRetention — always-on tail-sampled tracing. The serving path
//     traces one request in every sample_every_n (a deterministic
//     counter, no RNG), and every completed request — traced or not —
//     is offered for retention. Bounded per-category rings preferentially
//     keep the interesting tail: errored, shed, and degraded requests are
//     always retained (metadata-only when untraced), the slow ring keeps
//     the N *slowest* rather than the N newest, and healthy fast requests
//     land in a recent-samples ring only when they carried a trace.
//     Default wire responses stay byte-identical: a sampled trace is
//     engine-internal state, never serialized into the response.
//
// Both feed the HTTP introspection endpoints (/statusz, /tracez); see
// service/http_introspection.h.

#ifndef SCHEMR_OBS_TELEMETRY_H_
#define SCHEMR_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_shared_ptr.h"

namespace schemr {

/// One periodic copy of the whole registry, stamped with a monotonic
/// clock reading. Immutable once published.
struct MetricsSample {
  double monotonic_seconds = 0.0;  ///< steady-clock time of the sample
  std::vector<MetricsRegistry::MetricSnapshot> metrics;  ///< name-sorted

  /// The snapshot named `name`, or null.
  const MetricsRegistry::MetricSnapshot* Find(std::string_view name) const;
};

/// Fixed-capacity ring of immutable samples. One writer (the sampler),
/// any number of readers: slots are swappable shared_ptrs
/// (AtomicSharedPtr — a per-slot micro-mutex held only for the pointer
/// copy) and the head index is a monotone counter, so a reader sees
/// either the old or the new sample in a slot, never a torn one.
class MetricsSnapshotRing {
 public:
  explicit MetricsSnapshotRing(size_t capacity);

  void Push(std::shared_ptr<const MetricsSample> sample);

  /// The most recently pushed sample, or null when empty.
  std::shared_ptr<const MetricsSample> Newest() const;

  /// The newest sample at least `age_seconds` older than the newest one
  /// (the window anchor): the window [anchor, newest] then covers at
  /// least the asked-for age, as closely as the ring's resolution allows.
  /// Falls back to the oldest retained sample when nothing is old enough;
  /// null when the ring holds fewer than two samples.
  std::shared_ptr<const MetricsSample> WindowAnchor(double age_seconds) const;

  size_t capacity() const { return capacity_; }
  /// Samples currently retained (caps at capacity()).
  size_t size() const;

 private:
  const size_t capacity_;
  std::vector<AtomicSharedPtr<const MetricsSample>> slots_;
  std::atomic<uint64_t> pushed_{0};  ///< total pushes; head = pushed_ - 1
};

/// One metric's view over a window: counters as rates, gauges as their
/// newest value, histograms as the delta distribution's percentiles.
struct WindowedMetric {
  std::string name;
  MetricsRegistry::MetricKind kind = MetricsRegistry::MetricKind::kCounter;
  double rate_per_second = 0.0;  ///< counter delta / window seconds
  double gauge_value = 0.0;      ///< newest value (gauges)
  uint64_t delta_count = 0;      ///< histogram observations in the window
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< window-local percentiles
};

/// A whole-registry window. `window_seconds` is the actual span between
/// the two samples (it can exceed the asked-for window by up to one
/// sampling interval, and undershoots only when the ring is young).
struct WindowedView {
  double window_seconds = 0.0;
  std::vector<WindowedMetric> metrics;  ///< name-sorted

  const WindowedMetric* Find(std::string_view name) const;
};

/// Diffs two samples into a windowed view. Metrics present only in
/// `newer` (registered mid-window) are rated over the full window;
/// negative deltas (a Reset between samples) clamp to zero.
WindowedView ComputeWindow(const MetricsSample& older,
                           const MetricsSample& newer);

struct TelemetryOptions {
  /// Seconds between registry snapshots.
  double sample_interval_seconds = 1.0;
  /// Samples retained; capacity × interval bounds the largest window
  /// (default ≈ 17 minutes at 1s, covering the 15m window with slack).
  size_t ring_capacity = 1024;
};

/// Owns the sampling thread and the ring. Start/Stop are idempotent and
/// Stop is safe under concurrent callers (exactly one joins the
/// sampler thread; later callers return without waiting for it);
/// SampleNow is exposed so tests (and the CLI) can sample synchronously
/// without a thread.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryOptions options = {},
                            const MetricsRegistry* registry = nullptr);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void Start();
  void Stop();

  /// Takes one snapshot immediately and pushes it into the ring.
  std::shared_ptr<const MetricsSample> SampleNow();

  std::shared_ptr<const MetricsSample> Newest() const;

  /// The windowed view covering (approximately) the last
  /// `window_seconds`. Empty view (window_seconds == 0) until the ring
  /// holds two samples.
  WindowedView Window(double window_seconds) const;

  /// Seconds since this sampler was constructed (the serving uptime).
  double UptimeSeconds() const;

  const TelemetryOptions& options() const { return options_; }

 private:
  void SamplerLoop();

  const TelemetryOptions options_;
  const MetricsRegistry* registry_;  ///< defaults to the global registry
  MetricsSnapshotRing ring_;
  const double start_monotonic_;

  std::mutex mutex_;
  std::condition_variable wake_;
  bool running_ = false;  ///< guarded by mutex_
  bool stop_ = false;     ///< guarded by mutex_
  std::thread thread_;
};

/// Which retention ring a completed request landed in.
enum class TraceCategory : uint8_t {
  kRecent = 0,    ///< healthy + fast, retained because it was sampled
  kSlow = 1,      ///< over the slow threshold (keeps the N slowest)
  kDegraded = 2,  ///< served degraded (matcher dropped / deadline)
  kError = 3,     ///< pipeline returned non-OK
  kShed = 4,      ///< refused by admission (or cancelled by drain)
};

/// Stable lowercase name ("recent", "slow", "degraded", "error", "shed").
const char* TraceCategoryName(TraceCategory category);

/// One retained request. `spans` is filled only for requests that carried
/// a live SearchTrace (`sampled`); interesting outcomes are retained
/// metadata-only otherwise.
struct RetainedTrace {
  uint64_t timestamp_micros = 0;
  uint64_t fingerprint = 0;
  TraceCategory category = TraceCategory::kRecent;
  std::string outcome;  ///< AuditOutcomeName vocabulary ("ok", "shed_*", ...)
  double total_seconds = 0.0;
  bool cache_hit = false;
  bool sampled = false;
  /// Fleet-wide request id (DESIGN.md §15) — the join key `schemr trace`
  /// uses to stitch coordinator hop journals to replica traces. Empty
  /// for requests that entered below the HTTP layer.
  std::string request_id;
  /// SearchTrace::ToString() captured at retention time (multi-line).
  /// The coordinator reuses this for its hop journal (one line per
  /// backend attempt).
  std::string spans;
};

struct TraceRetentionOptions {
  /// Trace one request in every N (deterministic). 0 disables sampling;
  /// interesting outcomes are still retained metadata-only.
  uint32_t sample_every_n = 16;
  /// Per-category ring bound.
  size_t ring_capacity = 32;
  /// At or above this total latency a request is classified slow.
  double slow_threshold_seconds = 0.25;
};

/// Thread-safe bounded retention of completed-request traces. The lock is
/// taken once per retained offer (comparable to the audit log's append
/// mutex); ShouldSample is a single relaxed fetch_add.
class TraceRetention {
 public:
  explicit TraceRetention(TraceRetentionOptions options = {});

  /// True when the caller should attach a SearchTrace to this request.
  bool ShouldSample();

  /// Offers one completed request. Classifies it (error/shed/degraded by
  /// outcome, slow by latency, recent otherwise) and retains it unless it
  /// is a healthy fast request that carried no trace. The slow ring keeps
  /// the slowest entries seen, not the newest.
  void Retain(RetainedTrace record);

  /// Every retained trace, grouped by category (rings in insertion
  /// order; the slow ring slowest-first).
  std::vector<RetainedTrace> Snapshot() const;

  struct Stats {
    uint64_t offered = 0;   ///< Retain calls
    uint64_t sampled = 0;   ///< requests that carried a trace
    uint64_t retained = 0;  ///< offers that entered a ring
  };
  Stats GetStats() const;

  /// The /tracez body: {"stats": {...}, "traces": [...]}.
  std::string ToJson() const;

  const TraceRetentionOptions& options() const { return options_; }

 private:
  /// Appends to a FIFO ring, evicting the oldest beyond capacity.
  void PushBounded(std::deque<RetainedTrace>* ring, RetainedTrace record);

  const TraceRetentionOptions options_;
  std::atomic<uint64_t> sample_counter_{0};

  mutable std::mutex mutex_;
  std::deque<RetainedTrace> recent_;
  std::deque<RetainedTrace> degraded_;
  std::deque<RetainedTrace> error_;
  std::deque<RetainedTrace> shed_;
  /// Kept sorted slowest-first; admission replaces the fastest entry.
  std::vector<RetainedTrace> slow_;
  uint64_t offered_ = 0;
  uint64_t sampled_ = 0;
  uint64_t retained_ = 0;
};

/// Appends `text` to `*out` with JSON string escaping (quote, backslash,
/// control characters). Shared by the introspection JSON emitters.
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace schemr

#endif  // SCHEMR_OBS_TELEMETRY_H_
