// Bridges the util logging sink into the metrics registry.
//
// The library logger (util/logging.h) writes to stderr by default; a
// service that wants visibility into library warnings installs this sink
// so every emitted line also bumps `schemr_log_messages_total` /
// `schemr_log_warnings_total` / `schemr_log_errors_total`.

#ifndef SCHEMR_OBS_LOG_BRIDGE_H_
#define SCHEMR_OBS_LOG_BRIDGE_H_

namespace schemr {

/// Installs a process-wide log sink that counts messages by level into
/// MetricsRegistry::Global() and still forwards the line to stderr.
/// Calling SetLogSink(nullptr) afterwards restores the plain default.
void InstallMetricsLogSink();

}  // namespace schemr

#endif  // SCHEMR_OBS_LOG_BRIDGE_H_
