#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace schemr {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TelemetryMetrics {
  Counter* samples;
  Counter* traces_sampled;
  Counter* traces_retained;

  static const TelemetryMetrics& Get() {
    static const TelemetryMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new TelemetryMetrics{
          r.GetCounter("schemr_telemetry_samples_total",
                       "Registry snapshots taken by the telemetry sampler."),
          r.GetCounter("schemr_traces_sampled_total",
                       "Requests that carried an always-on sampled trace."),
          r.GetCounter("schemr_traces_retained_total",
                       "Completed requests retained by a trace ring."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

const MetricsRegistry::MetricSnapshot* MetricsSample::Find(
    std::string_view name) const {
  // Collect() returns name-sorted snapshots, so binary search applies.
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricsRegistry::MetricSnapshot& m, std::string_view n) {
        return m.name < n;
      });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

MetricsSnapshotRing::MetricsSnapshotRing(size_t capacity)
    : capacity_(std::max<size_t>(2, capacity)), slots_(capacity_) {}

void MetricsSnapshotRing::Push(std::shared_ptr<const MetricsSample> sample) {
  const uint64_t index = pushed_.load(std::memory_order_relaxed);
  slots_[index % capacity_].store(std::move(sample));
  // Publish after the slot write: a reader that sees the new count finds
  // the new sample in its slot.
  pushed_.store(index + 1, std::memory_order_release);
}

std::shared_ptr<const MetricsSample> MetricsSnapshotRing::Newest() const {
  const uint64_t count = pushed_.load(std::memory_order_acquire);
  if (count == 0) return nullptr;
  return slots_[(count - 1) % capacity_].load();
}

std::shared_ptr<const MetricsSample> MetricsSnapshotRing::WindowAnchor(
    double age_seconds) const {
  const uint64_t count = pushed_.load(std::memory_order_acquire);
  if (count < 2) return nullptr;
  auto newest = slots_[(count - 1) % capacity_].load();
  if (newest == nullptr) return nullptr;
  const double anchor_time = newest->monotonic_seconds - age_seconds;
  // Scan oldest→newest; the first sample at or under the anchor age is
  // the closest one that still covers the window. A concurrent Push can
  // overwrite the oldest slot mid-scan; a null or newer-than-expected
  // sample there is simply skipped (the window just shrinks by a slot).
  const uint64_t oldest = count > capacity_ ? count - capacity_ : 0;
  std::shared_ptr<const MetricsSample> fallback;
  for (uint64_t i = oldest; i + 1 < count; ++i) {
    auto sample = slots_[i % capacity_].load();
    if (sample == nullptr || sample == newest) continue;
    if (fallback == nullptr ||
        sample->monotonic_seconds < fallback->monotonic_seconds) {
      fallback = sample;
    }
    if (sample->monotonic_seconds >= anchor_time) return sample;
  }
  return fallback;
}

size_t MetricsSnapshotRing::size() const {
  const uint64_t count = pushed_.load(std::memory_order_acquire);
  return static_cast<size_t>(std::min<uint64_t>(count, capacity_));
}

const WindowedMetric* WindowedView::Find(std::string_view name) const {
  auto it = std::lower_bound(metrics.begin(), metrics.end(), name,
                             [](const WindowedMetric& m, std::string_view n) {
                               return m.name < n;
                             });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

WindowedView ComputeWindow(const MetricsSample& older,
                           const MetricsSample& newer) {
  WindowedView view;
  view.window_seconds =
      std::max(1e-9, newer.monotonic_seconds - older.monotonic_seconds);
  view.metrics.reserve(newer.metrics.size());
  for (const MetricsRegistry::MetricSnapshot& now : newer.metrics) {
    const MetricsRegistry::MetricSnapshot* then = older.Find(now.name);
    WindowedMetric m;
    m.name = now.name;
    m.kind = now.kind;
    switch (now.kind) {
      case MetricsRegistry::MetricKind::kCounter: {
        const uint64_t before = then != nullptr ? then->counter_value : 0;
        const uint64_t delta =
            now.counter_value > before ? now.counter_value - before : 0;
        m.rate_per_second = static_cast<double>(delta) / view.window_seconds;
        break;
      }
      case MetricsRegistry::MetricKind::kGauge:
        m.gauge_value = now.gauge_value;
        break;
      case MetricsRegistry::MetricKind::kHistogram: {
        HistogramSnapshot delta;
        delta.bounds = now.histogram.bounds;
        delta.buckets.resize(now.histogram.buckets.size(), 0);
        const bool comparable =
            then != nullptr &&
            then->histogram.buckets.size() == now.histogram.buckets.size();
        for (size_t i = 0; i < now.histogram.buckets.size(); ++i) {
          const uint64_t before = comparable ? then->histogram.buckets[i] : 0;
          delta.buckets[i] = now.histogram.buckets[i] > before
                                 ? now.histogram.buckets[i] - before
                                 : 0;
          delta.count += delta.buckets[i];
        }
        m.delta_count = delta.count;
        m.rate_per_second =
            static_cast<double>(delta.count) / view.window_seconds;
        if (delta.count > 0) {
          m.p50 = delta.Quantile(0.50);
          m.p95 = delta.Quantile(0.95);
          m.p99 = delta.Quantile(0.99);
        }
        break;
      }
    }
    view.metrics.push_back(std::move(m));
  }
  return view;
}

TelemetrySampler::TelemetrySampler(TelemetryOptions options,
                                   const MetricsRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      ring_(options.ring_capacity),
      start_monotonic_(MonotonicSeconds()) {}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&TelemetrySampler::SamplerLoop, this);
}

void TelemetrySampler::Stop() {
  // Claim the thread handle under the lock so concurrent Stop() calls
  // race for it; exactly one caller joins, the rest return immediately.
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    worker = std::move(thread_);
  }
  wake_.notify_all();
  worker.join();
}

std::shared_ptr<const MetricsSample> TelemetrySampler::SampleNow() {
  auto sample = std::make_shared<MetricsSample>();
  sample->monotonic_seconds = MonotonicSeconds();
  sample->metrics = registry_->Collect();
  ring_.Push(sample);
  TelemetryMetrics::Get().samples->Increment();
  return sample;
}

std::shared_ptr<const MetricsSample> TelemetrySampler::Newest() const {
  return ring_.Newest();
}

WindowedView TelemetrySampler::Window(double window_seconds) const {
  auto newest = ring_.Newest();
  auto anchor = ring_.WindowAnchor(window_seconds);
  if (newest == nullptr || anchor == nullptr || anchor == newest) return {};
  // A push racing the two loads above can hand back an anchor taken after
  // `newest`; an inverted window is noise, not data.
  if (anchor->monotonic_seconds >= newest->monotonic_seconds) return {};
  return ComputeWindow(*anchor, *newest);
}

double TelemetrySampler::UptimeSeconds() const {
  return MonotonicSeconds() - start_monotonic_;
}

void TelemetrySampler::SamplerLoop() {
  const auto interval = std::chrono::duration<double>(
      std::max(0.01, options_.sample_interval_seconds));
  SampleNow();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kRecent:
      return "recent";
    case TraceCategory::kSlow:
      return "slow";
    case TraceCategory::kDegraded:
      return "degraded";
    case TraceCategory::kError:
      return "error";
    case TraceCategory::kShed:
      return "shed";
  }
  return "unknown";
}

TraceRetention::TraceRetention(TraceRetentionOptions options)
    : options_(options) {}

bool TraceRetention::ShouldSample() {
  if (options_.sample_every_n == 0) return false;
  const uint64_t n =
      sample_counter_.fetch_add(1, std::memory_order_relaxed);
  const bool sample = n % options_.sample_every_n == 0;
  if (sample) TelemetryMetrics::Get().traces_sampled->Increment();
  return sample;
}

void TraceRetention::PushBounded(std::deque<RetainedTrace>* ring,
                                 RetainedTrace record) {
  ring->push_back(std::move(record));
  while (ring->size() > options_.ring_capacity) ring->pop_front();
  ++retained_;
  TelemetryMetrics::Get().traces_retained->Increment();
}

void TraceRetention::Retain(RetainedTrace record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++offered_;
  if (record.sampled) ++sampled_;

  if (record.outcome == "error") {
    record.category = TraceCategory::kError;
    PushBounded(&error_, std::move(record));
  } else if (record.outcome.rfind("shed", 0) == 0 ||
             record.outcome == "cancelled") {
    record.category = TraceCategory::kShed;
    PushBounded(&shed_, std::move(record));
  } else if (record.outcome == "degraded") {
    record.category = TraceCategory::kDegraded;
    PushBounded(&degraded_, std::move(record));
  } else if (record.total_seconds >= options_.slow_threshold_seconds) {
    // Tail preference: the ring keeps the slowest requests seen, not the
    // newest — a burst of merely-threshold-slow requests cannot flush the
    // genuinely pathological one.
    record.category = TraceCategory::kSlow;
    const auto slower = [](const RetainedTrace& a, const RetainedTrace& b) {
      return a.total_seconds > b.total_seconds;
    };
    if (slow_.size() < options_.ring_capacity) {
      slow_.push_back(std::move(record));
      std::sort(slow_.begin(), slow_.end(), slower);
      ++retained_;
      TelemetryMetrics::Get().traces_retained->Increment();
    } else if (!slow_.empty() &&
               record.total_seconds > slow_.back().total_seconds) {
      slow_.back() = std::move(record);
      std::sort(slow_.begin(), slow_.end(), slower);
      ++retained_;
      TelemetryMetrics::Get().traces_retained->Increment();
    }
  } else if (record.sampled) {
    record.category = TraceCategory::kRecent;
    PushBounded(&recent_, std::move(record));
  }
  // else: healthy, fast, untraced — nothing worth keeping.
}

std::vector<RetainedTrace> TraceRetention::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RetainedTrace> all;
  all.reserve(error_.size() + shed_.size() + degraded_.size() + slow_.size() +
              recent_.size());
  for (const auto& r : error_) all.push_back(r);
  for (const auto& r : shed_) all.push_back(r);
  for (const auto& r : degraded_) all.push_back(r);
  for (const auto& r : slow_) all.push_back(r);
  for (const auto& r : recent_) all.push_back(r);
  return all;
}

TraceRetention::Stats TraceRetention::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{offered_, sampled_, retained_};
}

std::string TraceRetention::ToJson() const {
  const Stats stats = GetStats();
  const std::vector<RetainedTrace> traces = Snapshot();
  std::string out = "{\n  \"stats\": {";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"offered\": %llu, \"sampled\": %llu, \"retained\": %llu, "
                "\"sample_every_n\": %u}",
                static_cast<unsigned long long>(stats.offered),
                static_cast<unsigned long long>(stats.sampled),
                static_cast<unsigned long long>(stats.retained),
                options_.sample_every_n);
  out += buf;
  out += ",\n  \"traces\": [";
  for (size_t i = 0; i < traces.size(); ++i) {
    const RetainedTrace& t = traces[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"category\": \"%s\", \"outcome\": \"",
                  TraceCategoryName(t.category));
    out += buf;
    AppendJsonEscaped(&out, t.outcome);
    std::snprintf(buf, sizeof(buf),
                  "\", \"timestamp_micros\": %llu, \"fingerprint\": "
                  "\"%016llx\", \"total_ms\": %.3f, \"cache_hit\": %s, "
                  "\"sampled\": %s, \"request_id\": \"",
                  static_cast<unsigned long long>(t.timestamp_micros),
                  static_cast<unsigned long long>(t.fingerprint),
                  t.total_seconds * 1e3, t.cache_hit ? "true" : "false",
                  t.sampled ? "true" : "false");
    out += buf;
    AppendJsonEscaped(&out, t.request_id);
    out += "\", \"spans\": \"";
    AppendJsonEscaped(&out, t.spans);
    out += "\"}";
  }
  out += traces.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace schemr
