#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace schemr {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then walk the buckets.
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      // The +Inf bucket has no finite width; report its lower bound.
      if (i >= bounds.size()) return lower;
      const double upper = bounds[i];
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * within;
    }
    seen = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1e-5,   2.5e-5, 5e-5,   1e-4,   2.5e-4, 5e-4,   1e-3,  2.5e-3,
      5e-3,   1e-2,   2.5e-2, 5e-2,   1e-1,   2.5e-1, 5e-1,  1.0,
      2.5,    5.0,    10.0};
  return *bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.kind == MetricKind::kCounter);
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.kind == MetricKind::kGauge);
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(bounds);
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.kind == MetricKind::kHistogram);
  return it->second.histogram.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

std::vector<MetricsRegistry::MetricSnapshot> MetricsRegistry::Collect()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = entry.help;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counter_value = entry.counter->Value();
        break;
      case MetricKind::kGauge:
        snap.gauge_value = entry.gauge->Value();
        break;
      case MetricKind::kHistogram:
        snap.histogram = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace schemr
