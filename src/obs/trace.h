// Per-request tracing for the search pipeline.
//
// A SearchTrace collects a tree of timed spans for one request: the
// search engine opens a root "search" span, one child per pipeline phase,
// and per-matcher children under the match phase. Spans carry string
// annotations (pool sizes, candidates pruned, penalty totals) that the
// explain mode embeds into the XML response and the CLI pretty-prints.
//
// A SearchTrace is single-request, single-threaded state (one per Search
// call); the RAII TraceSpan tolerates a null trace so untraced requests
// pay only a pointer test.

#ifndef SCHEMR_OBS_TRACE_H_
#define SCHEMR_OBS_TRACE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace schemr {

struct TraceAnnotation {
  std::string key;
  std::string value;
};

/// One recorded span. `parent` is an index into SearchTrace::spans(), or
/// SearchTrace::kNoParent for the root.
struct SpanRecord {
  std::string name;
  size_t parent = static_cast<size_t>(-1);
  double seconds = 0.0;
  std::vector<TraceAnnotation> annotations;
};

class SearchTrace {
 public:
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  /// Opens a span nested under the innermost still-open span. Returns its
  /// id (stable index into spans()).
  size_t BeginSpan(std::string_view name);

  /// Closes span `id` with the given duration. Spans must close in LIFO
  /// order (guaranteed by TraceSpan).
  void EndSpan(size_t id, double seconds);

  /// Records an already-measured span as a child of the innermost open
  /// span (or of `parent` when given). Used for aggregate phase timings
  /// accumulated across a candidate loop.
  size_t AddSpan(std::string_view name, double seconds,
                 size_t parent = kNoParent);

  void Annotate(size_t id, std::string_view key, std::string_view value);
  void Annotate(size_t id, std::string_view key, double value);
  void Annotate(size_t id, std::string_view key, uint64_t value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// Children of span `id` (kNoParent lists the roots), in record order.
  std::vector<size_t> ChildrenOf(size_t id) const;

  /// Indented human-readable rendering, one span per line:
  ///   search 12.1ms
  ///     phase1_extract 0.8ms [pool_size=50]
  std::string ToString() const;

 private:
  std::vector<SpanRecord> spans_;
  std::vector<size_t> open_stack_;
};

/// RAII span: begins on construction, records elapsed wall time when
/// destroyed (or ended explicitly). No-op when `trace` is null.
class TraceSpan {
 public:
  TraceSpan(SearchTrace* trace, std::string_view name)
      : trace_(trace), id_(trace ? trace->BeginSpan(name) : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// Closes the span early (idempotent).
  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_, timer_.ElapsedSeconds());
      trace_ = nullptr;
    }
  }

  template <typename V>
  void Annotate(std::string_view key, V value) {
    if (trace_ != nullptr) trace_->Annotate(id_, key, value);
  }

  size_t id() const { return id_; }

 private:
  SearchTrace* trace_;
  size_t id_;
  Timer timer_;
};

}  // namespace schemr

#endif  // SCHEMR_OBS_TRACE_H_
