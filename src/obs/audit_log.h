// Per-request query audit log (DESIGN.md §10).
//
// An always-on, bounded, binary-framed log of every search request the
// service handled: a normalized query fingerprint, the admission outcome
// (ok / degraded / shed / error), per-phase latencies, the result-set
// digest, and deadline/budget context. It is the bridge from production
// telemetry back to benchmarks: `schemr audit` aggregates it, and the
// replay engine (obs/replay.h) re-executes recorded workloads from it.
//
// Storage contract — same family as the kv-store segments:
//   * Records append to numbered segment files (audit-000001.log …) under
//     one directory; a segment rolls over at max_segment_bytes and the
//     oldest segments are deleted beyond max_segments, so the log is
//     bounded no matter how long the process serves.
//   * Every record is self-validating: fixed32 masked CRC + fixed32
//     length + payload. A torn tail (crash mid-append) is truncated away
//     on the next Open; a flipped byte mid-segment is quarantined by the
//     reader, which resyncs to the next valid record and reports exactly
//     what it skipped. Audit damage never takes the service down.
//   * Appends go through the fault-injection shims (sites
//     "audit/append/write", "audit/append/fsync", "audit/rotate/open");
//     an append failure drops the record, bumps schemr_audit_drops_total,
//     and disables the failed segment — it NEVER fails the request being
//     served.
//
// A slow-query ring buffer rides along: requests whose total latency
// crosses slow_threshold_seconds keep their full query text, both in an
// in-memory ring (live introspection) and inline in the persisted record
// (so `schemr audit slow` and workload replay work across processes).
//
// Thread safety: Record() is safe from any thread (one internal mutex;
// the serving path holds it only to frame + append one record).

#ifndef SCHEMR_OBS_AUDIT_LOG_H_
#define SCHEMR_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace schemr {

/// Terminal classification of one handled request. Shed values mirror
/// ShedReason (service/admission.h) one-to-one; the mapping lives in
/// exactly one place (service/schemr_service.cc) so the metrics, the XML
/// error code, and this byte always agree.
enum class AuditOutcome : uint8_t {
  kOk = 0,            ///< full pipeline, nothing given up
  kDegraded = 1,      ///< served, but SearchStats::ComputeDegraded() fired
  kError = 2,         ///< pipeline returned non-OK (parse error, ...)
  kShedQueueFull = 3, ///< refused: queue bound
  kShedDeadline = 4,  ///< refused: infeasible deadline
  kShedDrain = 5,     ///< refused: draining for shutdown
  kCancelled = 6,     ///< admitted but cancelled by the shutdown drain
};

/// Stable lowercase name ("ok", "degraded", "shed_queue_full", ...).
const char* AuditOutcomeName(AuditOutcome outcome);

/// True for the three kShed* values.
bool IsShedOutcome(AuditOutcome outcome);

/// One audited request. Times are in microseconds (micros fit uint64 and
/// keep records compact under varint coding).
struct AuditRecord {
  uint64_t timestamp_micros = 0;  ///< wall clock, microseconds since epoch
  uint64_t fingerprint = 0;       ///< FingerprintQuery / FingerprintRawRequest
  AuditOutcome outcome = AuditOutcome::kOk;
  uint64_t total_micros = 0;      ///< end-to-end handling time
  uint64_t phase1_micros = 0;     ///< candidate extraction
  uint64_t phase2_micros = 0;     ///< matcher ensemble
  uint64_t phase3_micros = 0;     ///< tightness-of-fit
  uint64_t deadline_micros = 0;   ///< deadline the request ran under
  uint64_t budget_micros = 0;     ///< tightened per-matcher budget (0 = none)
  uint64_t result_digest = 0;     ///< DigestResults over the ranked list
  uint32_t result_count = 0;
  uint32_t top_k = 0;
  uint32_t candidate_pool = 0;
  uint32_t coarse_only_candidates = 0;
  uint32_t dropped_matchers = 0;
  bool deadline_hit = false;
  /// Served from the engine's snapshot-keyed result cache; no pipeline
  /// phase ran (phase micros are zero).
  bool cache_hit = false;
  /// Full query text, retained only for slow (or shed/error) requests;
  /// empty strings otherwise. `has_query_text` distinguishes "fast
  /// request, text elided" from "empty query".
  bool has_query_text = false;
  std::string keywords;
  std::string fragment;
  /// Fleet-wide request id (DESIGN.md §15), the join key against
  /// coordinator hop journals and replica traces. Empty on records
  /// written before the id existed (or by non-HTTP entry points);
  /// persisted as a trailing optional field, so old segments decode
  /// unchanged.
  std::string request_id;
};

/// Serializes one record payload (without framing); the inverse of
/// DecodeAuditRecord. Exposed for tests and the replay engine.
void EncodeAuditRecord(const AuditRecord& record, std::string* out);
Status DecodeAuditRecord(std::string_view payload, AuditRecord* record);

struct AuditLogOptions {
  /// Active segment rolls over beyond this many bytes.
  uint64_t max_segment_bytes = 4ull << 20;
  /// Oldest segments beyond this count are deleted (the bound).
  size_t max_segments = 4;
  /// Requests at or above this total latency retain full query text and
  /// enter the slow ring.
  double slow_threshold_seconds = 0.25;
  /// In-memory slow ring capacity.
  size_t slow_ring_capacity = 64;
  /// fsync after every record (off by default: audit is telemetry, and
  /// the framing already makes torn tails recoverable).
  bool sync_on_write = false;
};

/// What reading an audit log back had to skip (all zero when clean).
struct AuditReadReport {
  std::vector<AuditRecord> records;
  size_t segments_read = 0;
  size_t skipped_records = 0;   ///< CRC-invalid or undecodable records
  uint64_t skipped_bytes = 0;   ///< bytes quarantined while resyncing
  bool torn_tail = false;       ///< last segment ended mid-record
};

class AuditLog {
 public:
  /// Opens (creating if needed) an audit log rooted at directory `dir`.
  /// Appends continue in the newest existing segment after validating its
  /// tail (torn records from a crashed writer are truncated away).
  static Result<std::unique_ptr<AuditLog>> Open(std::string dir,
                                                AuditLogOptions options = {});

  ~AuditLog();
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one record. Infallible by design: storage errors drop the
  /// record and bump schemr_audit_drops_total instead of surfacing to the
  /// request path. Slow-threshold bookkeeping (text retention, the ring)
  /// happens here: callers fill keywords/fragment unconditionally and
  /// Record decides whether they are kept.
  void Record(AuditRecord record);

  /// The in-memory slow-query ring, newest last.
  std::vector<AuditRecord> SlowQueries() const;

  /// Flushes and closes the active segment (also done by the dtor).
  void Close();

  const AuditLogOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }

 private:
  AuditLog(std::string dir, AuditLogOptions options);

  /// Opens a fresh active segment (rolling `next_segment_id_`), deleting
  /// segments beyond the retention bound. Caller holds mutex_.
  Status RotateLocked();
  void AppendLocked(const AuditRecord& record);

  const std::string dir_;
  const AuditLogOptions options_;

  mutable std::mutex mutex_;
  int fd_ = -1;                   ///< active segment; -1 when disabled
  uint64_t active_segment_id_ = 0;
  uint64_t active_bytes_ = 0;
  std::deque<AuditRecord> slow_ring_;
};

/// Reads every record from the audit log at `dir` (all segments, oldest
/// first), salvaging around damage. IOError only when the directory is
/// unreadable; corrupt content is reported, not fatal.
Result<AuditReadReport> ReadAuditLog(const std::string& dir);

/// Reads one segment file (exposed for tests and LoadWorkload's
/// file-or-directory detection).
Result<AuditReadReport> ReadAuditSegment(const std::string& path);

/// Resume point for incremental tailing (`schemr audit tail --follow`):
/// the next byte to read, as (segment, offset). Value-initialized it
/// reads from the oldest retained segment. Serialize as
/// "<segment_id>:<offset>" if it must cross process restarts.
struct AuditCursor {
  uint64_t segment_id = 0;
  uint64_t offset = 0;
};

/// Reads the records appended since `*cursor` and advances the cursor
/// past everything cleanly consumed. A torn tail (the writer is mid-
/// append, or crashed mid-record) is NOT consumed: the cursor parks at
/// the start of the incomplete frame and the next poll re-reads it —
/// this is what makes polling `--follow` lossless against an active
/// writer. Mid-segment damage is salvaged around (and consumed) exactly
/// like ReadAuditLog. When retention has deleted the cursor's segment,
/// reading resumes at the oldest segment still on disk.
Result<AuditReadReport> ReadAuditLogFrom(const std::string& dir,
                                         AuditCursor* cursor);

/// One segment from `start_offset`. `*next_offset` receives the offset
/// just past the last cleanly-framed record (i.e. where a follow-up read
/// should resume); it does not advance over a torn tail. Exposed for
/// tests.
Result<AuditReadReport> ReadAuditSegmentFrom(const std::string& path,
                                             uint64_t start_offset,
                                             uint64_t* next_offset);

/// True if `path` names an audit segment file or a directory containing
/// at least one ("audit-*.log").
bool LooksLikeAuditLog(const std::string& path);

}  // namespace schemr

#endif  // SCHEMR_OBS_AUDIT_LOG_H_
