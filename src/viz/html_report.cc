#include "viz/html_report.h"

#include <cstdio>

#include "util/string_util.h"

namespace schemr {

std::string WriteHtmlReport(const std::string& title,
                            const std::string& query_description,
                            const std::vector<ReportRow>& rows,
                            const std::vector<ReportPanel>& panels) {
  std::string html;
  html += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  html += "<title>" + XmlEscape(title) + "</title>\n";
  html +=
      "<style>\n"
      "body { font-family: Helvetica, Arial, sans-serif; margin: 24px; }\n"
      ".layout { display: flex; gap: 24px; align-items: flex-start; }\n"
      ".results { min-width: 420px; }\n"
      "table { border-collapse: collapse; width: 100%; }\n"
      "th, td { border: 1px solid #ccc; padding: 6px 10px; "
      "font-size: 13px; text-align: left; }\n"
      "th { background: #f0f4f8; }\n"
      "tr:nth-child(even) { background: #fafafa; }\n"
      ".panels { display: flex; flex-wrap: wrap; gap: 16px; }\n"
      ".panel { border: 1px solid #ddd; padding: 8px; }\n"
      ".panel h3 { margin: 4px 0 8px 0; font-size: 14px; }\n"
      ".query { color: #555; font-size: 14px; margin-bottom: 16px; }\n"
      "</style>\n</head>\n<body>\n";
  html += "<h1>" + XmlEscape(title) + "</h1>\n";
  html += "<div class=\"query\">" + XmlEscape(query_description) + "</div>\n";
  html += "<div class=\"layout\">\n<div class=\"results\">\n";
  html += "<h2>Results</h2>\n<table>\n<tr><th>#</th><th>Name</th>"
          "<th>Score</th><th>Matches</th><th>Entities</th>"
          "<th>Attributes</th><th>Description</th></tr>\n";
  char buf[32];
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReportRow& row = rows[i];
    std::snprintf(buf, sizeof(buf), "%.3f", row.score);
    html += "<tr><td>" + std::to_string(i + 1) + "</td><td>" +
            XmlEscape(row.name) + "</td><td>" + buf + "</td><td>" +
            std::to_string(row.matches) + "</td><td>" +
            std::to_string(row.entities) + "</td><td>" +
            std::to_string(row.attributes) + "</td><td>" +
            XmlEscape(row.description) + "</td></tr>\n";
  }
  html += "</table>\n</div>\n<div class=\"panels\">\n";
  for (const ReportPanel& panel : panels) {
    html += "<div class=\"panel\">\n<h3>" + XmlEscape(panel.heading) +
            "</h3>\n" + panel.svg + "</div>\n";
  }
  html += "</div>\n</div>\n</body>\n</html>\n";
  return html;
}

}  // namespace schemr
