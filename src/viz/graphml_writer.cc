#include "viz/graphml_writer.h"

#include "util/xml_writer.h"

namespace schemr {

namespace {

// Builds "n0"-style element ids without `const char* + std::string&&`,
// which GCC 12 miscompiles into a bogus -Wrestrict error at -O3
// (PR105651) under -Werror.
std::string PrefixedId(char prefix, size_t i) {
  std::string id(1, prefix);
  id += std::to_string(i);
  return id;
}

}  // namespace

std::string WriteGraphMl(const SchemaGraphView& view) {
  XmlWriter xml;
  xml.Open("graphml")
      .Attribute("xmlns", "http://graphml.graphdrawing.org/xmlns");

  // Key declarations.
  struct KeyDef {
    const char* id;
    const char* target;
    const char* name;
    const char* type;
  };
  static constexpr KeyDef kKeys[] = {
      {"d_label", "node", "label", "string"},
      {"d_kind", "node", "kind", "string"},
      {"d_type", "node", "datatype", "string"},
      {"d_score", "node", "score", "double"},
      {"d_collapsed", "node", "collapsed", "boolean"},
      {"d_semantic", "node", "semantic", "string"},
      {"d_x", "node", "x", "double"},
      {"d_y", "node", "y", "double"},
      {"d_fk", "edge", "foreignkey", "boolean"},
  };
  for (const KeyDef& key : kKeys) {
    xml.Open("key")
        .Attribute("id", key.id)
        .Attribute("for", key.target)
        .Attribute("attr.name", key.name)
        .Attribute("attr.type", key.type)
        .Close();
  }

  xml.Open("graph")
      .Attribute("id", view.title.empty() ? "schema" : view.title)
      .Attribute("edgedefault", "directed");

  auto data = [&xml](const char* key, const std::string& value) {
    xml.Open("data").Attribute("key", key).Text(value).Close();
  };

  for (size_t i = 0; i < view.nodes.size(); ++i) {
    const VizNode& node = view.nodes[i];
    xml.Open("node").Attribute("id", PrefixedId('n', i));
    data("d_label", node.label);
    data("d_kind", ElementKindName(node.kind));
    data("d_type", DataTypeName(node.type));
    data("d_score", std::to_string(node.similarity));
    data("d_collapsed", node.collapsed ? "true" : "false");
    if (!node.semantic.empty()) data("d_semantic", node.semantic);
    data("d_x", std::to_string(node.x));
    data("d_y", std::to_string(node.y));
    xml.Close();
  }
  for (size_t i = 0; i < view.edges.size(); ++i) {
    const VizEdge& edge = view.edges[i];
    xml.Open("edge")
        .Attribute("id", PrefixedId('e', i))
        .Attribute("source", PrefixedId('n', edge.from))
        .Attribute("target", PrefixedId('n', edge.to));
    data("d_fk", edge.is_foreign_key ? "true" : "false");
    xml.Close();
  }
  return xml.Finish();
}

}  // namespace schemr
