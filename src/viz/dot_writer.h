// Graphviz DOT export of schema graph views, for quick inspection with
// standard tooling (dot -Tpng, xdot, ...).

#ifndef SCHEMR_VIZ_DOT_WRITER_H_
#define SCHEMR_VIZ_DOT_WRITER_H_

#include <string>

#include "viz/graph_view.h"

namespace schemr {

/// Serializes `view` as a DOT digraph. Node fill colors follow the same
/// kind/similarity encoding as the SVG renderer; foreign keys are dashed.
std::string WriteDot(const SchemaGraphView& view);

}  // namespace schemr

#endif  // SCHEMR_VIZ_DOT_WRITER_H_
