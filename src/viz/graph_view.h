// Graph views: the renderable form of a schema.
//
// The Schemr GUI (paper Fig. 2) shows each result schema as a graph whose
// "node color corresponds to schema element types" with similarity
// visually encoded, capped at depth 3 with drill-in by re-rooting. This
// module builds that view headlessly: a list of positioned nodes and
// edges that the GraphML/DOT/SVG writers serialize.

#ifndef SCHEMR_VIZ_GRAPH_VIEW_H_
#define SCHEMR_VIZ_GRAPH_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "schema/schema.h"

namespace schemr {

/// One displayable node.
struct VizNode {
  ElementId element = kNoElement;
  std::string label;
  ElementKind kind = ElementKind::kAttribute;
  DataType type = DataType::kNone;
  /// Match score S(e) in [0,1]; 0 for unmatched elements.
  double similarity = 0.0;
  /// Codebook semantic label ("latitude", "money", ...); empty when
  /// unclassified. Filled by the service layer, serialized by the
  /// writers.
  std::string semantic;
  /// True when descendants were hidden by the depth cap ("double click to
  /// view its descendants" in the GUI).
  bool collapsed = false;
  size_t depth = 0;
  /// Coordinates assigned by a layout (pixels; origin top-left).
  double x = 0.0;
  double y = 0.0;
};

/// Containment or foreign-key edge between view nodes (indices into
/// SchemaGraphView::nodes).
struct VizEdge {
  size_t from = 0;
  size_t to = 0;
  bool is_foreign_key = false;
};

/// A renderable schema graph.
struct SchemaGraphView {
  std::string title;
  std::vector<VizNode> nodes;
  std::vector<VizEdge> edges;

  /// Index into `nodes` of an element id, or SIZE_MAX.
  size_t NodeIndexOf(ElementId element) const;
};

struct GraphViewOptions {
  /// "To ensure Schemr scales to very large schemas, we cap the displayed
  /// graph depth to 3."
  size_t max_depth = 3;
  /// Drill-in root: display only this element's subtree (re-centered).
  /// kNoElement shows the whole forest.
  ElementId root = kNoElement;
  /// Include foreign-key edges between visible entities.
  bool include_foreign_keys = true;
};

/// Builds a view of `schema`, attaching `element_scores` (element →
/// similarity) for color encoding. Coordinates are left at 0; run a layout
/// afterwards.
SchemaGraphView BuildGraphView(
    const Schema& schema,
    const std::unordered_map<ElementId, double>& element_scores = {},
    const GraphViewOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_VIZ_GRAPH_VIEW_H_
