#include "viz/graphml_reader.h"

#include <cstdlib>
#include <unordered_map>

#include "parse/xml_parser.h"

namespace schemr {

namespace {

/// Resolves <key id=".."> declarations to their attr.name.
std::unordered_map<std::string, std::string> KeyNames(const XmlNode& root) {
  std::unordered_map<std::string, std::string> names;
  for (const XmlNode* key : root.ChildrenNamed("key")) {
    const std::string* id = key->FindAttribute("id");
    const std::string* name = key->FindAttribute("attr.name");
    if (id != nullptr && name != nullptr) names[*id] = *name;
  }
  return names;
}

}  // namespace

Result<SchemaGraphView> ReadGraphMl(std::string_view graphml) {
  SCHEMR_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(graphml));
  if (doc.root->LocalName() != "graphml") {
    return Status::ParseError("root element is not <graphml>");
  }
  const XmlNode* graph = doc.root->FirstChild("graph");
  if (graph == nullptr) {
    return Status::ParseError("GraphML has no <graph> element");
  }
  std::unordered_map<std::string, std::string> key_names = KeyNames(*doc.root);

  SchemaGraphView view;
  if (const std::string* id = graph->FindAttribute("id")) view.title = *id;

  std::unordered_map<std::string, size_t> node_index;
  for (const XmlNode* node_el : graph->ChildrenNamed("node")) {
    const std::string* id = node_el->FindAttribute("id");
    if (id == nullptr) return Status::ParseError("node without id");
    VizNode node;
    node.element = static_cast<ElementId>(view.nodes.size());
    for (const XmlNode* data : node_el->ChildrenNamed("data")) {
      const std::string* key = data->FindAttribute("key");
      if (key == nullptr) continue;
      auto name_it = key_names.find(*key);
      if (name_it == key_names.end()) continue;
      const std::string& name = name_it->second;
      const std::string& value = data->text;
      if (name == "label") {
        node.label = value;
      } else if (name == "kind") {
        node.kind = value == "entity" ? ElementKind::kEntity
                                      : ElementKind::kAttribute;
      } else if (name == "score") {
        node.similarity = std::strtod(value.c_str(), nullptr);
      } else if (name == "collapsed") {
        node.collapsed = (value == "true" || value == "1");
      } else if (name == "semantic") {
        node.semantic = value;
      } else if (name == "x") {
        node.x = std::strtod(value.c_str(), nullptr);
      } else if (name == "y") {
        node.y = std::strtod(value.c_str(), nullptr);
      } else if (name == "datatype") {
        for (int t = 0; t <= static_cast<int>(DataType::kBinary); ++t) {
          if (value == DataTypeName(static_cast<DataType>(t))) {
            node.type = static_cast<DataType>(t);
            break;
          }
        }
      }
    }
    if (!node_index.emplace(*id, view.nodes.size()).second) {
      return Status::ParseError("duplicate node id '" + *id + "'");
    }
    view.nodes.push_back(std::move(node));
  }

  for (const XmlNode* edge_el : graph->ChildrenNamed("edge")) {
    const std::string* source = edge_el->FindAttribute("source");
    const std::string* target = edge_el->FindAttribute("target");
    if (source == nullptr || target == nullptr) {
      return Status::ParseError("edge missing source/target");
    }
    auto from = node_index.find(*source);
    auto to = node_index.find(*target);
    if (from == node_index.end() || to == node_index.end()) {
      return Status::ParseError("edge references unknown node");
    }
    VizEdge edge{from->second, to->second, false};
    for (const XmlNode* data : edge_el->ChildrenNamed("data")) {
      const std::string* key = data->FindAttribute("key");
      if (key == nullptr) continue;
      auto name_it = key_names.find(*key);
      if (name_it != key_names.end() && name_it->second == "foreignkey") {
        edge.is_foreign_key = (data->text == "true" || data->text == "1");
      }
    }
    view.edges.push_back(edge);
  }
  return view;
}

}  // namespace schemr
