// SVG rendering of laid-out schema graph views -- the headless stand-in
// for the Flash/Flare client (see DESIGN.md substitution #2). Produces a
// self-contained SVG: edges (foreign keys dashed), colored nodes (kind →
// hue, similarity → saturation), labels, and a "+" badge on collapsed
// nodes.

#ifndef SCHEMR_VIZ_SVG_WRITER_H_
#define SCHEMR_VIZ_SVG_WRITER_H_

#include <string>

#include "viz/graph_view.h"

namespace schemr {

struct SvgOptions {
  double node_radius = 16.0;
  double font_size = 11.0;
  /// Extra canvas padding around the layout bounds.
  double padding = 50.0;
  /// Draw the score value under matched node labels.
  bool show_scores = true;
};

/// Renders a laid-out view (run a layout first) as an SVG document.
std::string WriteSvg(const SchemaGraphView& view, const SvgOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_VIZ_SVG_WRITER_H_
