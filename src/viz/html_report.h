// Static HTML export of a search session: the headless counterpart of the
// Schemr GUI's two panels (paper Fig. 2) -- a ranked results table on the
// left, schema visualizations side by side on the right.
//
// This module is rendering-only: callers (the service layer, examples)
// pass pre-built table rows and pre-rendered SVG panels, so viz stays
// independent of the search engine types.

#ifndef SCHEMR_VIZ_HTML_REPORT_H_
#define SCHEMR_VIZ_HTML_REPORT_H_

#include <string>
#include <vector>

namespace schemr {

/// One row of the results table ("name, score, matches, entities,
/// attributes, and description").
struct ReportRow {
  std::string name;
  double score = 0.0;
  size_t matches = 0;
  size_t entities = 0;
  size_t attributes = 0;
  std::string description;
};

/// One visualization panel: a heading plus a self-contained SVG document.
struct ReportPanel {
  std::string heading;
  std::string svg;
};

/// Renders the full report page.
std::string WriteHtmlReport(const std::string& title,
                            const std::string& query_description,
                            const std::vector<ReportRow>& rows,
                            const std::vector<ReportPanel>& panels);

}  // namespace schemr

#endif  // SCHEMR_VIZ_HTML_REPORT_H_
