#include "viz/layout.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace schemr {

namespace {

/// Child adjacency over containment edges, plus root node indices.
struct ViewTree {
  std::vector<std::vector<size_t>> children;
  std::vector<size_t> roots;
};

ViewTree BuildViewTree(const SchemaGraphView& view) {
  ViewTree tree;
  tree.children.resize(view.nodes.size());
  std::vector<bool> has_parent(view.nodes.size(), false);
  for (const VizEdge& edge : view.edges) {
    if (edge.is_foreign_key) continue;
    tree.children[edge.from].push_back(edge.to);
    has_parent[edge.to] = true;
  }
  // Deterministic child order: element id.
  for (auto& kids : tree.children) {
    std::sort(kids.begin(), kids.end(), [&view](size_t a, size_t b) {
      return view.nodes[a].element < view.nodes[b].element;
    });
  }
  for (size_t i = 0; i < view.nodes.size(); ++i) {
    if (!has_parent[i]) tree.roots.push_back(i);
  }
  std::sort(tree.roots.begin(), tree.roots.end(),
            [&view](size_t a, size_t b) {
              return view.nodes[a].element < view.nodes[b].element;
            });
  return tree;
}

size_t CountLeaves(const ViewTree& tree, size_t node) {
  if (tree.children[node].empty()) return 1;
  size_t leaves = 0;
  for (size_t child : tree.children[node]) {
    leaves += CountLeaves(tree, child);
  }
  return leaves;
}

/// Post-order x assignment: leaves take the next slot; parents center.
/// Returns this subtree's x.
double AssignTreeX(const ViewTree& tree, SchemaGraphView* view, size_t node,
                   double* next_slot, double sibling_gap) {
  if (tree.children[node].empty()) {
    double x = *next_slot;
    *next_slot += sibling_gap;
    view->nodes[node].x = x;
    return x;
  }
  double first = 0.0, last = 0.0;
  bool first_set = false;
  for (size_t child : tree.children[node]) {
    double cx = AssignTreeX(tree, view, child, next_slot, sibling_gap);
    if (!first_set) {
      first = cx;
      first_set = true;
    }
    last = cx;
  }
  double x = (first + last) / 2.0;
  view->nodes[node].x = x;
  return x;
}

void AssignTreeY(const ViewTree& tree, SchemaGraphView* view, size_t node,
                 size_t depth, double level_gap, double margin) {
  view->nodes[node].y = margin + static_cast<double>(depth) * level_gap;
  for (size_t child : tree.children[node]) {
    AssignTreeY(tree, view, child, depth + 1, level_gap, margin);
  }
}

void AssignRadial(const ViewTree& tree, SchemaGraphView* view, size_t node,
                  size_t depth, double angle_begin, double angle_end,
                  double ring_gap, double cx, double cy) {
  double angle = (angle_begin + angle_end) / 2.0;
  double radius = static_cast<double>(depth) * ring_gap;
  view->nodes[node].x = cx + radius * std::cos(angle);
  view->nodes[node].y = cy + radius * std::sin(angle);
  if (tree.children[node].empty()) return;
  size_t total_leaves = CountLeaves(tree, node);
  double cursor = angle_begin;
  for (size_t child : tree.children[node]) {
    size_t child_leaves = CountLeaves(tree, child);
    double span = (angle_end - angle_begin) *
                  static_cast<double>(child_leaves) /
                  static_cast<double>(total_leaves);
    AssignRadial(tree, view, child, depth + 1, cursor, cursor + span,
                 ring_gap, cx, cy);
    cursor += span;
  }
}

}  // namespace

void ApplyTreeLayout(SchemaGraphView* view, const TreeLayoutOptions& options) {
  if (view->nodes.empty()) return;
  ViewTree tree = BuildViewTree(*view);
  double next_slot = options.margin;
  for (size_t root : tree.roots) {
    AssignTreeX(tree, view, root, &next_slot, options.sibling_gap);
    AssignTreeY(tree, view, root, 0, options.level_gap, options.margin);
  }
}

void ApplyRadialLayout(SchemaGraphView* view,
                       const RadialLayoutOptions& options) {
  if (view->nodes.empty()) return;
  ViewTree tree = BuildViewTree(*view);
  // Size the canvas by the maximum depth.
  size_t max_depth = 0;
  for (const VizNode& node : view->nodes) {
    max_depth = std::max(max_depth, node.depth);
  }
  double radius = static_cast<double>(max_depth) * options.ring_gap;
  double center = options.margin + radius;

  size_t total_leaves = 0;
  for (size_t root : tree.roots) total_leaves += CountLeaves(tree, root);
  if (total_leaves == 0) return;
  double cursor = 0.0;
  const double two_pi = 2.0 * M_PI;
  for (size_t root : tree.roots) {
    size_t leaves = CountLeaves(tree, root);
    double span =
        two_pi * static_cast<double>(leaves) / static_cast<double>(total_leaves);
    AssignRadial(tree, view, root, 0, cursor, cursor + span, options.ring_gap,
                 center, center);
    cursor += span;
  }
  // Several roots would all sit at the exact center (radius 0); spread
  // them onto a small inner ring so they stay distinguishable.
  if (tree.roots.size() > 1) {
    double inner = options.ring_gap * 0.4;
    for (size_t i = 0; i < tree.roots.size(); ++i) {
      double angle =
          two_pi * static_cast<double>(i) / static_cast<double>(tree.roots.size());
      view->nodes[tree.roots[i]].x = center + inner * std::cos(angle);
      view->nodes[tree.roots[i]].y = center + inner * std::sin(angle);
    }
  }
}

BoundingBox ComputeBounds(const SchemaGraphView& view) {
  BoundingBox box;
  if (view.nodes.empty()) return box;
  box.min_x = box.max_x = view.nodes[0].x;
  box.min_y = box.max_y = view.nodes[0].y;
  for (const VizNode& node : view.nodes) {
    box.min_x = std::min(box.min_x, node.x);
    box.max_x = std::max(box.max_x, node.x);
    box.min_y = std::min(box.min_y, node.y);
    box.max_y = std::max(box.max_y, node.y);
  }
  return box;
}

}  // namespace schemr
