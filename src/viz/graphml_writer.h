// GraphML serialization of schema graph views.
//
// GraphML is the wire format the Schemr server actually uses: "the server
// ... returns a graphical representation of the schema to the client as a
// GraphML response" (paper Sec. 2, Architecture). Node data keys carry the
// label, element kind, data type, match score, collapsed flag and layout
// coordinates; edge data marks foreign keys.

#ifndef SCHEMR_VIZ_GRAPHML_WRITER_H_
#define SCHEMR_VIZ_GRAPHML_WRITER_H_

#include <string>

#include "viz/graph_view.h"

namespace schemr {

/// Serializes `view` as a GraphML document.
std::string WriteGraphMl(const SchemaGraphView& view);

}  // namespace schemr

#endif  // SCHEMR_VIZ_GRAPHML_WRITER_H_
