// Schema summarization for very large schemas.
//
// "To ensure Schemr scales to very large schemas, we plan to employ
// schema visualization and summarization techniques, such as those
// proposed in [7, 9]" — [9] being Yu & Jagadish, "Schema Summarization"
// (VLDB 2006). Following its core idea, each entity gets an *importance*
// score combining local information content (attribute count) with
// connectivity (foreign-key degree), diffused one step over the FK graph
// so hubs lift their neighborhoods; the summary keeps the top-k entities
// and renders everything else as collapsed stubs.

#ifndef SCHEMR_VIZ_SUMMARIZER_H_
#define SCHEMR_VIZ_SUMMARIZER_H_

#include <unordered_map>
#include <vector>

#include "schema/schema.h"
#include "viz/graph_view.h"

namespace schemr {

struct SummaryOptions {
  /// Entities kept in the summary.
  size_t max_entities = 5;
  /// Weight of FK connectivity vs attribute count in the base importance.
  double connectivity_weight = 0.5;
  /// Fraction of a neighbor's importance diffused in (one iteration).
  double diffusion = 0.3;
  /// Attributes shown per kept entity (most important first: keys, then
  /// FK attributes, then declaration order); 0 = all.
  size_t max_attributes_per_entity = 6;
};

/// Importance score per entity id (higher = more central).
std::unordered_map<ElementId, double> ComputeEntityImportance(
    const Schema& schema, const SummaryOptions& options = {});

/// The top-k entities by importance, descending (ties by id).
std::vector<ElementId> SelectSummaryEntities(
    const Schema& schema, const SummaryOptions& options = {});

/// Builds a summary view: kept entities with their top attributes,
/// FK edges among them; omitted subtrees appear as `collapsed` markers on
/// their nearest kept ancestor. Scores attach as in BuildGraphView.
SchemaGraphView BuildSummaryView(
    const Schema& schema,
    const std::unordered_map<ElementId, double>& element_scores = {},
    const SummaryOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_VIZ_SUMMARIZER_H_
