#include "viz/graph_view.h"

#include <deque>

namespace schemr {

size_t SchemaGraphView::NodeIndexOf(ElementId element) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].element == element) return i;
  }
  return SIZE_MAX;
}

SchemaGraphView BuildGraphView(
    const Schema& schema,
    const std::unordered_map<ElementId, double>& element_scores,
    const GraphViewOptions& options) {
  SchemaGraphView view;
  view.title = schema.name();

  // Roots of the displayed forest.
  std::vector<ElementId> roots;
  if (options.root != kNoElement && options.root < schema.size()) {
    roots.push_back(options.root);
  } else {
    roots = schema.Roots();
  }

  // BFS with depth cap; record node index per element for edges.
  std::unordered_map<ElementId, size_t> node_index;
  struct Item {
    ElementId id;
    size_t depth;
  };
  std::deque<Item> queue;
  for (ElementId root : roots) queue.push_back({root, 0});
  while (!queue.empty()) {
    Item item = queue.front();
    queue.pop_front();
    const Element& element = schema.element(item.id);
    VizNode node;
    node.element = item.id;
    node.label = element.name;
    node.kind = element.kind;
    node.type = element.type;
    node.depth = item.depth;
    auto score_it = element_scores.find(item.id);
    if (score_it != element_scores.end()) node.similarity = score_it->second;
    const auto& children = schema.Children(item.id);
    if (item.depth >= options.max_depth && !children.empty()) {
      node.collapsed = true;
    } else {
      for (ElementId child : children) {
        queue.push_back({child, item.depth + 1});
      }
    }
    node_index[item.id] = view.nodes.size();
    view.nodes.push_back(std::move(node));
  }

  // Containment edges between visible nodes.
  for (const auto& [id, idx] : node_index) {
    ElementId parent = schema.element(id).parent;
    if (parent == kNoElement) continue;
    auto parent_it = node_index.find(parent);
    if (parent_it != node_index.end()) {
      view.edges.push_back(VizEdge{parent_it->second, idx, false});
    }
  }
  // Foreign-key edges between visible elements.
  if (options.include_foreign_keys) {
    for (const ForeignKey& fk : schema.foreign_keys()) {
      auto from_it = node_index.find(fk.attribute);
      auto to_it = node_index.find(fk.target_entity);
      if (from_it != node_index.end() && to_it != node_index.end()) {
        view.edges.push_back(VizEdge{from_it->second, to_it->second, true});
      }
    }
  }
  return view;
}

}  // namespace schemr
