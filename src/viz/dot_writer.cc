#include "viz/dot_writer.h"

#include "util/string_util.h"
#include "viz/color.h"

namespace schemr {

namespace {
std::string DotEscape(const std::string& s) {
  return ReplaceAll(ReplaceAll(s, "\\", "\\\\"), "\"", "\\\"");
}
}  // namespace

std::string WriteDot(const SchemaGraphView& view) {
  std::string out = "digraph \"" + DotEscape(view.title) + "\" {\n";
  out += "  rankdir=TB;\n  node [style=filled, fontname=\"Helvetica\"];\n";
  for (size_t i = 0; i < view.nodes.size(); ++i) {
    const VizNode& node = view.nodes[i];
    std::string label = DotEscape(node.label);
    if (node.collapsed) label += " …";
    out += "  n" + std::to_string(i) + " [label=\"" + label + "\", shape=" +
           (node.kind == ElementKind::kEntity ? "box" : "ellipse") +
           ", fillcolor=\"" + NodeColor(node.kind, node.similarity).ToHex() +
           "\"];\n";
  }
  for (const VizEdge& edge : view.edges) {
    out += "  n" + std::to_string(edge.from) + " -> n" +
           std::to_string(edge.to);
    if (edge.is_foreign_key) out += " [style=dashed, color=gray]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace schemr
