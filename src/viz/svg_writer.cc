#include "viz/svg_writer.h"

#include <cstdio>

#include "util/string_util.h"
#include "viz/color.h"
#include "viz/layout.h"

namespace schemr {

namespace {
std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}
}  // namespace

std::string WriteSvg(const SchemaGraphView& view, const SvgOptions& options) {
  BoundingBox box = ComputeBounds(view);
  double offset_x = options.padding - box.min_x;
  double offset_y = options.padding - box.min_y;
  double width = box.width() + 2 * options.padding;
  double height = box.height() + 2 * options.padding;

  std::string svg;
  svg += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" + Fmt(width) +
         "\" height=\"" + Fmt(height) + "\" viewBox=\"0 0 " + Fmt(width) +
         " " + Fmt(height) + "\">\n";
  svg += "  <title>" + XmlEscape(view.title) + "</title>\n";
  svg += "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Edges beneath nodes.
  for (const VizEdge& edge : view.edges) {
    const VizNode& a = view.nodes[edge.from];
    const VizNode& b = view.nodes[edge.to];
    svg += "  <line x1=\"" + Fmt(a.x + offset_x) + "\" y1=\"" +
           Fmt(a.y + offset_y) + "\" x2=\"" + Fmt(b.x + offset_x) +
           "\" y2=\"" + Fmt(b.y + offset_y) + "\" stroke=\"" +
           (edge.is_foreign_key ? "#999999" : "#444444") + "\"";
    if (edge.is_foreign_key) svg += " stroke-dasharray=\"5,4\"";
    svg += " stroke-width=\"1.2\"/>\n";
  }

  // Nodes.
  for (const VizNode& node : view.nodes) {
    double x = node.x + offset_x;
    double y = node.y + offset_y;
    std::string fill = NodeColor(node.kind, node.similarity).ToHex();
    if (node.kind == ElementKind::kEntity) {
      double r = options.node_radius;
      svg += "  <rect x=\"" + Fmt(x - r) + "\" y=\"" + Fmt(y - r * 0.7) +
             "\" width=\"" + Fmt(2 * r) + "\" height=\"" + Fmt(1.4 * r) +
             "\" rx=\"4\" fill=\"" + fill +
             "\" stroke=\"#333333\" stroke-width=\"1\"/>\n";
    } else {
      svg += "  <circle cx=\"" + Fmt(x) + "\" cy=\"" + Fmt(y) + "\" r=\"" +
             Fmt(options.node_radius * 0.6) + "\" fill=\"" + fill +
             "\" stroke=\"#333333\" stroke-width=\"1\"/>\n";
    }
    // Label under the node.
    svg += "  <text x=\"" + Fmt(x) + "\" y=\"" +
           Fmt(y + options.node_radius + options.font_size) +
           "\" text-anchor=\"middle\" font-family=\"Helvetica\" font-size=\"" +
           Fmt(options.font_size) + "\">" + XmlEscape(node.label) +
           (node.collapsed ? " +" : "") + "</text>\n";
    if (options.show_scores && node.similarity > 0.0) {
      char score[16];
      std::snprintf(score, sizeof(score), "%.2f", node.similarity);
      svg += "  <text x=\"" + Fmt(x) + "\" y=\"" +
             Fmt(y + options.node_radius + 2.2 * options.font_size) +
             "\" text-anchor=\"middle\" font-family=\"Helvetica\" "
             "font-size=\"" +
             Fmt(options.font_size * 0.9) + "\" fill=\"#006400\">" + score +
             "</text>\n";
    }
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace schemr
