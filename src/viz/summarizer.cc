#include "viz/summarizer.h"

#include <algorithm>

#include "schema/entity_graph.h"

namespace schemr {

std::unordered_map<ElementId, double> ComputeEntityImportance(
    const Schema& schema, const SummaryOptions& options) {
  std::unordered_map<ElementId, double> importance;
  EntityGraph graph(schema);
  std::vector<ElementId> entities = schema.Entities();
  if (entities.empty()) return importance;

  // Base score: attribute count (information content) + FK degree
  // (connectivity), both normalized by the schema maximum.
  double max_attrs = 1.0, max_degree = 1.0;
  std::unordered_map<ElementId, double> attrs, degree;
  for (ElementId e : entities) {
    double a = 0.0;
    for (ElementId child : schema.Children(e)) {
      if (schema.element(child).kind == ElementKind::kAttribute) a += 1.0;
    }
    attrs[e] = a;
    degree[e] = static_cast<double>(graph.Neighbors(e).size());
    max_attrs = std::max(max_attrs, attrs[e]);
    max_degree = std::max(max_degree, degree[e]);
  }
  for (ElementId e : entities) {
    importance[e] =
        (1.0 - options.connectivity_weight) * (attrs[e] / max_attrs) +
        options.connectivity_weight * (degree[e] / max_degree);
  }

  // One diffusion step: an entity inherits a fraction of its neighbors'
  // base importance, so satellites of a hub rank above isolated tables of
  // equal size (the Yu & Jagadish intuition, one iteration instead of a
  // full fixpoint).
  std::unordered_map<ElementId, double> diffused = importance;
  for (ElementId e : entities) {
    const auto& neighbors = graph.Neighbors(e);
    if (neighbors.empty()) continue;
    double incoming = 0.0;
    for (ElementId n : neighbors) incoming += importance[n];
    diffused[e] += options.diffusion * incoming /
                   static_cast<double>(neighbors.size());
  }
  return diffused;
}

std::vector<ElementId> SelectSummaryEntities(const Schema& schema,
                                             const SummaryOptions& options) {
  std::unordered_map<ElementId, double> importance =
      ComputeEntityImportance(schema, options);
  std::vector<ElementId> entities = schema.Entities();
  std::sort(entities.begin(), entities.end(),
            [&importance](ElementId a, ElementId b) {
              double ia = importance[a], ib = importance[b];
              if (ia != ib) return ia > ib;
              return a < b;
            });
  if (entities.size() > options.max_entities) {
    entities.resize(options.max_entities);
  }
  return entities;
}

SchemaGraphView BuildSummaryView(
    const Schema& schema,
    const std::unordered_map<ElementId, double>& element_scores,
    const SummaryOptions& options) {
  SchemaGraphView view;
  view.title = schema.name() + " (summary)";

  std::vector<ElementId> kept = SelectSummaryEntities(schema, options);
  std::unordered_map<ElementId, size_t> node_index;

  auto score_of = [&element_scores](ElementId id) {
    auto it = element_scores.find(id);
    return it == element_scores.end() ? 0.0 : it->second;
  };

  size_t total_entities = schema.NumEntities();
  for (ElementId entity : kept) {
    VizNode node;
    node.element = entity;
    node.label = schema.element(entity).name;
    node.kind = ElementKind::kEntity;
    node.similarity = score_of(entity);
    // Entities were dropped from the display: flag the survivors as
    // collapsible so a UI can expand back to the full view.
    node.collapsed = kept.size() < total_entities;
    node_index[entity] = view.nodes.size();
    view.nodes.push_back(std::move(node));

    // Attributes: keys first, then FK sources, then declaration order.
    std::vector<ElementId> attributes;
    for (ElementId child : schema.Children(entity)) {
      if (schema.element(child).kind == ElementKind::kAttribute) {
        attributes.push_back(child);
      }
    }
    std::vector<ElementId> fk_sources;
    for (const ForeignKey& fk : schema.foreign_keys()) {
      fk_sources.push_back(fk.attribute);
    }
    auto rank = [&schema, &fk_sources](ElementId id) {
      if (schema.element(id).primary_key) return 0;
      if (std::find(fk_sources.begin(), fk_sources.end(), id) !=
          fk_sources.end()) {
        return 1;
      }
      return 2;
    };
    std::stable_sort(attributes.begin(), attributes.end(),
                     [&rank](ElementId a, ElementId b) {
                       return rank(a) < rank(b);
                     });
    size_t limit = options.max_attributes_per_entity == 0
                       ? attributes.size()
                       : options.max_attributes_per_entity;
    for (size_t i = 0; i < attributes.size() && i < limit; ++i) {
      ElementId attr = attributes[i];
      VizNode attr_node;
      attr_node.element = attr;
      attr_node.label = schema.element(attr).name;
      attr_node.kind = ElementKind::kAttribute;
      attr_node.type = schema.element(attr).type;
      attr_node.depth = 1;
      attr_node.similarity = score_of(attr);
      size_t idx = view.nodes.size();
      node_index[attr] = idx;
      view.nodes.push_back(std::move(attr_node));
      view.edges.push_back(VizEdge{node_index[entity], idx, false});
    }
  }

  // FK edges among visible elements.
  for (const ForeignKey& fk : schema.foreign_keys()) {
    auto from = node_index.find(fk.attribute);
    auto from_entity = node_index.find(schema.EntityOf(fk.attribute));
    auto to = node_index.find(fk.target_entity);
    if (to == node_index.end()) continue;
    if (from != node_index.end()) {
      view.edges.push_back(VizEdge{from->second, to->second, true});
    } else if (from_entity != node_index.end()) {
      // The FK attribute was trimmed; draw entity→entity instead.
      view.edges.push_back(VizEdge{from_entity->second, to->second, true});
    }
  }
  return view;
}

}  // namespace schemr
