// Color encoding for graph nodes.
//
// "Node color corresponds to schema element types (e.g. entity or
// attribute)" with match similarity visually encoded (paper Fig. 2). Each
// element kind gets a hue; the match score S(e) drives saturation, so a
// strongly matched attribute glows while unmatched elements stay pale.

#ifndef SCHEMR_VIZ_COLOR_H_
#define SCHEMR_VIZ_COLOR_H_

#include <cstdint>
#include <string>

#include "schema/element.h"

namespace schemr {

struct Rgb {
  uint8_t r = 0, g = 0, b = 0;

  /// "#rrggbb".
  std::string ToHex() const;
};

/// Linear interpolation between two colors, t in [0,1] (clamped).
Rgb LerpColor(const Rgb& a, const Rgb& b, double t);

/// Base (fully saturated) color of an element kind: entities blue,
/// attributes orange.
Rgb KindBaseColor(ElementKind kind);

/// Display color of a node: the kind's base color saturated by the match
/// score (0 → pale tint, 1 → full base color).
Rgb NodeColor(ElementKind kind, double similarity);

/// Sequential ramp for score legends: white → dark green.
Rgb ScoreRampColor(double score);

}  // namespace schemr

#endif  // SCHEMR_VIZ_COLOR_H_
