// GraphML parsing: the client side of the visualization wire format.
//
// The paper's GUI receives "a graphical representation of the schema ...
// as a GraphML response, which is parsed and displayed on the frontend".
// This reader plays that frontend role headlessly, reconstructing a
// SchemaGraphView from a GraphML document produced by WriteGraphMl (or by
// any tool emitting the same attr.name keys).

#ifndef SCHEMR_VIZ_GRAPHML_READER_H_
#define SCHEMR_VIZ_GRAPHML_READER_H_

#include <string_view>

#include "util/status.h"
#include "viz/graph_view.h"

namespace schemr {

/// Parses a GraphML document into a view. Node data keys are matched by
/// their declared attr.name (label, kind, datatype, score, collapsed,
/// semantic, x, y); unknown keys are ignored; missing keys default.
/// Returns ParseError/Corruption for malformed documents or dangling edge
/// endpoints.
Result<SchemaGraphView> ReadGraphMl(std::string_view graphml);

}  // namespace schemr

#endif  // SCHEMR_VIZ_GRAPHML_READER_H_
