// Graph layouts: hierarchical tree and radial (paper Fig. 2: "We allow for
// multiple graph layouts, including a hierarchical tree layout and a
// radial layout").
//
// Both operate on the containment edges of a SchemaGraphView (foreign-key
// edges are drawn but do not influence positions) and assign pixel
// coordinates in place.

#ifndef SCHEMR_VIZ_LAYOUT_H_
#define SCHEMR_VIZ_LAYOUT_H_

#include "viz/graph_view.h"

namespace schemr {

struct TreeLayoutOptions {
  double level_gap = 80.0;   ///< vertical distance between depths
  double sibling_gap = 90.0; ///< horizontal distance between leaves
  double margin = 40.0;
};

struct RadialLayoutOptions {
  double ring_gap = 80.0;  ///< radial distance between depths
  double margin = 40.0;
};

/// Layered tree layout: leaves get successive x slots, internal nodes
/// center over their children, y = depth. Multiple roots are laid out side
/// by side. Guarantees no two nodes of the same depth overlap.
void ApplyTreeLayout(SchemaGraphView* view, const TreeLayoutOptions& options = {});

/// Radial layout: depth d sits on ring d·ring_gap around the center;
/// each subtree receives an angular wedge proportional to its leaf count.
void ApplyRadialLayout(SchemaGraphView* view,
                       const RadialLayoutOptions& options = {});

/// Bounding box of laid-out nodes (for SVG sizing).
struct BoundingBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
};
BoundingBox ComputeBounds(const SchemaGraphView& view);

}  // namespace schemr

#endif  // SCHEMR_VIZ_LAYOUT_H_
