#include "viz/color.h"

#include <algorithm>
#include <cstdio>

namespace schemr {

std::string Rgb::ToHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

Rgb LerpColor(const Rgb& a, const Rgb& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](uint8_t x, uint8_t y) {
    return static_cast<uint8_t>(static_cast<double>(x) +
                                t * (static_cast<double>(y) -
                                     static_cast<double>(x)) +
                                0.5);
  };
  return Rgb{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

Rgb KindBaseColor(ElementKind kind) {
  switch (kind) {
    case ElementKind::kEntity:
      return Rgb{0x1f, 0x77, 0xb4};  // blue
    case ElementKind::kAttribute:
      return Rgb{0xff, 0x7f, 0x0e};  // orange
  }
  return Rgb{0x7f, 0x7f, 0x7f};
}

Rgb NodeColor(ElementKind kind, double similarity) {
  // Pale tint of the base color at similarity 0.
  Rgb base = KindBaseColor(kind);
  Rgb pale = LerpColor(Rgb{0xff, 0xff, 0xff}, base, 0.25);
  return LerpColor(pale, base, similarity);
}

Rgb ScoreRampColor(double score) {
  return LerpColor(Rgb{0xff, 0xff, 0xff}, Rgb{0x00, 0x64, 0x00}, score);
}

}  // namespace schemr
