// Query fingerprints and result digests for the audit/replay subsystem
// (DESIGN.md §10).
//
// A *fingerprint* is a stable 64-bit hash of a query's semantic content:
// the normalized flattened keyword terms plus the shape of every schema
// fragment. Two requests that mean the same thing hash equal even when
// their keywords or fragments arrive in a different order; fragments with
// different structure (an attribute moved to another entity, a changed
// nesting) hash different. The audit log keys per-query aggregation on it
// ("which query got slow?") without retaining query text.
//
// A *digest* is a stable 64-bit hash of a ranked result list: rank order,
// schema ids, and scores quantized to float precision so that sub-ulp
// double noise (reordered summation, FMA differences) does not flip it.
// The replay engine compares digests across runs to catch ranking
// nondeterminism and unintended ranking changes.

#ifndef SCHEMR_CORE_FINGERPRINT_H_
#define SCHEMR_CORE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_graph.h"
#include "core/search_engine.h"

namespace schemr {

/// Stable hash of one query graph: sorted lowercased keyword terms +
/// sorted per-fragment shape hashes. Insensitive to keyword order,
/// fragment order, and sibling order inside a fragment; sensitive to the
/// terms themselves and to fragment structure (kind/type/name nesting).
uint64_t FingerprintQuery(const QueryGraph& query);

/// Fingerprint for requests refused before the fragment is parsed (shed
/// by admission control): the keyword part is normalized exactly like
/// FingerprintQuery, the fragment contributes a hash of its raw bytes.
/// Matches FingerprintQuery for keyword-only requests, so shed and
/// admitted records of the same keyword query aggregate together.
uint64_t FingerprintRawRequest(const std::string& keywords,
                               const std::string& fragment);

/// Score quantization used by DigestResults: double → float. One-ulp
/// double perturbations survive the narrowing rounding, so digests are
/// stable under benign floating-point reassociation.
float QuantizeScore(double score);

/// Stable hash of a ranked result list: (rank, schema id,
/// QuantizeScore(score)) per row, in order. An empty list digests to a
/// fixed non-zero value so "no results" is distinguishable from "not
/// recorded" (0).
uint64_t DigestResults(const std::vector<SearchResult>& results);

}  // namespace schemr

#endif  // SCHEMR_CORE_FINGERPRINT_H_
