// Phase 1 of the search algorithm: candidate extraction (paper Fig. 3).
//
// Flattens the query graph into keywords and retrieves the top candidate
// schemas from the document index -- "a fast and scalable filter" that
// bounds how many schemas the expensive match phase must examine.

#ifndef SCHEMR_CORE_CANDIDATE_EXTRACTOR_H_
#define SCHEMR_CORE_CANDIDATE_EXTRACTOR_H_

#include <vector>

#include "core/query_graph.h"
#include "index/searcher.h"

namespace schemr {

/// One extracted candidate with its coarse-grain score.
struct Candidate {
  SchemaId schema_id = kNoSchema;
  double coarse_score = 0.0;
  uint32_t matched_terms = 0;
};

struct CandidateExtractorOptions {
  /// Candidate pool size passed to the match phase ("top n candidate
  /// results").
  size_t pool_size = 50;
  /// TF/IDF scoring knobs (coordination factor, boosts, proximity).
  SearchOptions index_options;
};

/// Stateless extractor over one index.
class CandidateExtractor {
 public:
  explicit CandidateExtractor(const InvertedIndex* index) : index_(index) {}

  std::vector<Candidate> Extract(
      const QueryGraph& query,
      const CandidateExtractorOptions& options = {}) const;

 private:
  const InvertedIndex* index_;
};

}  // namespace schemr

#endif  // SCHEMR_CORE_CANDIDATE_EXTRACTOR_H_
