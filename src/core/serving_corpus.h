// The serving corpus: pairs the schema repository with a versioned text
// index and publishes both as ONE immutable snapshot, so a search that
// runs concurrently with ingest sees either the pre-commit corpus or the
// post-commit corpus -- never the index of one and the schemas of the
// other.
//
// Concurrency model (DESIGN.md §9):
//   - Writers (Ingest/Update/Remove/Reindex) serialize on an internal
//     mutex. Each commits durably to the repository first, then mutates
//     the index copy-on-write, then publishes a fresh CorpusSnapshot by
//     a pointer swap (AtomicSharedPtr — a micro-mutex held only for the
//     shared_ptr copy; see util/atomic_shared_ptr.h for why not
//     std::atomic<std::shared_ptr>).
//   - Readers call Snapshot() (one pointer copy) and do all their work
//     against that snapshot. Neither side ever waits for more than that
//     copy; a snapshot stays valid for as long as someone holds it and
//     is retired by refcount.
//   - The pairing invariant: within one snapshot, every document in the
//     index resolves in the schema view and vice versa (assuming callers
//     mutate only through this class).

#ifndef SCHEMR_CORE_SERVING_CORPUS_H_
#define SCHEMR_CORE_SERVING_CORPUS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "index/versioned_index.h"
#include "match/features.h"
#include "repo/schema_repository.h"
#include "schema/entity_graph.h"
#include "text/analyzer.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"

namespace schemr {

/// Lazily built per-schema EntityGraph store that rides inside one
/// CorpusSnapshot. Schemas are immutable within a snapshot, so a graph
/// built once is valid for the snapshot's whole lifetime and can be
/// shared by every search (and every scoring worker) pinned to it;
/// without this, phase 3 rebuilt the graph per candidate per request.
/// Thread-safe; the returned graphs are immutable.
class EntityGraphCache {
 public:
  /// Returns the graph for `schema` (keyed by id), building it outside
  /// the lock on first request. Two threads racing on a cold id may both
  /// build; the loser's graph is discarded and the winner's is returned
  /// to both, so callers always share one instance per schema.
  std::shared_ptr<const EntityGraph> GetOrBuild(SchemaId id,
                                                const Schema& schema);

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<SchemaId, std::shared_ptr<const EntityGraph>> graphs_;
};

/// An immutable, internally consistent point-in-time view of the whole
/// corpus. Everything reachable from it is const and safe to share
/// across threads without further synchronization.
struct CorpusSnapshot {
  /// Monotone publication counter of the owning ServingCorpus.
  uint64_t version = 0;
  /// The text index at this version.
  std::shared_ptr<const InvertedIndex> index;
  /// The schema records at this version.
  std::shared_ptr<const RepositoryView> schemas;
  /// Per-schema entity graphs, filled lazily by phase 3 (the pointer is
  /// const-shared so the cache stays usable through a const snapshot).
  std::shared_ptr<EntityGraphCache> entity_graphs =
      std::make_shared<EntityGraphCache>();
  /// Columnar matcher features + screening signatures for every schema in
  /// `schemas`, built at index time (DESIGN.md §16). Never null after the
  /// first publication; versioned by riding inside the snapshot, so the
  /// result cache's corpus_version key covers it too.
  std::shared_ptr<const MatchFeatureCatalog> match_features;
};

/// Owns a SchemaRepository plus the index built over it and keeps the two
/// in lock-step behind atomically swapped snapshots.
class ServingCorpus {
 public:
  /// Wraps `repository` (which may already hold schemas) and indexes its
  /// current contents. Fails if an existing schema cannot be re-indexed.
  static Result<std::unique_ptr<ServingCorpus>> Create(
      std::unique_ptr<SchemaRepository> repository,
      AnalyzerOptions analyzer_options = {},
      FeatureBuildOptions feature_options = {});

  /// Inserts the schema into the repository (durably, assigning an id),
  /// indexes it, and publishes the combined snapshot. Returns the id.
  Result<SchemaId> Ingest(Schema schema);

  /// Replaces the schema with `schema.id()` and re-indexes it.
  Status Update(Schema schema);

  /// Removes the schema from the repository and the index.
  Status Remove(SchemaId id);

  /// Rebuilds the index from the repository's current contents (e.g.
  /// after changing analyzer options upstream) and republishes.
  Status Reindex();

  /// Reindex() with signature persistence: tries to adopt CRC-valid
  /// signatures for the current corpus from `signature_path` (missing or
  /// unreadable file → clean full build; corrupt or stale records are
  /// dropped, counted and recomputed — never served), then writes the
  /// rebuilt signature set back to the same path. `stats`, when non-null,
  /// receives the build counters.
  Status ReindexWithStoredSignatures(const std::string& signature_path,
                                     CatalogBuildStats* stats = nullptr);

  /// Counters of the most recent full catalog build (Create/Reindex).
  CatalogBuildStats last_build_stats() const;

  /// The current corpus snapshot (never null; one acquire-load). Hold the
  /// returned pointer for the duration of a search so every phase sees
  /// the same corpus.
  std::shared_ptr<const CorpusSnapshot> Snapshot() const;

  /// Publication counter: bumped on every successful mutation.
  uint64_t version() const { return Snapshot()->version; }

  /// The live repository, for annotation traffic (comments, ratings,
  /// usage) which is mutex-guarded internally and deliberately NOT part
  /// of the snapshot: annotations tune ranking, they do not define the
  /// corpus, so reading them live is acceptable and avoids republishing
  /// on every click.
  SchemaRepository* repository() { return repository_.get(); }
  const SchemaRepository* repository() const { return repository_.get(); }

 private:
  ServingCorpus(std::unique_ptr<SchemaRepository> repository,
                AnalyzerOptions analyzer_options,
                FeatureBuildOptions feature_options);

  /// Composes the current repository view + index snapshot into a new
  /// CorpusSnapshot and swaps it in. Caller holds writer_mutex_.
  void PublishLocked();

  /// Full catalog rebuild from the given repository view (caller holds
  /// writer_mutex_); replaces features_/df_ and records stats. `stored`
  /// may be null (no persisted signatures to adopt).
  Status RebuildCatalogLocked(const RepositoryView& schemas,
                              const StoredSignatures* stored);

  std::unique_ptr<SchemaRepository> repository_;
  AnalyzerOptions analyzer_options_;
  VersionedIndex index_;
  FeatureBuildOptions feature_options_;
  /// Serializes Ingest/Update/Remove/Reindex so the repository view and
  /// index snapshot composed by PublishLocked always belong together.
  mutable std::mutex writer_mutex_;
  /// Incremental working set behind writer_mutex_; PublishLocked freezes
  /// a copy into each snapshot's MatchFeatureCatalog.
  std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>>
      features_;
  DfTable df_;
  CatalogBuildStats last_build_stats_;
  AtomicSharedPtr<const CorpusSnapshot> snapshot_;
};

}  // namespace schemr

#endif  // SCHEMR_CORE_SERVING_CORPUS_H_
