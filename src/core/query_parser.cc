#include "core/query_parser.h"

#include "parse/ddl_parser.h"
#include "parse/xsd_importer.h"
#include "util/string_util.h"

namespace schemr {

FragmentFormat DetectFragmentFormat(std::string_view fragment) {
  std::string_view trimmed = Trim(fragment);
  if (trimmed.empty()) return FragmentFormat::kAuto;
  return trimmed.front() == '<' ? FragmentFormat::kXsd : FragmentFormat::kDdl;
}

Result<QueryGraph> ParseQuery(std::string_view keywords,
                              std::string_view fragment,
                              FragmentFormat format) {
  QueryGraph query;
  for (const std::string& kw : Split(keywords, " ,\t\r\n;")) {
    query.AddKeyword(kw);
  }
  std::string_view fragment_text = Trim(fragment);
  if (!fragment_text.empty()) {
    if (format == FragmentFormat::kAuto) {
      format = DetectFragmentFormat(fragment_text);
    }
    if (format == FragmentFormat::kXsd) {
      SCHEMR_ASSIGN_OR_RETURN(Schema schema,
                              ParseXsd(fragment_text, "fragment"));
      query.AddFragment(std::move(schema));
    } else {
      SCHEMR_ASSIGN_OR_RETURN(Schema schema,
                              ParseDdl(fragment_text, "fragment"));
      query.AddFragment(std::move(schema));
    }
  }
  if (query.empty()) {
    return Status::InvalidArgument("query has no keywords and no fragment");
  }
  return query;
}

}  // namespace schemr
