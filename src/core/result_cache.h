// Snapshot-keyed query result cache (DESIGN.md §11).
//
// A search is a pure function of (query, corpus snapshot, result-affecting
// options): the snapshot machinery from §9 makes the corpus input
// immutable, and the fingerprint machinery from §10 gives the query a
// stable order-insensitive identity. That purity is exactly what makes
// result caching safe -- the cache key is (query fingerprint, corpus
// version, options hash), so an ingest commits a new version and every
// stale entry is simply never hit again (implicit invalidation; the LRU
// ages them out). Degraded results are never stored: what a deadline or a
// benched matcher produced is best-effort, not the answer.

#ifndef SCHEMR_CORE_RESULT_CACHE_H_
#define SCHEMR_CORE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace schemr {

struct SearchResult;         // core/search_engine.h
struct SearchEngineOptions;  // core/search_engine.h

/// Identity of one cached entry.
struct ResultCacheKey {
  uint64_t fingerprint = 0;     ///< FingerprintQuery over the query graph
  uint64_t corpus_version = 0;  ///< CorpusSnapshot::version
  uint64_t options_hash = 0;    ///< HashSearchOptions

  bool operator==(const ResultCacheKey& other) const {
    return fingerprint == other.fingerprint &&
           corpus_version == other.corpus_version &&
           options_hash == other.options_hash;
  }
};

/// Hashes exactly the options that change what Search returns: top_k,
/// offset, the blend, the ablation switches, the annotation boost, and
/// the extraction/tightness knobs. Execution-shaping options are
/// deliberately excluded -- scoring_threads and enable_pruning cannot
/// change the ranked list (that invariant is what this PR proves), and
/// deadline/budget only matter through degradation, which is never
/// stored -- so requests that differ only in those share entries.
uint64_t HashSearchOptions(const SearchEngineOptions& options);

/// Point-in-time counters (monotone except `entries`).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Mutex-guarded LRU over final ranked result lists. Entries are shared
/// const vectors, so a hit hands back the stored list without copying it
/// under the lock and an eviction never invalidates a reader.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity);

  /// The cached list for `key`, refreshed to most-recently-used, or null
  /// on a miss.
  std::shared_ptr<const std::vector<SearchResult>> Get(
      const ResultCacheKey& key);

  /// Inserts (or refreshes) `results` under `key`, evicting the least
  /// recently used entry beyond capacity.
  void Put(const ResultCacheKey& key, std::vector<SearchResult> results);

  ResultCacheStats Stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const;
  };
  struct Entry {
    ResultCacheKey key;
    std::shared_ptr<const std::vector<SearchResult>> results;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

/// Publishes the derived cache gauges into the global registry:
/// `schemr_result_cache_hit_ratio` (hits / lookups; 0 until the first
/// lookup) and `schemr_result_cache_capacity`. A ratio is a read-time
/// derivation over two counters, not an event, so it is computed at
/// scrape time — the /metrics handler and `schemr stats` call this just
/// before collecting. Null-tolerant: with no cache installed both gauges
/// read 0.
void PublishResultCacheMetrics(const ResultCache* cache);

}  // namespace schemr

#endif  // SCHEMR_CORE_RESULT_CACHE_H_
