// Query parser: builds a QueryGraph from user input.
//
// "Prior to executing a search, the query parser creates a query-graph
// from the keyword terms and schema fragments given by user input."
// (paper Sec. 2). Fragments arrive as DDL or XSD text; the format is
// auto-detected (XSD documents start with '<').

#ifndef SCHEMR_CORE_QUERY_PARSER_H_
#define SCHEMR_CORE_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "core/query_graph.h"
#include "util/status.h"

namespace schemr {

/// Detected fragment syntax.
enum class FragmentFormat { kAuto, kDdl, kXsd };

/// Guesses the format of a fragment text: leading '<' (after whitespace)
/// means XSD, otherwise DDL.
FragmentFormat DetectFragmentFormat(std::string_view fragment);

/// Builds a query graph from whitespace/comma-separated keywords plus an
/// optional schema fragment. Either part may be empty, but not both.
Result<QueryGraph> ParseQuery(std::string_view keywords,
                              std::string_view fragment = "",
                              FragmentFormat format = FragmentFormat::kAuto);

}  // namespace schemr

#endif  // SCHEMR_CORE_QUERY_PARSER_H_
