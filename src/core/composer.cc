#include "core/composer.h"

#include <algorithm>

#include "match/ensemble.h"
#include "schema/entity_graph.h"
#include "util/string_util.h"

namespace schemr {

std::vector<ExtensionSuggestion> SuggestExtensions(
    const Schema& result_schema, const SimilarityMatrix& similarity,
    ElementId best_anchor, const ComposerOptions& options) {
  std::vector<ExtensionSuggestion> suggestions;
  if (similarity.cols() != result_schema.size()) return suggestions;

  EntityGraph graph(result_schema);
  for (ElementId e = 0; e < result_schema.size(); ++e) {
    const Element& element = result_schema.element(e);
    if (element.kind != ElementKind::kAttribute) continue;
    // Covered elements are already in the draft; skip.
    double covered = similarity.ColumnMax(e);
    if (covered >= options.covered_threshold) continue;

    ElementId entity = result_schema.EntityOf(e);
    double weight;
    if (best_anchor != kNoElement && entity == best_anchor) {
      weight = options.anchor_weight;
    } else if (best_anchor != kNoElement && entity != kNoElement &&
               graph.InSameNeighborhood(entity, best_anchor)) {
      weight = options.neighborhood_weight;
    } else {
      weight = options.unrelated_weight;
    }
    ExtensionSuggestion suggestion;
    suggestion.source_element = e;
    suggestion.name = element.name;
    suggestion.type = element.type;
    suggestion.source_path = result_schema.Path(e);
    // Less covered = more novel; weight by structural closeness.
    suggestion.confidence = weight * (1.0 - covered);
    suggestions.push_back(std::move(suggestion));
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const ExtensionSuggestion& a, const ExtensionSuggestion& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.source_element < b.source_element;
            });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

std::vector<ExtensionSuggestion> SuggestExtensionsForResult(
    const Schema& draft, const Schema& result_schema,
    const MatcherEnsemble& ensemble, ElementId best_anchor,
    const ComposerOptions& options) {
  SimilarityMatrix combined = ensemble.MatchCombined(draft, result_schema);
  return SuggestExtensions(result_schema, combined, best_anchor, options);
}

Result<ElementId> ApplySuggestion(Schema* draft, ElementId entity,
                                  const ExtensionSuggestion& suggestion) {
  if (entity >= draft->size() ||
      draft->element(entity).kind != ElementKind::kEntity) {
    return Status::InvalidArgument("target is not an entity of the draft");
  }
  if (suggestion.name.empty()) {
    return Status::InvalidArgument("suggestion has no name");
  }
  // Refuse duplicates within the entity.
  for (ElementId child : draft->Children(entity)) {
    if (EqualsIgnoreCase(draft->element(child).name, suggestion.name)) {
      return Status::AlreadyExists("attribute '" + suggestion.name +
                                   "' already present");
    }
  }
  return draft->AddAttribute(suggestion.name, entity, suggestion.type);
}

}  // namespace schemr
