#include "core/search_engine.h"

#include <algorithm>

#include "core/query_parser.h"
#include "obs/fault_bridge.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace schemr {

namespace {

/// Metric handles are resolved once; the increment path is lock-free.
struct EngineMetrics {
  Counter* searches;
  Counter* search_errors;
  Counter* searches_degraded;
  Counter* matcher_failures;
  Counter* candidates_extracted;
  Counter* candidates_pruned;
  Histogram* total_seconds;
  Histogram* phase1_seconds;
  Histogram* phase2_seconds;
  Histogram* phase3_seconds;
  Histogram* pool_size;

  static const EngineMetrics& Get() {
    static const EngineMetrics* metrics = [] {
      InstallFaultMetricsBridge();
      MetricsRegistry& r = MetricsRegistry::Global();
      static const std::vector<double> pool_bounds{1,  2,   5,   10,  25,
                                                   50, 100, 250, 500, 1000};
      auto* m = new EngineMetrics{
          r.GetCounter("schemr_search_requests_total",
                       "Search pipeline invocations."),
          r.GetCounter("schemr_search_errors_total",
                       "Searches that returned a non-OK status."),
          r.GetCounter("schemr_searches_degraded_total",
                       "Searches that returned degraded (best-effort) "
                       "results after a matcher failure or deadline."),
          r.GetCounter("schemr_matcher_failures_total",
                       "Matchers benched mid-search (threw, faulted, or "
                       "exceeded their time budget)."),
          r.GetCounter("schemr_search_candidates_extracted_total",
                       "Phase-1 candidates handed to the match phase."),
          r.GetCounter("schemr_search_candidates_pruned_total",
                       "Pool candidates dropped by ranking/pagination."),
          r.GetHistogram("schemr_search_seconds",
                         "End-to-end search latency."),
          r.GetHistogram("schemr_search_phase1_seconds",
                         "Phase 1 (candidate extraction) latency."),
          r.GetHistogram("schemr_search_phase2_seconds",
                         "Phase 2 (matcher ensemble) latency per search."),
          r.GetHistogram("schemr_search_phase3_seconds",
                         "Phase 3 (tightness-of-fit) latency per search."),
          r.GetHistogram("schemr_search_pool_size",
                         "Phase-1 candidate pool size per search.",
                         pool_bounds),
      };
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

Result<std::vector<SearchResult>> SearchEngine::Search(
    const QueryGraph& query, const SearchEngineOptions& options) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.searches->Increment();
  if (query.empty()) {
    metrics.search_errors->Increment();
    return Status::InvalidArgument("empty query graph");
  }

  Timer total_timer;
  SearchTrace* trace = options.trace;
  TraceSpan root_span(trace, "search");

  // Snapshot isolation: in corpus mode, acquire the corpus once and run
  // every phase against it. Ingest commits that land mid-search publish
  // new snapshots and never touch this one. A pinned engine (replay) uses
  // the same snapshot for every search.
  std::shared_ptr<const CorpusSnapshot> snapshot = pinned_;
  const InvertedIndex* index = index_;
  if (snapshot == nullptr && corpus_ != nullptr) snapshot = corpus_->Snapshot();
  if (snapshot != nullptr) {
    index = snapshot->index.get();
    if (trace != nullptr) {
      trace->Annotate(root_span.id(), "corpus_version", snapshot->version);
    }
  }

  // Phase 1: candidate extraction.
  Timer phase_timer;
  TraceSpan phase1_span(trace, "phase1_extract");
  CandidateExtractor extractor(index);
  std::vector<Candidate> candidates =
      extractor.Extract(query, options.extraction);
  phase1_span.Annotate("pool_requested",
                       static_cast<uint64_t>(options.extraction.pool_size));
  phase1_span.Annotate("pool_size", static_cast<uint64_t>(candidates.size()));
  phase1_span.End();
  const double phase1_elapsed = phase_timer.ElapsedSeconds();
  metrics.phase1_seconds->Observe(phase1_elapsed);
  metrics.pool_size->Observe(static_cast<double>(candidates.size()));
  metrics.candidates_extracted->Increment(candidates.size());
  if (candidates.empty()) {
    if (options.stats != nullptr) {
      options.stats->phase1_seconds = phase1_elapsed;
      options.stats->total_seconds = total_timer.ElapsedSeconds();
    }
    metrics.total_seconds->Observe(total_timer.ElapsedSeconds());
    return std::vector<SearchResult>{};
  }

  double max_coarse = 0.0;
  for (const Candidate& c : candidates) {
    max_coarse = std::max(max_coarse, c.coarse_score);
  }
  if (max_coarse <= 0.0) max_coarse = 1.0;

  const Schema& query_schema = query.AsSchema();
  std::vector<SearchResult> results;
  results.reserve(candidates.size());

  // Phases 2 and 3 interleave per candidate; their spans are emitted as
  // pool-wide aggregates after the loop.
  double phase2_elapsed = 0.0;
  double phase3_elapsed = 0.0;
  const size_t num_matchers = ensemble_.NumMatchers();
  // Per-matcher wall time feeds both the trace and the budget check.
  const bool track_matcher_time =
      trace != nullptr || options.matcher_budget_seconds > 0.0;
  std::vector<double> matcher_seconds;
  if (track_matcher_time) matcher_seconds.assign(num_matchers, 0.0);
  size_t candidates_matched = 0;
  size_t candidates_scored = 0;
  size_t matched_elements_total = 0;
  double tightness_penalty_total = 0.0;

  // Graceful-degradation state: benched[m] marks a matcher dropped for
  // the rest of this search (it threw, its fault site fired, or it blew
  // its time budget). A degraded search still ranks and returns.
  std::vector<char> benched(num_matchers, 0);
  size_t benched_count = 0;
  bool deadline_hit = false;
  std::vector<std::string> dropped_matchers;
  size_t coarse_only_candidates = 0;
  const std::vector<std::string> matcher_names = ensemble_.MatcherNames();

  for (const Candidate& candidate : candidates) {
    // The schema comes from the same snapshot the candidates did, so the
    // id always resolves even if the schema was removed after Snapshot().
    SCHEMR_ASSIGN_OR_RETURN(
        Schema schema, snapshot != nullptr
                           ? snapshot->schemas->Get(candidate.schema_id)
                           : repository_->Get(candidate.schema_id));

    SearchResult result;
    result.schema_id = candidate.schema_id;
    result.name = schema.name();
    result.description = schema.description();
    result.coarse_score = candidate.coarse_score;
    result.num_entities = schema.NumEntities();
    result.num_attributes = schema.NumAttributes();

    double coarse_norm = candidate.coarse_score / max_coarse;

    if (!options.enable_matching) {
      // Ablation: phase 1 only.
      result.score = coarse_norm;
      results.push_back(std::move(result));
      continue;
    }

    if (!deadline_hit && options.deadline_seconds > 0.0 &&
        total_timer.ElapsedSeconds() > options.deadline_seconds) {
      deadline_hit = true;
    }
    if (deadline_hit || benched_count == num_matchers) {
      // Out of time (or out of matchers): fall back to the phase-1
      // ranking for this candidate rather than failing the search.
      result.score = coarse_norm;
      ++coarse_only_candidates;
      results.push_back(std::move(result));
      continue;
    }

    // Phase 2: schema matching (matchers isolated by the ensemble).
    Timer candidate_timer;
    EnsembleResult ensemble_result = ensemble_.Match(
        query_schema, schema,
        track_matcher_time ? &matcher_seconds : nullptr, &benched);
    SimilarityMatrix combined = std::move(ensemble_result.combined);
    phase2_elapsed += candidate_timer.ElapsedSeconds();
    ++candidates_matched;

    for (size_t m = 0; m < num_matchers; ++m) {
      if (benched[m] == 0 && ensemble_result.failed[m] != 0) {
        benched[m] = 1;
        ++benched_count;
        dropped_matchers.push_back(matcher_names[m]);
        metrics.matcher_failures->Increment();
      } else if (benched[m] == 0 && options.matcher_budget_seconds > 0.0 &&
                 matcher_seconds[m] > options.matcher_budget_seconds) {
        benched[m] = 1;
        ++benched_count;
        dropped_matchers.push_back(matcher_names[m] + " (budget)");
        metrics.matcher_failures->Increment();
      }
    }

    if (!options.enable_tightness) {
      // Ablation: rank by the unpenalized mean of matched element scores.
      double sum = 0.0;
      size_t matched = 0;
      for (ElementId e = 0; e < schema.size(); ++e) {
        double s = combined.ColumnMax(e);
        if (s >= options.tightness.match_threshold) {
          sum += s;
          ++matched;
          result.matched_elements.push_back(MatchedElement{e, s, s});
        }
      }
      double mean = matched == 0 ? 0.0 : sum / static_cast<double>(matched);
      if (options.tightness.scale_by_query_coverage) {
        mean *= QueryCoverage(combined, options.tightness.match_threshold);
      }
      result.num_matches = matched;
      result.tightness = mean;
      result.score = options.coarse_blend * coarse_norm +
                     (1.0 - options.coarse_blend) * mean;
      results.push_back(std::move(result));
      continue;
    }

    // Phase 3: tightness-of-fit.
    candidate_timer.Reset();
    EntityGraph graph(schema);
    TightnessResult tof =
        ComputeTightnessOfFit(schema, graph, combined, options.tightness);
    phase3_elapsed += candidate_timer.ElapsedSeconds();
    ++candidates_scored;
    matched_elements_total += tof.matched.size();
    for (const MatchedElement& m : tof.matched) {
      tightness_penalty_total += m.score - m.penalized_score;
    }
    result.tightness = tof.score;
    result.best_anchor = tof.best_anchor;
    result.num_matches = tof.matched.size();
    result.matched_elements = std::move(tof.matched);
    result.score = options.coarse_blend * coarse_norm +
                   (1.0 - options.coarse_blend) * tof.score;
    results.push_back(std::move(result));
  }

  if (options.enable_matching) {
    metrics.phase2_seconds->Observe(phase2_elapsed);
    if (trace != nullptr) {
      size_t phase2_id = trace->AddSpan("phase2_match", phase2_elapsed,
                                        root_span.id());
      trace->Annotate(phase2_id, "candidates",
                      static_cast<uint64_t>(candidates_matched));
      trace->Annotate(phase2_id, "matchers",
                      static_cast<uint64_t>(ensemble_.NumMatchers()));
      std::vector<std::string> names = ensemble_.MatcherNames();
      for (size_t m = 0; m < names.size(); ++m) {
        trace->AddSpan("matcher:" + names[m], matcher_seconds[m], phase2_id);
      }
    }
  }
  if (options.enable_matching && options.enable_tightness) {
    metrics.phase3_seconds->Observe(phase3_elapsed);
    if (trace != nullptr) {
      size_t phase3_id = trace->AddSpan("phase3_tightness", phase3_elapsed,
                                        root_span.id());
      trace->Annotate(phase3_id, "candidates",
                      static_cast<uint64_t>(candidates_scored));
      trace->Annotate(phase3_id, "matched_elements",
                      static_cast<uint64_t>(matched_elements_total));
      trace->Annotate(phase3_id, "total_penalty", tightness_penalty_total);
    }
  }

  // Collaboration boost: fold ratings and usage statistics in before the
  // final sort. Annotations are read live (not from the snapshot): they
  // tune ranking rather than define the corpus, and their accessors are
  // internally synchronized.
  if (options.annotation_boost > 0.0) {
    const SchemaRepository* annotations =
        corpus_ != nullptr ? corpus_->repository() : repository_;
    for (SearchResult& result : results) {
      auto rating = annotations->GetRatingSummary(result.schema_id);
      auto usage = annotations->GetUsageCount(result.schema_id);
      double rating_norm = rating.ok() ? rating->average / 5.0 : 0.0;
      double usage_norm =
          usage.ok() ? static_cast<double>(*usage) /
                           (static_cast<double>(*usage) + 10.0)
                     : 0.0;
      result.score *= 1.0 + options.annotation_boost *
                                (0.7 * rating_norm + 0.3 * usage_norm);
    }
  }

  TraceSpan rank_span(trace, "rank");
  const size_t ranked_pool = results.size();
  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.coarse_score != b.coarse_score) {
      return a.coarse_score > b.coarse_score;
    }
    return a.schema_id < b.schema_id;
  };
  std::sort(results.begin(), results.end(), better);
  if (options.offset > 0) {
    if (options.offset >= results.size()) {
      results.clear();
    } else {
      results.erase(results.begin(),
                    results.begin() + static_cast<long>(options.offset));
    }
  }
  if (results.size() > options.top_k) results.resize(options.top_k);
  metrics.candidates_pruned->Increment(ranked_pool - results.size());
  rank_span.Annotate("returned", static_cast<uint64_t>(results.size()));
  rank_span.Annotate("pruned",
                     static_cast<uint64_t>(ranked_pool - results.size()));
  rank_span.End();

  // One classifier decides "degraded" for the metric, the wire format,
  // and the audit log alike (SearchStats::ComputeDegraded).
  SearchStats classified;
  classified.deadline_hit = deadline_hit;
  classified.dropped_matchers = dropped_matchers;
  classified.coarse_only_candidates = coarse_only_candidates;
  const bool degraded = classified.ComputeDegraded();
  if (degraded) {
    metrics.searches_degraded->Increment();
    for (SearchResult& result : results) result.degraded = true;
    if (trace != nullptr) {
      trace->Annotate(root_span.id(), "degraded", uint64_t{1});
      if (deadline_hit) {
        trace->Annotate(root_span.id(), "deadline_hit", uint64_t{1});
      }
      if (!dropped_matchers.empty()) {
        std::string joined;
        for (const std::string& name : dropped_matchers) {
          if (!joined.empty()) joined += ",";
          joined += name;
        }
        trace->Annotate(root_span.id(), "dropped_matchers", joined);
      }
      if (coarse_only_candidates > 0) {
        trace->Annotate(root_span.id(), "coarse_only_candidates",
                        static_cast<uint64_t>(coarse_only_candidates));
      }
    }
  }
  const double total_elapsed = total_timer.ElapsedSeconds();
  if (options.stats != nullptr) {
    classified.degraded = degraded;
    classified.total_seconds = total_elapsed;
    classified.phase1_seconds = phase1_elapsed;
    classified.phase2_seconds = phase2_elapsed;
    classified.phase3_seconds = phase3_elapsed;
    *options.stats = std::move(classified);
  }

  metrics.total_seconds->Observe(total_elapsed);
  return results;
}

Result<std::vector<SearchResult>> SearchEngine::SearchKeywords(
    const std::string& keywords, const SearchEngineOptions& options) const {
  SCHEMR_ASSIGN_OR_RETURN(QueryGraph query, ParseQuery(keywords));
  return Search(query, options);
}

}  // namespace schemr
