#include "core/search_engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <optional>
#include <queue>

#include "core/fingerprint.h"
#include "core/query_parser.h"
#include "core/result_cache.h"
#include "match/features.h"
#include "match/signature.h"
#include "obs/fault_bridge.h"
#include "obs/metrics.h"
#include "util/executor.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace schemr {

namespace {

/// Metric handles are resolved once; the increment path is lock-free.
struct EngineMetrics {
  Counter* searches;
  Counter* search_errors;
  Counter* searches_degraded;
  Counter* matcher_failures;
  Counter* candidates_extracted;
  Counter* candidates_pruned;
  Counter* candidates_skipped;
  Counter* prefilter_rejected;
  Histogram* total_seconds;
  Histogram* phase1_seconds;
  Histogram* phase2_seconds;
  Histogram* phase3_seconds;
  Histogram* pool_size;

  static const EngineMetrics& Get() {
    static const EngineMetrics* metrics = [] {
      InstallFaultMetricsBridge();
      MetricsRegistry& r = MetricsRegistry::Global();
      static const std::vector<double> pool_bounds{1,  2,   5,   10,  25,
                                                   50, 100, 250, 500, 1000};
      auto* m = new EngineMetrics{
          r.GetCounter("schemr_search_requests_total",
                       "Search pipeline invocations."),
          r.GetCounter("schemr_search_errors_total",
                       "Searches that returned a non-OK status."),
          r.GetCounter("schemr_searches_degraded_total",
                       "Searches that returned degraded (best-effort) "
                       "results after a matcher failure or deadline."),
          r.GetCounter("schemr_matcher_failures_total",
                       "Matchers benched mid-search (threw, faulted, or "
                       "exceeded their time budget)."),
          r.GetCounter("schemr_search_candidates_extracted_total",
                       "Phase-1 candidates handed to the match phase."),
          r.GetCounter("schemr_search_candidates_pruned_total",
                       "Pool candidates dropped by ranking/pagination."),
          r.GetCounter("schemr_search_candidates_skipped_total",
                       "Candidates whose phases 2/3 were skipped by "
                       "score-bound pruning (exact; the returned window "
                       "never changes)."),
          r.GetCounter("schemr_search_prefilter_rejected_total",
                       "Candidates rejected by the signature pre-filter "
                       "before any matcher ran (approximate mode; "
                       "explicit opt-in per request)."),
          r.GetHistogram("schemr_search_seconds",
                         "End-to-end search latency."),
          r.GetHistogram("schemr_search_phase1_seconds",
                         "Phase 1 (candidate extraction) latency."),
          r.GetHistogram("schemr_search_phase2_seconds",
                         "Phase 2 (matcher ensemble) latency per search."),
          r.GetHistogram("schemr_search_phase3_seconds",
                         "Phase 3 (tightness-of-fit) latency per search."),
          r.GetHistogram("schemr_search_pool_size",
                         "Phase-1 candidate pool size per search.",
                         pool_bounds),
      };
      return m;
    }();
    return *metrics;
  }
};

/// The running pruning floor: once `k` final (unboosted) scores have been
/// observed, floor() is the k-th best of them, published through an
/// atomic so the hot-path check never takes the lock. The floor only
/// rises, so a candidate whose score bound is strictly below it at ANY
/// moment is strictly below the final k-th best score too -- skipping it
/// can never change the returned window.
class TopKFloor {
 public:
  explicit TopKFloor(size_t k) : k_(k) {}

  void Observe(double score) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.size() < k_) {
      heap_.push(score);
      if (heap_.size() == k_) {
        floor_.store(heap_.top(), std::memory_order_release);
      }
    } else if (score > heap_.top()) {
      heap_.pop();
      heap_.push(score);
      floor_.store(heap_.top(), std::memory_order_release);
    }
  }

  /// -inf until k scores have been observed (prune nothing early).
  double floor() const { return floor_.load(std::memory_order_acquire); }

 private:
  const size_t k_;
  std::mutex mutex_;
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      heap_;
  std::atomic<double> floor_{-std::numeric_limits<double>::infinity()};
};

/// Per-worker tallies, merged into the pool-wide totals once per worker
/// (not per candidate) so the scoring loop stays contention-free.
struct WorkerTally {
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;
  size_t candidates_matched = 0;
  size_t candidates_scored = 0;
  size_t coarse_only = 0;
  size_t skipped = 0;
  size_t prefilter_rejected = 0;
  size_t matched_elements = 0;
  double tightness_penalty = 0.0;
};

}  // namespace

Result<std::vector<SearchResult>> SearchEngine::Search(
    const QueryGraph& query, const SearchEngineOptions& options) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.searches->Increment();
  if (query.empty()) {
    metrics.search_errors->Increment();
    return Status::InvalidArgument("empty query graph");
  }

  Timer total_timer;
  SearchTrace* trace = options.trace;
  TraceSpan root_span(trace, "search");

  // Snapshot isolation: in corpus mode, acquire the corpus once and run
  // every phase against it. Ingest commits that land mid-search publish
  // new snapshots and never touch this one. A pinned engine (replay) uses
  // the same snapshot for every search.
  std::shared_ptr<const CorpusSnapshot> snapshot = pinned_;
  const InvertedIndex* index = index_;
  if (snapshot == nullptr && corpus_ != nullptr) snapshot = corpus_->Snapshot();
  if (snapshot != nullptr) {
    index = snapshot->index.get();
    if (trace != nullptr) {
      trace->Annotate(root_span.id(), "corpus_version", snapshot->version);
    }
  }

  // Result cache: a search is pure in (query, snapshot, options), so a
  // hit returns the stored ranked list with zero pipeline work. Requires
  // a snapshot (the version keys invalidation), no live annotation reads,
  // and no explain trace (explain exists to show the pipeline running).
  const bool cache_eligible =
      result_cache_ != nullptr && !options.cache_bypass &&
      snapshot != nullptr && options.annotation_boost == 0.0 &&
      trace == nullptr;
  ResultCacheKey cache_key;
  if (cache_eligible) {
    cache_key.fingerprint = FingerprintQuery(query);
    cache_key.corpus_version = snapshot->version;
    cache_key.options_hash = HashSearchOptions(options);
    if (auto cached = result_cache_->Get(cache_key)) {
      const double elapsed = total_timer.ElapsedSeconds();
      if (options.stats != nullptr) {
        *options.stats = SearchStats{};
        options.stats->cache_hit = true;
        options.stats->total_seconds = elapsed;
      }
      metrics.total_seconds->Observe(elapsed);
      return *cached;
    }
  }

  // Phase 1: candidate extraction.
  Timer phase_timer;
  TraceSpan phase1_span(trace, "phase1_extract");
  CandidateExtractor extractor(index);
  std::vector<Candidate> candidates =
      extractor.Extract(query, options.extraction);
  phase1_span.Annotate("pool_requested",
                       static_cast<uint64_t>(options.extraction.pool_size));
  phase1_span.Annotate("pool_size", static_cast<uint64_t>(candidates.size()));
  phase1_span.End();
  const double phase1_elapsed = phase_timer.ElapsedSeconds();
  metrics.phase1_seconds->Observe(phase1_elapsed);
  metrics.pool_size->Observe(static_cast<double>(candidates.size()));
  metrics.candidates_extracted->Increment(candidates.size());
  if (candidates.empty()) {
    if (options.stats != nullptr) {
      options.stats->phase1_seconds = phase1_elapsed;
      options.stats->total_seconds = total_timer.ElapsedSeconds();
    }
    metrics.total_seconds->Observe(total_timer.ElapsedSeconds());
    return std::vector<SearchResult>{};
  }

  double max_coarse = 0.0;
  for (const Candidate& c : candidates) {
    max_coarse = std::max(max_coarse, c.coarse_score);
  }
  if (max_coarse <= 0.0) max_coarse = 1.0;

  const Schema& query_schema = query.AsSchema();

  // --- Columnar feature prep (DESIGN.md §16) -----------------------------
  //
  // When the snapshot carries a match-feature catalog, the query's own
  // features are built ONCE here (the legacy path re-derived them per
  // candidate) and each candidate's precomputed features ride into the
  // ensemble. Signatures additionally (a) order the candidate visit so
  // high-similarity candidates raise the pruning floor early -- exact,
  // since the floor only rises -- and (b) when options.prefilter > 0,
  // reject low-similarity candidates outright (explicitly approximate).
  Timer prep_timer;
  const MatchFeatureCatalog* catalog =
      options.enable_matching && snapshot != nullptr
          ? snapshot->match_features.get()
          : nullptr;
  std::shared_ptr<SchemaFeatures> query_features;
  std::vector<double> signature_similarity;
  if (catalog != nullptr) {
    query_features = BuildSchemaFeatures(query_schema, catalog->options());
    ComputeSignature(query_features.get(), &catalog->df());
    signature_similarity.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      const SchemaFeatures* f = catalog->Find(candidates[i].schema_id);
      // A schema missing from the catalog is never screened or demoted.
      signature_similarity[i] =
          f != nullptr
              ? EstimatedSimilarity(query_features->signature, f->signature)
              : 1.0;
    }
  }
  const bool prefilter_active =
      catalog != nullptr && options.prefilter > 0.0;
  const double prep_seconds = prep_timer.ElapsedSeconds();

  // --- Phases 2+3: parallel candidate scoring ----------------------------
  //
  // Candidate i is scored into slots[i] by whichever worker claims i off
  // the shared cursor, so the compacted output is in candidate order no
  // matter how many threads ran or how they interleaved: the ranked list
  // (and therefore the result digest) is bit-identical to serial
  // execution at any scoring_threads. The request thread always
  // participates; pool helpers are a latency optimization that may be
  // shed when the engine pool is saturated by concurrent searches.
  const size_t num_matchers = ensemble_.NumMatchers();
  // Per-matcher wall time feeds both the trace and the budget check.
  const bool track_matcher_time =
      trace != nullptr || options.matcher_budget_seconds > 0.0;
  // Benching and budget accounting live in one synchronized state so a
  // matcher failing under several workers at once is benched exactly once.
  DegradationState degradation(ensemble_.MatcherNames(),
                               options.matcher_budget_seconds);

  std::vector<SearchResult> slots(candidates.size());
  std::vector<char> included(candidates.size(), 0);
  std::atomic<size_t> cursor{0};
  std::atomic<bool> deadline_hit{false};
  std::atomic<bool> failed{false};
  std::mutex merge_mutex;
  Status first_error;
  double phase2_elapsed = 0.0;
  double phase3_elapsed = 0.0;
  size_t candidates_matched = 0;
  size_t candidates_scored = 0;
  size_t coarse_only_candidates = 0;
  size_t candidates_skipped = 0;
  size_t matched_elements_total = 0;
  double tightness_penalty_total = 0.0;

  // Score-bound pruning floor over the first offset+top_k ranks. Inactive
  // when the window covers the whole pool (nothing could be excluded) or
  // in the matching-off ablation (phases 2/3 do not run anyway).
  const size_t prune_window = options.offset + options.top_k;
  const bool prune = options.enable_pruning && options.enable_matching &&
                     prune_window > 0 && prune_window < candidates.size();
  std::optional<TopKFloor> floor;
  if (prune) floor.emplace(prune_window);
  // The floor tracks unboosted scores while ranking boosts by a factor in
  // [1, 1+boost]; scaling the bound by the ceiling keeps pruning exact
  // under annotation boost (DESIGN.md §11).
  const double bound_ceiling = 1.0 + std::max(0.0, options.annotation_boost);

  auto score_candidate = [&](size_t i, WorkerTally* tally,
                             std::vector<char>* benched_scratch,
                             std::vector<double>* seconds_scratch,
                             MatchScratch* match_scratch) -> bool {
    const Candidate& candidate = candidates[i];
    if (prefilter_active && signature_similarity[i] < options.prefilter) {
      // Approximate mode: screened out before any matcher runs. The slot
      // stays excluded -- the candidate is out of the ranking entirely.
      ++tally->prefilter_rejected;
      return true;
    }
    // The schema comes from the same snapshot the candidates did, so the
    // id always resolves even if the schema was removed after Snapshot().
    auto resolved = snapshot != nullptr
                        ? snapshot->schemas->Get(candidate.schema_id)
                        : repository_->Get(candidate.schema_id);
    if (!resolved.ok()) {
      std::lock_guard<std::mutex> lock(merge_mutex);
      if (first_error.ok()) first_error = resolved.status();
      failed.store(true, std::memory_order_release);
      return false;
    }
    const Schema& schema = *resolved;

    SearchResult& result = slots[i];
    result.schema_id = candidate.schema_id;
    result.name = schema.name();
    result.description = schema.description();
    result.coarse_score = candidate.coarse_score;
    result.num_entities = schema.NumEntities();
    result.num_attributes = schema.NumAttributes();

    const double coarse_norm = candidate.coarse_score / max_coarse;

    if (!options.enable_matching) {
      // Ablation: phase 1 only.
      result.score = coarse_norm;
      included[i] = 1;
      return true;
    }

    if (floor.has_value()) {
      // score = blend·coarse_norm + (1-blend)·tightness with tightness in
      // [0, 1] (matcher cells are clamped to [0, 1]; tightness is a
      // penalized mean of them, optionally scaled by coverage <= 1), so
      // the bound is exact: strictly below the floor means phases 2/3
      // cannot move this candidate into the returned window.
      const double bound = (options.coarse_blend * coarse_norm +
                            (1.0 - options.coarse_blend)) *
                           bound_ceiling;
      if (bound < floor->floor()) {
        ++tally->skipped;
        return true;  // slot stays excluded
      }
    }

    if (!deadline_hit.load(std::memory_order_relaxed) &&
        options.deadline_seconds > 0.0 &&
        total_timer.ElapsedSeconds() > options.deadline_seconds) {
      deadline_hit.store(true, std::memory_order_relaxed);
    }
    degradation.SnapshotBenched(benched_scratch);
    bool all_benched = true;
    for (char b : *benched_scratch) all_benched = all_benched && b != 0;
    if (deadline_hit.load(std::memory_order_relaxed) || all_benched) {
      // Out of time (or out of matchers): fall back to the phase-1
      // ranking for this candidate rather than failing the search.
      result.score = coarse_norm;
      ++tally->coarse_only;
      included[i] = 1;
      if (floor.has_value()) floor->Observe(coarse_norm);
      return true;
    }

    // Phase 2: schema matching (matchers isolated by the ensemble; the
    // benched snapshot is this worker's private copy, so a concurrent
    // bench never races the ensemble's skip reads).
    Timer candidate_timer;
    if (track_matcher_time) seconds_scratch->assign(num_matchers, 0.0);
    MatchContext match_context;
    if (catalog != nullptr) {
      // Null candidate features make the ensemble fall back to the legacy
      // per-matcher path for this candidate only.
      match_context.query_features = query_features.get();
      match_context.candidate_features = catalog->Find(candidate.schema_id);
      match_context.scratch = match_scratch;
    }
    EnsembleResult ensemble_result = ensemble_.Match(
        query_schema, schema,
        track_matcher_time ? seconds_scratch : nullptr, benched_scratch,
        catalog != nullptr ? &match_context : nullptr);
    SimilarityMatrix combined = std::move(ensemble_result.combined);
    tally->phase2_seconds += candidate_timer.ElapsedSeconds();
    ++tally->candidates_matched;
    const size_t newly_benched = degradation.Observe(
        ensemble_result.failed, *benched_scratch,
        track_matcher_time ? seconds_scratch : nullptr);
    if (newly_benched > 0) metrics.matcher_failures->Increment(newly_benched);

    if (!options.enable_tightness) {
      // Ablation: rank by the unpenalized mean of matched element scores.
      double sum = 0.0;
      size_t matched = 0;
      for (ElementId e = 0; e < schema.size(); ++e) {
        double s = combined.ColumnMax(e);
        if (s >= options.tightness.match_threshold) {
          sum += s;
          ++matched;
          result.matched_elements.push_back(MatchedElement{e, s, s});
        }
      }
      double mean = matched == 0 ? 0.0 : sum / static_cast<double>(matched);
      if (options.tightness.scale_by_query_coverage) {
        mean *= QueryCoverage(combined, options.tightness.match_threshold);
      }
      result.num_matches = matched;
      result.tightness = mean;
      result.score = options.coarse_blend * coarse_norm +
                     (1.0 - options.coarse_blend) * mean;
      included[i] = 1;
      if (floor.has_value()) floor->Observe(result.score);
      return true;
    }

    // Phase 3: tightness-of-fit, against the snapshot's shared entity
    // graph when one exists (static mode builds a transient graph).
    candidate_timer.Reset();
    std::shared_ptr<const EntityGraph> shared_graph;
    std::optional<EntityGraph> local_graph;
    const EntityGraph* graph;
    if (snapshot != nullptr) {
      shared_graph =
          snapshot->entity_graphs->GetOrBuild(candidate.schema_id, schema);
      graph = shared_graph.get();
    } else {
      local_graph.emplace(schema);
      graph = &*local_graph;
    }
    TightnessResult tof =
        ComputeTightnessOfFit(schema, *graph, combined, options.tightness);
    tally->phase3_seconds += candidate_timer.ElapsedSeconds();
    ++tally->candidates_scored;
    tally->matched_elements += tof.matched.size();
    for (const MatchedElement& m : tof.matched) {
      tally->tightness_penalty += m.score - m.penalized_score;
    }
    result.tightness = tof.score;
    result.best_anchor = tof.best_anchor;
    result.num_matches = tof.matched.size();
    result.matched_elements = std::move(tof.matched);
    result.score = options.coarse_blend * coarse_norm +
                   (1.0 - options.coarse_blend) * tof.score;
    included[i] = 1;
    if (floor.has_value()) floor->Observe(result.score);
    return true;
  };

  // Visit order: signature-similar candidates first, so the pruning floor
  // reflects strong candidates early and weak ones hit the skip bound.
  // Slots stay indexed by the ORIGINAL candidate index and compaction
  // below walks slots in candidate order, so the ranked output (and the
  // replay digest) is independent of this permutation; with pruning the
  // skip set can only grow (the floor only rises), never admit or evict a
  // window member. stable_sort keeps ties in candidate order.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!signature_similarity.empty() && floor.has_value()) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return signature_similarity[a] > signature_similarity[b];
    });
  }

  size_t prefilter_rejected_total = 0;
  auto run_worker = [&] {
    WorkerTally tally;
    std::vector<char> benched_scratch;
    std::vector<double> seconds_scratch(num_matchers, 0.0);
    MatchScratch match_scratch;
    for (;;) {
      if (failed.load(std::memory_order_acquire)) break;
      const size_t next = cursor.fetch_add(1, std::memory_order_relaxed);
      if (next >= order.size()) break;
      if (!score_candidate(order[next], &tally, &benched_scratch,
                           &seconds_scratch, &match_scratch)) {
        break;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    phase2_elapsed += tally.phase2_seconds;
    phase3_elapsed += tally.phase3_seconds;
    candidates_matched += tally.candidates_matched;
    candidates_scored += tally.candidates_scored;
    coarse_only_candidates += tally.coarse_only;
    candidates_skipped += tally.skipped;
    prefilter_rejected_total += tally.prefilter_rejected;
    matched_elements_total += tally.matched_elements;
    tightness_penalty_total += tally.tightness_penalty;
  };

  const size_t scoring_threads = std::max<size_t>(1, options.scoring_threads);
  const size_t helpers_wanted =
      std::min(scoring_threads - 1, candidates.size() - 1);
  struct HelperSync {
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t pending = 0;
  };
  HelperSync sync;
  std::shared_ptr<BoundedExecutor> pool;
  if (helpers_wanted > 0) {
    pool = ScoringPool(helpers_wanted);
    for (size_t h = 0; h < helpers_wanted; ++h) {
      {
        std::lock_guard<std::mutex> lock(sync.mutex);
        ++sync.pending;
      }
      Status submitted = pool->TrySubmit([&](bool cancelled) {
        if (!cancelled) run_worker();
        std::lock_guard<std::mutex> lock(sync.mutex);
        --sync.pending;
        sync.done_cv.notify_all();
      });
      if (!submitted.ok()) {
        // Pool saturated (or shut down): fewer helpers, same answer. The
        // request thread drains the cursor regardless, so parallelism is
        // an optimization, never a dependency.
        std::lock_guard<std::mutex> lock(sync.mutex);
        --sync.pending;
        break;
      }
    }
  }
  FaultInjector::Global().Perturb("engine/score/start");
  run_worker();
  if (helpers_wanted > 0) {
    // Helpers signalled completion (or cancellation) exactly once each;
    // this wait cannot strand and orders their slot writes before the
    // compaction below.
    std::unique_lock<std::mutex> lock(sync.mutex);
    sync.done_cv.wait(lock, [&sync] { return sync.pending == 0; });
  }
  if (failed.load(std::memory_order_acquire)) return first_error;

  std::vector<SearchResult> results;
  results.reserve(candidates.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (included[i] != 0) results.push_back(std::move(slots[i]));
  }
  const std::vector<std::string> dropped_matchers =
      degradation.dropped_matchers();
  metrics.candidates_skipped->Increment(candidates_skipped);
  metrics.prefilter_rejected->Increment(prefilter_rejected_total);

  // Query feature + signature prep ran once up front on the request
  // thread; account it to phase 2, whose work it replaces.
  phase2_elapsed += prep_seconds;
  if (options.enable_matching) {
    metrics.phase2_seconds->Observe(phase2_elapsed);
    if (trace != nullptr) {
      size_t phase2_id = trace->AddSpan("phase2_match", phase2_elapsed,
                                        root_span.id());
      trace->Annotate(phase2_id, "candidates",
                      static_cast<uint64_t>(candidates_matched));
      if (prefilter_active) {
        trace->Annotate(phase2_id, "prefilter_rejected",
                        static_cast<uint64_t>(prefilter_rejected_total));
      }
      trace->Annotate(phase2_id, "matchers",
                      static_cast<uint64_t>(ensemble_.NumMatchers()));
      std::vector<std::string> names = ensemble_.MatcherNames();
      const std::vector<double> matcher_seconds = degradation.matcher_seconds();
      for (size_t m = 0; m < names.size(); ++m) {
        trace->AddSpan("matcher:" + names[m], matcher_seconds[m], phase2_id);
      }
    }
  }
  if (options.enable_matching && options.enable_tightness) {
    metrics.phase3_seconds->Observe(phase3_elapsed);
    if (trace != nullptr) {
      size_t phase3_id = trace->AddSpan("phase3_tightness", phase3_elapsed,
                                        root_span.id());
      trace->Annotate(phase3_id, "candidates",
                      static_cast<uint64_t>(candidates_scored));
      trace->Annotate(phase3_id, "matched_elements",
                      static_cast<uint64_t>(matched_elements_total));
      trace->Annotate(phase3_id, "total_penalty", tightness_penalty_total);
    }
  }

  // Collaboration boost: fold ratings and usage statistics in before the
  // final sort. Annotations are read live (not from the snapshot): they
  // tune ranking rather than define the corpus, and their accessors are
  // internally synchronized.
  if (options.annotation_boost > 0.0) {
    const SchemaRepository* annotations =
        corpus_ != nullptr ? corpus_->repository() : repository_;
    for (SearchResult& result : results) {
      auto rating = annotations->GetRatingSummary(result.schema_id);
      auto usage = annotations->GetUsageCount(result.schema_id);
      double rating_norm = rating.ok() ? rating->average / 5.0 : 0.0;
      double usage_norm =
          usage.ok() ? static_cast<double>(*usage) /
                           (static_cast<double>(*usage) + 10.0)
                     : 0.0;
      result.score *= 1.0 + options.annotation_boost *
                                (0.7 * rating_norm + 0.3 * usage_norm);
    }
  }

  TraceSpan rank_span(trace, "rank");
  const size_t ranked_pool = results.size();
  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.coarse_score != b.coarse_score) {
      return a.coarse_score > b.coarse_score;
    }
    return a.schema_id < b.schema_id;
  };
  std::sort(results.begin(), results.end(), better);
  if (options.offset > 0) {
    if (options.offset >= results.size()) {
      results.clear();
    } else {
      results.erase(results.begin(),
                    results.begin() + static_cast<long>(options.offset));
    }
  }
  if (results.size() > options.top_k) results.resize(options.top_k);
  metrics.candidates_pruned->Increment(ranked_pool - results.size());
  rank_span.Annotate("returned", static_cast<uint64_t>(results.size()));
  rank_span.Annotate("pruned",
                     static_cast<uint64_t>(ranked_pool - results.size()));
  rank_span.End();

  // One classifier decides "degraded" for the metric, the wire format,
  // and the audit log alike (SearchStats::ComputeDegraded).
  SearchStats classified;
  classified.deadline_hit = deadline_hit.load(std::memory_order_relaxed);
  classified.dropped_matchers = dropped_matchers;
  classified.coarse_only_candidates = coarse_only_candidates;
  classified.candidates_skipped = candidates_skipped;
  classified.prefilter_rejected = prefilter_rejected_total;
  const bool degraded = classified.ComputeDegraded();
  if (degraded) {
    metrics.searches_degraded->Increment();
    for (SearchResult& result : results) result.degraded = true;
    if (trace != nullptr) {
      trace->Annotate(root_span.id(), "degraded", uint64_t{1});
      if (classified.deadline_hit) {
        trace->Annotate(root_span.id(), "deadline_hit", uint64_t{1});
      }
      if (!dropped_matchers.empty()) {
        std::string joined;
        for (const std::string& name : dropped_matchers) {
          if (!joined.empty()) joined += ",";
          joined += name;
        }
        trace->Annotate(root_span.id(), "dropped_matchers", joined);
      }
      if (coarse_only_candidates > 0) {
        trace->Annotate(root_span.id(), "coarse_only_candidates",
                        static_cast<uint64_t>(coarse_only_candidates));
      }
    }
  }
  // Store only full-fidelity answers: a degraded list reflects what a
  // deadline or a benched matcher left behind, not the query's answer.
  if (cache_eligible && !degraded) {
    result_cache_->Put(cache_key, results);
  }

  const double total_elapsed = total_timer.ElapsedSeconds();
  if (options.stats != nullptr) {
    classified.degraded = degraded;
    classified.total_seconds = total_elapsed;
    classified.phase1_seconds = phase1_elapsed;
    classified.phase2_seconds = phase2_elapsed;
    classified.phase3_seconds = phase3_elapsed;
    *options.stats = std::move(classified);
  }

  metrics.total_seconds->Observe(total_elapsed);
  return results;
}

void SearchEngine::EnableResultCache(size_t capacity) {
  result_cache_ = std::make_shared<ResultCache>(capacity);
}

std::shared_ptr<BoundedExecutor> SearchEngine::ScoringPool(
    size_t helpers) const {
  std::lock_guard<std::mutex> lock(scoring_pool_mutex_);
  if (scoring_pool_ == nullptr || scoring_pool_->num_workers() < helpers ||
      scoring_pool_->wedged()) {
    // Regrow by replacement: searches that already grabbed the old pool
    // keep their shared_ptr (its workers drain normally), new searches
    // get the bigger one.
    BoundedExecutor::Options pool_options;
    pool_options.num_workers = helpers;
    pool_options.queue_capacity = std::max<size_t>(16, helpers * 4);
    scoring_pool_ = std::make_shared<BoundedExecutor>(pool_options);
  }
  return scoring_pool_;
}

Result<std::vector<SearchResult>> SearchEngine::SearchKeywords(
    const std::string& keywords, const SearchEngineOptions& options) const {
  SCHEMR_ASSIGN_OR_RETURN(QueryGraph query, ParseQuery(keywords));
  return Search(query, options);
}

}  // namespace schemr
