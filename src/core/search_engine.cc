#include "core/search_engine.h"

#include <algorithm>

#include "core/query_parser.h"

namespace schemr {

Result<std::vector<SearchResult>> SearchEngine::Search(
    const QueryGraph& query, const SearchEngineOptions& options) const {
  if (query.empty()) {
    return Status::InvalidArgument("empty query graph");
  }

  // Phase 1: candidate extraction.
  CandidateExtractor extractor(index_);
  std::vector<Candidate> candidates =
      extractor.Extract(query, options.extraction);
  if (candidates.empty()) return std::vector<SearchResult>{};

  double max_coarse = 0.0;
  for (const Candidate& c : candidates) {
    max_coarse = std::max(max_coarse, c.coarse_score);
  }
  if (max_coarse <= 0.0) max_coarse = 1.0;

  const Schema& query_schema = query.AsSchema();
  std::vector<SearchResult> results;
  results.reserve(candidates.size());

  for (const Candidate& candidate : candidates) {
    SCHEMR_ASSIGN_OR_RETURN(Schema schema, repository_->Get(candidate.schema_id));

    SearchResult result;
    result.schema_id = candidate.schema_id;
    result.name = schema.name();
    result.description = schema.description();
    result.coarse_score = candidate.coarse_score;
    result.num_entities = schema.NumEntities();
    result.num_attributes = schema.NumAttributes();

    double coarse_norm = candidate.coarse_score / max_coarse;

    if (!options.enable_matching) {
      // Ablation: phase 1 only.
      result.score = coarse_norm;
      results.push_back(std::move(result));
      continue;
    }

    // Phase 2: schema matching.
    SimilarityMatrix combined = ensemble_.MatchCombined(query_schema, schema);

    if (!options.enable_tightness) {
      // Ablation: rank by the unpenalized mean of matched element scores.
      double sum = 0.0;
      size_t matched = 0;
      for (ElementId e = 0; e < schema.size(); ++e) {
        double s = combined.ColumnMax(e);
        if (s >= options.tightness.match_threshold) {
          sum += s;
          ++matched;
          result.matched_elements.push_back(MatchedElement{e, s, s});
        }
      }
      double mean = matched == 0 ? 0.0 : sum / static_cast<double>(matched);
      if (options.tightness.scale_by_query_coverage) {
        mean *= QueryCoverage(combined, options.tightness.match_threshold);
      }
      result.num_matches = matched;
      result.tightness = mean;
      result.score = options.coarse_blend * coarse_norm +
                     (1.0 - options.coarse_blend) * mean;
      results.push_back(std::move(result));
      continue;
    }

    // Phase 3: tightness-of-fit.
    EntityGraph graph(schema);
    TightnessResult tof =
        ComputeTightnessOfFit(schema, graph, combined, options.tightness);
    result.tightness = tof.score;
    result.best_anchor = tof.best_anchor;
    result.num_matches = tof.matched.size();
    result.matched_elements = std::move(tof.matched);
    result.score = options.coarse_blend * coarse_norm +
                   (1.0 - options.coarse_blend) * tof.score;
    results.push_back(std::move(result));
  }

  // Collaboration boost: fold ratings and usage statistics in before the
  // final sort.
  if (options.annotation_boost > 0.0) {
    for (SearchResult& result : results) {
      auto rating = repository_->GetRatingSummary(result.schema_id);
      auto usage = repository_->GetUsageCount(result.schema_id);
      double rating_norm = rating.ok() ? rating->average / 5.0 : 0.0;
      double usage_norm =
          usage.ok() ? static_cast<double>(*usage) /
                           (static_cast<double>(*usage) + 10.0)
                     : 0.0;
      result.score *= 1.0 + options.annotation_boost *
                                (0.7 * rating_norm + 0.3 * usage_norm);
    }
  }

  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.coarse_score != b.coarse_score) {
      return a.coarse_score > b.coarse_score;
    }
    return a.schema_id < b.schema_id;
  };
  std::sort(results.begin(), results.end(), better);
  if (options.offset > 0) {
    if (options.offset >= results.size()) {
      results.clear();
    } else {
      results.erase(results.begin(),
                    results.begin() + static_cast<long>(options.offset));
    }
  }
  if (results.size() > options.top_k) results.resize(options.top_k);
  return results;
}

Result<std::vector<SearchResult>> SearchEngine::SearchKeywords(
    const std::string& keywords, const SearchEngineOptions& options) const {
  SCHEMR_ASSIGN_OR_RETURN(QueryGraph query, ParseQuery(keywords));
  return Search(query, options);
}

}  // namespace schemr
