#include "core/fingerprint.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace schemr {

namespace {

// FNV-1a 64-bit over bytes; combined with a splitmix-style finalizer for
// mixing already-hashed values. Deliberately self-contained: the
// fingerprint definition is part of the audit-log wire contract and must
// not drift with std::hash.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashString(uint64_t h, std::string_view s) {
  return HashBytes(h, s.data(), s.size());
}

uint64_t Mix(uint64_t h, uint64_t value) {
  value += 0x9e3779b97f4a7c15ull;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  value ^= value >> 31;
  return HashBytes(h, &value, sizeof(value));
}

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Canonical hash of the subtree rooted at `id`: kind, data type, and
/// lowercased name of the element, plus the *sorted* hashes of its child
/// subtrees. Sorting makes sibling order irrelevant while distinct
/// structures (different nesting, different parents) stay distinct.
uint64_t HashSubtree(const Schema& schema, ElementId id) {
  const Element& e = schema.element(id);
  uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<uint64_t>(e.kind));
  h = Mix(h, static_cast<uint64_t>(e.type));
  h = HashString(h, Lower(e.name));
  std::vector<uint64_t> children;
  for (ElementId child : schema.Children(id)) {
    children.push_back(HashSubtree(schema, child));
  }
  std::sort(children.begin(), children.end());
  for (uint64_t c : children) h = Mix(h, c);
  return h;
}

/// Shape hash of one fragment: sorted root-subtree hashes plus the
/// foreign-key edges rendered as (attribute path, entity name) pairs so
/// the hash is independent of element-id assignment order.
uint64_t HashFragment(const Schema& fragment) {
  std::vector<uint64_t> roots;
  for (ElementId root : fragment.Roots()) {
    roots.push_back(HashSubtree(fragment, root));
  }
  std::sort(roots.begin(), roots.end());
  uint64_t h = kFnvOffset;
  for (uint64_t r : roots) h = Mix(h, r);

  std::vector<uint64_t> fks;
  for (const ForeignKey& fk : fragment.foreign_keys()) {
    uint64_t fh = kFnvOffset;
    fh = HashString(fh, Lower(fragment.Path(fk.attribute)));
    fh = HashString(fh, Lower(fragment.Path(fk.target_entity)));
    fks.push_back(fh);
  }
  std::sort(fks.begin(), fks.end());
  for (uint64_t f : fks) h = Mix(h, f);
  return h;
}

uint64_t HashKeywords(const std::vector<std::string>& keywords) {
  std::vector<std::string> terms;
  terms.reserve(keywords.size());
  for (const std::string& k : keywords) terms.push_back(Lower(k));
  std::sort(terms.begin(), terms.end());
  uint64_t h = kFnvOffset;
  for (const std::string& t : terms) {
    h = HashString(h, t);
    h = Mix(h, t.size());
  }
  return h;
}

/// Splits raw keyword input the same way ParseQuery does (whitespace and
/// commas), without pulling in the parser: shed-path fingerprints must
/// match admitted-path ones for keyword-only queries.
std::vector<std::string> SplitRawKeywords(const std::string& input) {
  std::vector<std::string> out;
  std::string current;
  for (char c : input) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

uint64_t FingerprintQuery(const QueryGraph& query) {
  uint64_t h = kFnvOffset;
  h = Mix(h, HashKeywords(query.keywords()));
  std::vector<uint64_t> fragments;
  for (const Schema& fragment : query.fragments()) {
    fragments.push_back(HashFragment(fragment));
  }
  std::sort(fragments.begin(), fragments.end());
  h = Mix(h, fragments.size());
  for (uint64_t f : fragments) h = Mix(h, f);
  return h;
}

uint64_t FingerprintRawRequest(const std::string& keywords,
                               const std::string& fragment) {
  uint64_t h = kFnvOffset;
  h = Mix(h, HashKeywords(SplitRawKeywords(keywords)));
  if (fragment.empty()) {
    // Keyword-only: identical to FingerprintQuery (zero fragments).
    h = Mix(h, 0);
  } else {
    // Refused before parsing: hash the raw bytes. Distinct from any
    // parsed-shape hash, but stable for the same request resubmitted.
    h = Mix(h, 1);
    h = HashString(h, fragment);
  }
  return h;
}

float QuantizeScore(double score) { return static_cast<float>(score); }

uint64_t DigestResults(const std::vector<SearchResult>& results) {
  uint64_t h = kFnvOffset;
  h = Mix(h, results.size());
  size_t rank = 0;
  for (const SearchResult& r : results) {
    h = Mix(h, rank++);
    h = Mix(h, r.schema_id);
    const float q = QuantizeScore(r.score);
    uint32_t bits;
    std::memcpy(&bits, &q, sizeof(bits));
    h = Mix(h, bits);
  }
  return h;
}

}  // namespace schemr
