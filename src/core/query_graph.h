// The query graph (paper Fig. 1).
//
// "The input query-graph Q is a forest of trees consisting of schema
// fragments and keywords ... each keyword is represented as a graph of one
// item. The query-graph abstraction can capture multiple query formats,
// including relational and XML." (paper Sec. 2)
//
// A QueryGraph holds keyword terms plus zero or more schema fragments
// (parsed from DDL or XSD). For the match phase it renders itself as a
// single merged Schema (fragment forests concatenated; each keyword a
// one-element tree); for candidate extraction it flattens into a keyword
// list.

#ifndef SCHEMR_CORE_QUERY_GRAPH_H_
#define SCHEMR_CORE_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "schema/schema.h"
#include "text/analyzer.h"
#include "util/status.h"

namespace schemr {

class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds one keyword (a one-element tree). Multi-word input is split into
  /// several keywords.
  void AddKeyword(const std::string& keyword);

  /// Adds an already-parsed schema fragment.
  void AddFragment(Schema fragment);

  const std::vector<std::string>& keywords() const { return keywords_; }
  const std::vector<Schema>& fragments() const { return fragments_; }
  bool empty() const { return keywords_.empty() && fragments_.empty(); }

  /// Total number of query-graph elements (fragment elements + keywords).
  size_t NumElements() const;

  /// Merged representation for the match phase: all fragment elements
  /// (parents re-based), then one parentless attribute per keyword.
  /// Rebuilt lazily after mutations.
  const Schema& AsSchema() const;

  /// True if merged element `id` (row of a similarity matrix) came from a
  /// keyword rather than a fragment.
  bool IsKeywordElement(ElementId id) const;

  /// Phase-1 flattening: analyzer-normalized terms from every keyword and
  /// every fragment element name (duplicates preserved -- term weighting
  /// in the searcher uses multiplicity).
  std::vector<std::string> FlattenTerms(const Analyzer& analyzer) const;

  /// Human-readable summary, e.g. for logging a search request.
  std::string ToString() const;

 private:
  std::vector<std::string> keywords_;
  std::vector<Schema> fragments_;

  mutable bool merged_valid_ = false;
  mutable Schema merged_;
  mutable size_t first_keyword_element_ = 0;
};

}  // namespace schemr

#endif  // SCHEMR_CORE_QUERY_GRAPH_H_
