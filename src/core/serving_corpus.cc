#include "core/serving_corpus.h"

#include "index/indexer.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace schemr {

namespace {

struct SignatureMetrics {
  Histogram* build_seconds;

  static const SignatureMetrics& Get() {
    static const SignatureMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SignatureMetrics{
          r.GetHistogram("schemr_signature_build_seconds",
                         "Wall time spent building match-feature catalogs "
                         "and schema signatures (full rebuilds and "
                         "incremental per-schema builds)."),
      };
    }();
    return *metrics;
  }
};

struct GraphCacheMetrics {
  Counter* hits;
  Counter* builds;

  static const GraphCacheMetrics& Get() {
    static const GraphCacheMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new GraphCacheMetrics{
          r.GetCounter("schemr_entity_graph_cache_hits_total",
                       "Phase-3 entity graphs served from the snapshot "
                       "cache instead of being rebuilt."),
          r.GetCounter("schemr_entity_graph_cache_builds_total",
                       "Entity graphs built and inserted into a snapshot "
                       "cache (includes the losers of build races)."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

std::shared_ptr<const EntityGraph> EntityGraphCache::GetOrBuild(
    SchemaId id, const Schema& schema) {
  const GraphCacheMetrics& metrics = GraphCacheMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(id);
    if (it != graphs_.end()) {
      metrics.hits->Increment();
      return it->second;
    }
  }
  // Build outside the lock: graph construction is O(V+E) but a big schema
  // must not serialize every other worker's lookup behind it. A racing
  // builder is possible and harmless -- emplace keeps the first insert.
  auto built = std::make_shared<const EntityGraph>(schema);
  metrics.builds->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = graphs_.emplace(id, std::move(built));
  return it->second;
}

size_t EntityGraphCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

ServingCorpus::ServingCorpus(std::unique_ptr<SchemaRepository> repository,
                             AnalyzerOptions analyzer_options,
                             FeatureBuildOptions feature_options)
    : repository_(std::move(repository)),
      analyzer_options_(analyzer_options),
      index_(analyzer_options),
      feature_options_(feature_options),
      snapshot_(std::make_shared<const CorpusSnapshot>()) {}

Result<std::unique_ptr<ServingCorpus>> ServingCorpus::Create(
    std::unique_ptr<SchemaRepository> repository,
    AnalyzerOptions analyzer_options, FeatureBuildOptions feature_options) {
  std::unique_ptr<ServingCorpus> corpus(new ServingCorpus(
      std::move(repository), analyzer_options, feature_options));
  SCHEMR_RETURN_IF_ERROR(corpus->Reindex());
  return corpus;
}

std::shared_ptr<const CorpusSnapshot> ServingCorpus::Snapshot() const {
  return snapshot_.load();
}

void ServingCorpus::PublishLocked() {
  auto next = std::make_shared<CorpusSnapshot>();
  next->version = Snapshot()->version + 1;
  next->index = index_.Snapshot();
  next->schemas = repository_->View();
  // Freeze the working feature set into the snapshot: the map copy is
  // shared_ptr-shallow, so publication stays cheap and the catalog stays
  // immutable no matter what later writers do to features_.
  next->match_features = std::make_shared<const MatchFeatureCatalog>(
      feature_options_, features_, std::make_shared<const DfTable>(df_));
  FaultInjector::Global().Perturb("corpus/commit/publish");
  snapshot_.store(std::move(next));
}

Result<SchemaId> ServingCorpus::Ingest(Schema schema) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Durable commit first: a snapshot must never reference a schema the
  // repository could not persist.
  SCHEMR_ASSIGN_OR_RETURN(SchemaId id, repository_->Insert(schema));
  schema.set_id(id);
  SCHEMR_RETURN_IF_ERROR(index_.AddDocument(FlattenSchema(schema)));
  {
    // Incremental feature build: signed under the df table as of now.
    // (A full Reindex recomputes every signature under the final df, so
    // signatures converge on rebuild; they are advisory either way.)
    Timer timer;
    auto features = BuildSchemaFeatures(schema, feature_options_);
    df_.AddDocument(*features);
    ComputeSignature(features.get(), &df_);
    features_[id] = std::move(features);
    SignatureMetrics::Get().build_seconds->Observe(timer.ElapsedSeconds());
  }
  PublishLocked();
  return id;
}

Status ServingCorpus::Update(Schema schema) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SCHEMR_RETURN_IF_ERROR(repository_->Update(schema));
  // Replace the document in one index publication so no intermediate
  // "removed but not re-added" index version can pair with the new view.
  SCHEMR_RETURN_IF_ERROR(index_.Apply([&schema](InvertedIndex* index) {
    SCHEMR_RETURN_IF_ERROR(index->RemoveDocument(schema.id()));
    return index->AddDocument(FlattenSchema(schema));
  }));
  {
    Timer timer;
    auto old = features_.find(schema.id());
    if (old != features_.end()) {
      df_.RemoveDocument(*old->second);
      features_.erase(old);
    }
    auto features = BuildSchemaFeatures(schema, feature_options_);
    df_.AddDocument(*features);
    ComputeSignature(features.get(), &df_);
    features_[schema.id()] = std::move(features);
    SignatureMetrics::Get().build_seconds->Observe(timer.ElapsedSeconds());
  }
  PublishLocked();
  return Status::OK();
}

Status ServingCorpus::Remove(SchemaId id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SCHEMR_RETURN_IF_ERROR(repository_->Remove(id));
  SCHEMR_RETURN_IF_ERROR(index_.RemoveDocument(id));
  auto it = features_.find(id);
  if (it != features_.end()) {
    df_.RemoveDocument(*it->second);
    features_.erase(it);
  }
  PublishLocked();
  return Status::OK();
}

Status ServingCorpus::Reindex() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Build against the repository view that will ship in the snapshot, so
  // the rebuilt index and the published schemas agree exactly.
  std::shared_ptr<const RepositoryView> schemas = repository_->View();
  SCHEMR_RETURN_IF_ERROR(
      index_.Apply([this, &schemas](InvertedIndex* index) {
        *index = InvertedIndex(analyzer_options_);
        return schemas->ForEach([index](const Schema& schema) {
          return index->AddDocument(FlattenSchema(schema));
        });
      }));
  SCHEMR_RETURN_IF_ERROR(RebuildCatalogLocked(*schemas, nullptr));
  PublishLocked();
  return Status::OK();
}

Status ServingCorpus::ReindexWithStoredSignatures(
    const std::string& signature_path, CatalogBuildStats* stats) {
  StoredSignatures stored;
  const StoredSignatures* stored_ptr = nullptr;
  {
    // Missing or unreadable file is a clean cold start, not an error; a
    // bad header means the file is garbage and a full rebuild (plus the
    // save below) replaces it.
    Result<StoredSignatures> loaded = LoadSignatures(signature_path);
    if (loaded.ok()) {
      stored = std::move(loaded).value();
      stored_ptr = &stored;
    }
  }
  std::lock_guard<std::mutex> lock(writer_mutex_);
  std::shared_ptr<const RepositoryView> schemas = repository_->View();
  SCHEMR_RETURN_IF_ERROR(
      index_.Apply([this, &schemas](InvertedIndex* index) {
        *index = InvertedIndex(analyzer_options_);
        return schemas->ForEach([index](const Schema& schema) {
          return index->AddDocument(FlattenSchema(schema));
        });
      }));
  SCHEMR_RETURN_IF_ERROR(RebuildCatalogLocked(*schemas, stored_ptr));
  PublishLocked();
  if (stats != nullptr) *stats = last_build_stats_;
  // Persist the (possibly rebuilt) signatures for the next open. Failure
  // to write is non-fatal: the cache is advisory.
  Status saved = SaveSignatures(signature_path, *Snapshot()->match_features);
  (void)saved;
  return Status::OK();
}

Status ServingCorpus::RebuildCatalogLocked(const RepositoryView& schemas,
                                           const StoredSignatures* stored) {
  CatalogBuilder builder(feature_options_);
  SCHEMR_RETURN_IF_ERROR(schemas.ForEach([&builder](const Schema& schema) {
    builder.Add(schema);
    return Status::OK();
  }));
  auto catalog = builder.Build(stored, &last_build_stats_);
  features_ = catalog->features();
  df_ = catalog->df();
  SignatureMetrics::Get().build_seconds->Observe(last_build_stats_.seconds);
  return Status::OK();
}

CatalogBuildStats ServingCorpus::last_build_stats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return last_build_stats_;
}

}  // namespace schemr
