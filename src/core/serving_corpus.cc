#include "core/serving_corpus.h"

#include "index/indexer.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace schemr {

namespace {

struct GraphCacheMetrics {
  Counter* hits;
  Counter* builds;

  static const GraphCacheMetrics& Get() {
    static const GraphCacheMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new GraphCacheMetrics{
          r.GetCounter("schemr_entity_graph_cache_hits_total",
                       "Phase-3 entity graphs served from the snapshot "
                       "cache instead of being rebuilt."),
          r.GetCounter("schemr_entity_graph_cache_builds_total",
                       "Entity graphs built and inserted into a snapshot "
                       "cache (includes the losers of build races)."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

std::shared_ptr<const EntityGraph> EntityGraphCache::GetOrBuild(
    SchemaId id, const Schema& schema) {
  const GraphCacheMetrics& metrics = GraphCacheMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(id);
    if (it != graphs_.end()) {
      metrics.hits->Increment();
      return it->second;
    }
  }
  // Build outside the lock: graph construction is O(V+E) but a big schema
  // must not serialize every other worker's lookup behind it. A racing
  // builder is possible and harmless -- emplace keeps the first insert.
  auto built = std::make_shared<const EntityGraph>(schema);
  metrics.builds->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = graphs_.emplace(id, std::move(built));
  return it->second;
}

size_t EntityGraphCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

ServingCorpus::ServingCorpus(std::unique_ptr<SchemaRepository> repository,
                             AnalyzerOptions analyzer_options)
    : repository_(std::move(repository)),
      analyzer_options_(analyzer_options),
      index_(analyzer_options),
      snapshot_(std::make_shared<const CorpusSnapshot>()) {}

Result<std::unique_ptr<ServingCorpus>> ServingCorpus::Create(
    std::unique_ptr<SchemaRepository> repository,
    AnalyzerOptions analyzer_options) {
  std::unique_ptr<ServingCorpus> corpus(
      new ServingCorpus(std::move(repository), analyzer_options));
  SCHEMR_RETURN_IF_ERROR(corpus->Reindex());
  return corpus;
}

std::shared_ptr<const CorpusSnapshot> ServingCorpus::Snapshot() const {
  return snapshot_.load();
}

void ServingCorpus::PublishLocked() {
  auto next = std::make_shared<CorpusSnapshot>();
  next->version = Snapshot()->version + 1;
  next->index = index_.Snapshot();
  next->schemas = repository_->View();
  FaultInjector::Global().Perturb("corpus/commit/publish");
  snapshot_.store(std::move(next));
}

Result<SchemaId> ServingCorpus::Ingest(Schema schema) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Durable commit first: a snapshot must never reference a schema the
  // repository could not persist.
  SCHEMR_ASSIGN_OR_RETURN(SchemaId id, repository_->Insert(schema));
  schema.set_id(id);
  SCHEMR_RETURN_IF_ERROR(index_.AddDocument(FlattenSchema(schema)));
  PublishLocked();
  return id;
}

Status ServingCorpus::Update(Schema schema) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SCHEMR_RETURN_IF_ERROR(repository_->Update(schema));
  // Replace the document in one index publication so no intermediate
  // "removed but not re-added" index version can pair with the new view.
  SCHEMR_RETURN_IF_ERROR(index_.Apply([&schema](InvertedIndex* index) {
    SCHEMR_RETURN_IF_ERROR(index->RemoveDocument(schema.id()));
    return index->AddDocument(FlattenSchema(schema));
  }));
  PublishLocked();
  return Status::OK();
}

Status ServingCorpus::Remove(SchemaId id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SCHEMR_RETURN_IF_ERROR(repository_->Remove(id));
  SCHEMR_RETURN_IF_ERROR(index_.RemoveDocument(id));
  PublishLocked();
  return Status::OK();
}

Status ServingCorpus::Reindex() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Build against the repository view that will ship in the snapshot, so
  // the rebuilt index and the published schemas agree exactly.
  std::shared_ptr<const RepositoryView> schemas = repository_->View();
  SCHEMR_RETURN_IF_ERROR(
      index_.Apply([this, &schemas](InvertedIndex* index) {
        *index = InvertedIndex(analyzer_options_);
        return schemas->ForEach([index](const Schema& schema) {
          return index->AddDocument(FlattenSchema(schema));
        });
      }));
  PublishLocked();
  return Status::OK();
}

}  // namespace schemr
