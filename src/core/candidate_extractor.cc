#include "core/candidate_extractor.h"

namespace schemr {

std::vector<Candidate> CandidateExtractor::Extract(
    const QueryGraph& query, const CandidateExtractorOptions& options) const {
  std::vector<std::string> terms = query.FlattenTerms(index_->analyzer());
  SearchOptions search_options = options.index_options;
  search_options.top_n = options.pool_size;
  Searcher searcher(index_);
  std::vector<ScoredDoc> docs = searcher.SearchTerms(terms, search_options);
  std::vector<Candidate> out;
  out.reserve(docs.size());
  for (const ScoredDoc& doc : docs) {
    out.push_back(Candidate{doc.external_id, doc.score, doc.matched_terms});
  }
  return out;
}

}  // namespace schemr
