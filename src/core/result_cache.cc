#include "core/result_cache.h"

#include "core/search_engine.h"
#include "obs/metrics.h"

namespace schemr {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Mix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t MixDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return Mix(hash, bits);
}

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* insertions;
  Counter* evictions;
  Gauge* entries;

  static const CacheMetrics& Get() {
    static const CacheMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new CacheMetrics{
          r.GetCounter("schemr_result_cache_hits_total",
                       "Searches served from the snapshot-keyed result "
                       "cache (no pipeline work ran)."),
          r.GetCounter("schemr_result_cache_misses_total",
                       "Cache-eligible searches that ran the pipeline."),
          r.GetCounter("schemr_result_cache_insertions_total",
                       "Result lists stored into the cache."),
          r.GetCounter("schemr_result_cache_evictions_total",
                       "Entries evicted by the LRU capacity bound."),
          r.GetGauge("schemr_result_cache_entries",
                     "Entries currently resident in the result cache."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

uint64_t HashSearchOptions(const SearchEngineOptions& options) {
  uint64_t hash = kFnvOffset;
  hash = Mix(hash, options.top_k);
  hash = Mix(hash, options.offset);
  hash = MixDouble(hash, options.coarse_blend);
  hash = Mix(hash, (options.enable_matching ? 1u : 0u) |
                       (options.enable_tightness ? 2u : 0u));
  hash = MixDouble(hash, options.annotation_boost);
  // The pre-filter changes which candidates can appear at all, so an
  // approximate answer must never be served for an exact request (or for
  // a different threshold).
  hash = MixDouble(hash, options.prefilter);
  hash = Mix(hash, options.extraction.pool_size);
  const SearchOptions& index_options = options.extraction.index_options;
  hash = Mix(hash, index_options.top_n);
  hash = Mix(hash, index_options.use_coordination_factor ? 1u : 0u);
  for (double boost : index_options.field_boosts) {
    hash = MixDouble(hash, boost);
  }
  hash = MixDouble(hash, index_options.proximity_boost);
  hash = MixDouble(hash, options.tightness.neighborhood_penalty);
  hash = MixDouble(hash, options.tightness.unrelated_penalty);
  hash = MixDouble(hash, options.tightness.match_threshold);
  hash = Mix(hash, options.tightness.scale_by_query_coverage ? 1u : 0u);
  return hash;
}

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  uint64_t hash = kFnvOffset;
  hash = Mix(hash, key.fingerprint);
  hash = Mix(hash, key.corpus_version);
  hash = Mix(hash, key.options_hash);
  return static_cast<size_t>(hash);
}

ResultCache::ResultCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const std::vector<SearchResult>> ResultCache::Get(
    const ResultCacheKey& key) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    metrics.misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  metrics.hits->Increment();
  return it->second->results;
}

void ResultCache::Put(const ResultCacheKey& key,
                      std::vector<SearchResult> results) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  auto stored = std::make_shared<const std::vector<SearchResult>>(
      std::move(results));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Same key, same snapshot, same options: the list can only be the
    // same; refresh recency and keep the resident entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(stored)});
  map_[key] = lru_.begin();
  ++insertions_;
  metrics.insertions->Increment();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    metrics.evictions->Increment();
  }
  metrics.entries->Set(static_cast<double>(lru_.size()));
}

ResultCacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ResultCacheStats{hits_, misses_, insertions_, evictions_,
                          lru_.size()};
}

void PublishResultCacheMetrics(const ResultCache* cache) {
  struct DerivedGauges {
    Gauge* hit_ratio;
    Gauge* capacity;
  };
  static const DerivedGauges* gauges = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new DerivedGauges{
        r.GetGauge("schemr_result_cache_hit_ratio",
                   "hits / (hits + misses) over the cache's lifetime; 0 "
                   "until the first lookup or when no cache is installed."),
        r.GetGauge("schemr_result_cache_capacity",
                   "Configured result-cache entry bound (0 = no cache)."),
    };
  }();
  if (cache == nullptr) {
    gauges->hit_ratio->Set(0.0);
    gauges->capacity->Set(0.0);
    return;
  }
  const ResultCacheStats stats = cache->Stats();
  const uint64_t lookups = stats.hits + stats.misses;
  gauges->hit_ratio->Set(
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.hits) /
                         static_cast<double>(lookups));
  gauges->capacity->Set(static_cast<double>(cache->capacity()));
  // `entries` is also event-maintained by Put(); refreshing it here keeps
  // a scrape of an idle process current.
  CacheMetrics::Get().entries->Set(static_cast<double>(stats.entries));
}

}  // namespace schemr
