// Tightness-of-fit: Schemr's structurally-aware final score (paper Sec. 2
// and Fig. 4).
//
// Given the combined similarity matrix of a candidate schema, each schema
// element's final match score S(e) is its best value over all query
// elements. The measure then penalizes matched elements by their entity
// distance to an *anchor entity* A:
//
//   same entity as A                          → no penalty
//   A's entity neighborhood (FK transitive
//   closure)                                  → small penalty
//   unrelated entity                          → larger penalty
//
// t(A) = mean over matched elements of (S(e) − P_A(e)); the final score is
// t_max = max over all candidate anchors. This rewards schemas where the
// matched elements sit close together -- the query's "semantic intent".

#ifndef SCHEMR_CORE_TIGHTNESS_OF_FIT_H_
#define SCHEMR_CORE_TIGHTNESS_OF_FIT_H_

#include <vector>

#include "match/similarity_matrix.h"
#include "schema/entity_graph.h"
#include "schema/schema.h"

namespace schemr {

struct TightnessOptions {
  /// Penalty fraction for elements in the anchor's FK neighborhood
  /// ("small penalty").
  double neighborhood_penalty = 0.2;
  /// Penalty fraction for elements in unrelated entities ("larger
  /// penalty").
  double unrelated_penalty = 0.5;
  /// Elements with S(e) below this do not count as matched (and so
  /// neither dilute the average nor qualify their entity as an anchor).
  double match_threshold = 0.3;
  /// Scale the final score by the fraction of query elements that found a
  /// match (row max ≥ threshold): the coordination factor of phase 1
  /// carried into the fine-grained phase. Without it, a candidate with a
  /// single strong generic hit (mean ≈ its one score) outranks a schema
  /// matching every query element.
  bool scale_by_query_coverage = true;
};

/// Fraction of query elements (matrix rows) whose best match reaches
/// `threshold`; 1.0 for empty matrices.
double QueryCoverage(const SimilarityMatrix& similarity, double threshold);

/// Per-element contribution, reported for visualization (nodes are colored
/// by similarity) and diagnostics.
struct MatchedElement {
  ElementId element = kNoElement;
  double score = 0.0;           ///< S(e)
  double penalized_score = 0.0; ///< S(e) − P_A*(e) under the best anchor
};

struct TightnessResult {
  /// t_max; 0 when nothing matched.
  double score = 0.0;
  /// The anchor entity achieving t_max (kNoElement when nothing matched).
  ElementId best_anchor = kNoElement;
  /// Matched elements with their scores under the best anchor.
  std::vector<MatchedElement> matched;
};

/// Computes the tightness-of-fit of `candidate` given the combined
/// similarity matrix (rows = query elements, cols = candidate elements,
/// cols must equal candidate.size()).
TightnessResult ComputeTightnessOfFit(const Schema& candidate,
                                      const SimilarityMatrix& similarity,
                                      const TightnessOptions& options = {});

/// Convenience overload reusing a prebuilt EntityGraph (hot path of the
/// search engine, which already has one).
TightnessResult ComputeTightnessOfFit(const Schema& candidate,
                                      const EntityGraph& graph,
                                      const SimilarityMatrix& similarity,
                                      const TightnessOptions& options = {});

}  // namespace schemr

#endif  // SCHEMR_CORE_TIGHTNESS_OF_FIT_H_
