// The Schemr search engine: the three-phase algorithm of Fig. 3.
//
//   1. Candidate Extraction -- flatten the query graph, TF/IDF over the
//      document index, keep the top-n pool.
//   2. Schema Matching -- run the matcher ensemble on each candidate,
//      producing total-similarity matrices.
//   3. Tightness-of-fit -- collapse each matrix to a structurally-aware
//      score; rank by it (blended with the normalized coarse score as a
//      stabilizing prior).
//
// Phases 2 and 3 can be disabled individually for the quality-ablation
// experiments (E9 in DESIGN.md).

#ifndef SCHEMR_CORE_SEARCH_ENGINE_H_
#define SCHEMR_CORE_SEARCH_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/candidate_extractor.h"
#include "core/query_graph.h"
#include "core/serving_corpus.h"
#include "core/tightness_of_fit.h"
#include "index/inverted_index.h"
#include "match/ensemble.h"
#include "obs/trace.h"
#include "repo/schema_repository.h"

namespace schemr {

class BoundedExecutor;  // util/executor.h
class ResultCache;      // core/result_cache.h

/// One row of the results table (paper Fig. 2: "name, score, matches,
/// entities, attributes, and description"), plus the per-element scores
/// the visualizer encodes as node colors.
struct SearchResult {
  SchemaId schema_id = kNoSchema;
  std::string name;
  std::string description;
  double score = 0.0;          ///< final ranking score
  double coarse_score = 0.0;   ///< phase-1 TF/IDF score
  double tightness = 0.0;      ///< phase-3 tightness-of-fit
  size_t num_matches = 0;      ///< matched elements
  size_t num_entities = 0;
  size_t num_attributes = 0;
  ElementId best_anchor = kNoElement;
  /// (element, S(e)) for every matched element, for drill-in coloring.
  std::vector<MatchedElement> matched_elements;
  /// True when the search that produced this row degraded (a matcher was
  /// dropped or the deadline forced coarse-only ranking); the scores are
  /// best-effort rather than the full pipeline's.
  bool degraded = false;
};

/// What (if anything) a search had to give up, plus its per-phase wall
/// times; see SearchEngineOptions::stats. A degraded search still returns
/// ranked results -- degradation is never an error.
struct SearchStats {
  bool degraded = false;
  /// The wall-clock deadline fired; candidates not yet matched were
  /// ranked by their phase-1 coarse score only.
  bool deadline_hit = false;
  /// Matchers benched for the remainder of the search (threw, hit their
  /// fault site, or exhausted their cumulative time budget).
  std::vector<std::string> dropped_matchers;
  /// Candidates ranked coarse-only (deadline already hit, or every
  /// matcher benched).
  size_t coarse_only_candidates = 0;
  /// Candidates whose phases 2/3 were skipped by score-bound pruning.
  /// Exact, never degradation: a skipped candidate provably could not
  /// have entered the returned window (DESIGN.md §11).
  size_t candidates_skipped = 0;
  /// Candidates rejected by the signature pre-filter before any matcher
  /// ran (approximate mode only; see SearchEngineOptions::prefilter).
  /// Not degradation: the caller explicitly opted into the screen.
  size_t prefilter_rejected = 0;
  /// Served from the snapshot-keyed result cache; no pipeline phase ran
  /// and the phase times below are zero.
  bool cache_hit = false;
  /// Per-phase wall times for this request (always filled, independent of
  /// explain mode; the audit log and replay engine read them). Under
  /// parallel scoring, phase2/phase3 are the summed per-worker CPU times
  /// (they can exceed total_seconds at high thread counts).
  double total_seconds = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;

  /// THE outcome classifier: the engine's degraded metric, the XML
  /// degraded attribute, and the audit log's outcome byte are all derived
  /// from this one predicate, so they can never disagree.
  bool ComputeDegraded() const {
    return deadline_hit || !dropped_matchers.empty() ||
           coarse_only_candidates > 0;
  }
};

struct SearchEngineOptions {
  /// Phase-1 pool size and TF/IDF knobs.
  CandidateExtractorOptions extraction;
  /// Phase-3 penalties.
  TightnessOptions tightness;
  /// Results returned ("ranked list of n results").
  size_t top_k = 10;
  /// Pagination: skip this many ranked results first ("ask for the next
  /// n schemas" in the GUI). Rank positions offset..offset+top_k-1 are
  /// returned.
  size_t offset = 0;
  /// Blend of normalized coarse score into the final score; the remainder
  /// is the tightness-of-fit. 0 ranks purely structurally.
  double coarse_blend = 0.25;
  /// Ablation switches: with matching off, results are ranked by the
  /// coarse score alone; with tightness off, by the unpenalized mean of
  /// per-element match scores.
  bool enable_matching = true;
  bool enable_tightness = true;
  /// Collaboration signal (paper Applications): when > 0, each result's
  /// score is multiplied by 1 + boost·(0.7·rating/5 + 0.3·usage_sat)
  /// where usage_sat = hits/(hits+10). Community-endorsed schemas rise.
  double annotation_boost = 0.0;
  /// When set, Search records a per-phase span breakdown (explain mode)
  /// into this trace: a root "search" span with phase1_extract /
  /// phase2_match (per-matcher children) / phase3_tightness / rank
  /// children. Null (the default) skips all trace work.
  SearchTrace* trace = nullptr;
  /// Wall-clock budget for the whole search, in seconds (0 = none). When
  /// it expires mid-pool, the remaining candidates are ranked by their
  /// phase-1 coarse score alone and the results are flagged degraded --
  /// the deadline never turns into an error.
  double deadline_seconds = 0.0;
  /// Cumulative per-matcher time budget, in seconds (0 = none). A matcher
  /// whose total wall time across the pool exceeds this is benched for
  /// the remaining candidates (weights renormalize).
  double matcher_budget_seconds = 0.0;
  /// Threads scoring the candidate pool through phases 2/3: the request
  /// thread plus up to scoring_threads-1 workers from the engine-owned
  /// pool (distinct from the service's admission executor). 1 = serial.
  /// The ranked output is bit-identical at any value: every candidate is
  /// scored into a pre-sized slot, so thread count shifts latency only.
  size_t scoring_threads = 1;
  /// Score-bound pruning: skip phases 2/3 for candidates whose best
  /// possible final score cannot beat the running (offset+top_k)-th best
  /// score already observed. Exact -- the returned window never changes
  /// (bound proof in DESIGN.md §11) -- so it defaults on.
  bool enable_pruning = true;
  /// Signature pre-filter threshold in [0, 1]; 0 (the default) disables
  /// the screen and the search is EXACT. When > 0, candidates whose
  /// estimated signature similarity to the query (SimHash + MinHash;
  /// DESIGN.md §16) falls below the threshold are rejected before any
  /// matcher runs -- explicitly approximate: a rejected candidate is out
  /// of the ranking even if the full ensemble would have admitted it.
  /// E20 in EXPERIMENTS.md measures the recall floor per threshold.
  /// Candidates without a signature (no catalog entry) are never
  /// rejected. Joins the result-cache options hash, so exact and
  /// approximate answers never alias. Independently of this threshold,
  /// signatures order the candidate visit so the pruning floor rises
  /// early -- that reordering is exact (the floor only rises; DESIGN.md
  /// §11) and needs no opt-in.
  double prefilter = 0.0;
  /// Escape hatch: skip the result cache for this request, both the
  /// lookup and the store (debugging, cache-vs-pipeline comparisons).
  bool cache_bypass = false;
  /// When set, Search writes what (if anything) it had to give up here.
  SearchStats* stats = nullptr;
};

/// Facade tying the repository, the index and the match engine together.
///
/// Thread safety depends on which constructor was used:
///   - Corpus mode (ServingCorpus*): Search acquires one CorpusSnapshot
///     up front and runs every phase against it, so concurrent Search
///     calls are safe even while the corpus ingests -- each search sees
///     a consistent pre- or post-commit corpus, never a mix.
///   - Static mode (raw repository/index pointers): the engine does NOT
///     synchronize those references. Concurrent Search calls are safe
///     only while nothing mutates the repository or index; mutating
///     either during a search is a data race. Use corpus mode for any
///     serving path with live ingest.
/// The ensemble is const during Search (matchers are stateless); do not
/// call mutable_ensemble() concurrently with searches.
class SearchEngine {
 public:
  /// Static mode: caller guarantees `repository` and `index` outlive the
  /// engine and do not change while searches run.
  SearchEngine(const SchemaRepository* repository,
               const InvertedIndex* index,
               MatcherEnsemble ensemble = MatcherEnsemble::Default())
      : repository_(repository),
        index_(index),
        ensemble_(std::move(ensemble)) {}

  /// Corpus mode: snapshot-isolated searches over a live corpus.
  explicit SearchEngine(const ServingCorpus* corpus,
                        MatcherEnsemble ensemble = MatcherEnsemble::Default())
      : corpus_(corpus), ensemble_(std::move(ensemble)) {}

  /// Pinned-snapshot mode: every Search runs against this one snapshot,
  /// regardless of what the owning corpus publishes afterwards. The
  /// replay engine uses this so a whole recorded workload executes
  /// against a single corpus version (deterministic digests).
  explicit SearchEngine(std::shared_ptr<const CorpusSnapshot> snapshot,
                        MatcherEnsemble ensemble = MatcherEnsemble::Default())
      : pinned_(std::move(snapshot)), ensemble_(std::move(ensemble)) {}

  /// Runs the full pipeline for a query graph.
  Result<std::vector<SearchResult>> Search(
      const QueryGraph& query, const SearchEngineOptions& options = {}) const;

  /// Convenience: keyword-only search.
  Result<std::vector<SearchResult>> SearchKeywords(
      const std::string& keywords,
      const SearchEngineOptions& options = {}) const;

  const MatcherEnsemble& ensemble() const { return ensemble_; }
  MatcherEnsemble& mutable_ensemble() { return ensemble_; }

  /// Installs a snapshot-keyed LRU over final ranked results (see
  /// core/result_cache.h for keying and invalidation). Effective only in
  /// corpus or pinned mode -- the corpus version is what keys implicit
  /// invalidation; static mode has no version and never caches. Like
  /// mutable_ensemble, call before searches run concurrently.
  void EnableResultCache(size_t capacity = 256);

  /// The installed cache, or null. Exposed for stats and tests.
  std::shared_ptr<ResultCache> result_cache() const { return result_cache_; }

 private:
  /// The engine-owned scoring pool, created lazily and regrown (shared_ptr
  /// swap; in-flight searches keep the pool they started with) when a
  /// request asks for more helpers than the current pool holds.
  std::shared_ptr<BoundedExecutor> ScoringPool(size_t helpers) const;

  /// Corpus mode when set; otherwise the static pointers below are used.
  const ServingCorpus* corpus_ = nullptr;
  /// Pinned-snapshot mode when set (takes precedence over corpus_).
  std::shared_ptr<const CorpusSnapshot> pinned_;
  const SchemaRepository* repository_ = nullptr;
  const InvertedIndex* index_ = nullptr;
  MatcherEnsemble ensemble_;
  mutable std::mutex scoring_pool_mutex_;
  mutable std::shared_ptr<BoundedExecutor> scoring_pool_;
  std::shared_ptr<ResultCache> result_cache_;
};

}  // namespace schemr

#endif  // SCHEMR_CORE_SEARCH_ENGINE_H_
