#include "core/tightness_of_fit.h"

#include <algorithm>

namespace schemr {

TightnessResult ComputeTightnessOfFit(const Schema& candidate,
                                      const SimilarityMatrix& similarity,
                                      const TightnessOptions& options) {
  EntityGraph graph(candidate);
  return ComputeTightnessOfFit(candidate, graph, similarity, options);
}

double QueryCoverage(const SimilarityMatrix& similarity, double threshold) {
  if (similarity.rows() == 0) return 1.0;
  size_t covered = 0;
  for (size_t r = 0; r < similarity.rows(); ++r) {
    if (similarity.RowMax(r) >= threshold) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(similarity.rows());
}

TightnessResult ComputeTightnessOfFit(const Schema& candidate,
                                      const EntityGraph& graph,
                                      const SimilarityMatrix& similarity,
                                      const TightnessOptions& options) {
  TightnessResult result;
  if (similarity.cols() != candidate.size()) return result;

  // S(e): best score per candidate element; collect matched elements and
  // their containing entities.
  struct Matched {
    ElementId element;
    ElementId entity;  // kNoElement for parentless attributes
    double score;
  };
  std::vector<Matched> matched;
  std::vector<ElementId> anchors;
  for (ElementId e = 0; e < candidate.size(); ++e) {
    double s = similarity.ColumnMax(e);
    if (s < options.match_threshold) continue;
    ElementId entity = candidate.EntityOf(e);
    matched.push_back(Matched{e, entity, s});
    if (entity != kNoElement &&
        std::find(anchors.begin(), anchors.end(), entity) == anchors.end()) {
      anchors.push_back(entity);
    }
  }
  if (matched.empty()) return result;

  const double coverage =
      options.scale_by_query_coverage
          ? QueryCoverage(similarity, options.match_threshold)
          : 1.0;

  // Degenerate but possible: matched elements with no containing entity
  // (free attributes). With no anchor candidates, score the plain average.
  if (anchors.empty()) {
    double sum = 0.0;
    for (const Matched& m : matched) sum += m.score;
    result.score = coverage * sum / static_cast<double>(matched.size());
    for (const Matched& m : matched) {
      result.matched.push_back(MatchedElement{m.element, m.score, m.score});
    }
    return result;
  }

  // "This calculation is repeated for all possible anchor entities, and
  // the maximum of all calculations is selected."
  double best = -1.0;
  ElementId best_anchor = kNoElement;
  std::vector<double> best_penalized;
  std::vector<double> penalized(matched.size());
  for (ElementId anchor : anchors) {
    double sum = 0.0;
    for (size_t i = 0; i < matched.size(); ++i) {
      const Matched& m = matched[i];
      double penalty_fraction;
      if (m.entity == anchor) {
        penalty_fraction = 0.0;
      } else if (m.entity != kNoElement &&
                 graph.InSameNeighborhood(m.entity, anchor)) {
        penalty_fraction = options.neighborhood_penalty;
      } else {
        penalty_fraction = options.unrelated_penalty;
      }
      penalized[i] = m.score * (1.0 - penalty_fraction);
      sum += penalized[i];
    }
    double t = sum / static_cast<double>(matched.size());
    if (t > best) {
      best = t;
      best_anchor = anchor;
      best_penalized = penalized;
    }
  }

  result.score = coverage * best;
  result.best_anchor = best_anchor;
  result.matched.reserve(matched.size());
  for (size_t i = 0; i < matched.size(); ++i) {
    result.matched.push_back(
        MatchedElement{matched[i].element, matched[i].score,
                       best_penalized[i]});
  }
  return result;
}

}  // namespace schemr
