// Search-driven schema design suggestions.
//
// The paper's Applications section sketches "a new model development
// process, in which search results are iteratively used to augment a
// schema": the designer uploads a partial design, Schemr finds similar
// schemas, and the elements of those schemas that the draft does NOT yet
// cover become suggestions. This module computes those suggestions from a
// search result's similarity data.

#ifndef SCHEMR_CORE_COMPOSER_H_
#define SCHEMR_CORE_COMPOSER_H_

#include <string>
#include <vector>

#include "core/search_engine.h"
#include "match/similarity_matrix.h"
#include "schema/schema.h"

namespace schemr {

/// One proposed addition to the draft schema.
struct ExtensionSuggestion {
  /// The element of the result schema being proposed.
  ElementId source_element = kNoElement;
  std::string name;
  DataType type = DataType::kNone;
  /// Path in the source schema, for provenance display.
  std::string source_path;
  /// Higher = more central to the part of the schema the draft already
  /// overlaps (anchored entity > neighborhood > elsewhere).
  double confidence = 0.0;
};

struct ComposerOptions {
  /// Result-schema elements whose best query similarity is below this are
  /// "uncovered" and eligible as suggestions.
  double covered_threshold = 0.5;
  /// Confidence multipliers by entity distance from the result's best
  /// anchor (same entity / FK neighborhood / unrelated).
  double anchor_weight = 1.0;
  double neighborhood_weight = 0.6;
  double unrelated_weight = 0.2;
  size_t max_suggestions = 10;
};

/// Computes extension suggestions for a draft (the query schema) given
/// one result schema, the combined similarity matrix between them (rows =
/// draft elements, cols = result elements) and the result's best anchor
/// entity. Only attributes are suggested; suggestions are sorted by
/// descending confidence.
std::vector<ExtensionSuggestion> SuggestExtensions(
    const Schema& result_schema, const SimilarityMatrix& similarity,
    ElementId best_anchor, const ComposerOptions& options = {});

/// Convenience over a SearchResult: re-runs the ensemble for the matrix.
/// `draft` must be the query schema used in the search (QueryGraph::
/// AsSchema()).
std::vector<ExtensionSuggestion> SuggestExtensionsForResult(
    const Schema& draft, const Schema& result_schema,
    const class MatcherEnsemble& ensemble, ElementId best_anchor,
    const ComposerOptions& options = {});

/// Applies a suggestion to a draft schema: adds the attribute to `entity`
/// (which must be an entity of the draft). Returns the new element id.
Result<ElementId> ApplySuggestion(Schema* draft, ElementId entity,
                                  const ExtensionSuggestion& suggestion);

}  // namespace schemr

#endif  // SCHEMR_CORE_COMPOSER_H_
