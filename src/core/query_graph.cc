#include "core/query_graph.h"

#include "text/tokenizer.h"

namespace schemr {

void QueryGraph::AddKeyword(const std::string& keyword) {
  // "patient height" is two one-element trees.
  for (const std::string& word : TokenizeToStrings(keyword)) {
    keywords_.push_back(word);
    merged_valid_ = false;
  }
}

void QueryGraph::AddFragment(Schema fragment) {
  fragments_.push_back(std::move(fragment));
  merged_valid_ = false;
}

size_t QueryGraph::NumElements() const {
  size_t n = keywords_.size();
  for (const Schema& fragment : fragments_) n += fragment.size();
  return n;
}

const Schema& QueryGraph::AsSchema() const {
  if (merged_valid_) return merged_;
  merged_ = Schema("query");
  for (const Schema& fragment : fragments_) {
    ElementId base = static_cast<ElementId>(merged_.size());
    for (ElementId id = 0; id < fragment.size(); ++id) {
      Element element = fragment.element(id);
      if (element.parent != kNoElement) element.parent += base;
      merged_.AddElement(std::move(element));
    }
    for (const ForeignKey& fk : fragment.foreign_keys()) {
      merged_.AddForeignKey(
          fk.attribute + base, fk.target_entity + base,
          fk.target_attribute == kNoElement ? kNoElement
                                            : fk.target_attribute + base);
    }
  }
  first_keyword_element_ = merged_.size();
  for (const std::string& keyword : keywords_) {
    // A keyword is a one-element tree; we model it as a parentless
    // attribute so matchers compare it against both entities and
    // attributes by name.
    merged_.AddAttribute(keyword, kNoElement, DataType::kNone);
  }
  merged_valid_ = true;
  return merged_;
}

bool QueryGraph::IsKeywordElement(ElementId id) const {
  AsSchema();
  return id >= first_keyword_element_;
}

std::vector<std::string> QueryGraph::FlattenTerms(
    const Analyzer& analyzer) const {
  std::vector<std::string> terms;
  for (const std::string& keyword : keywords_) {
    for (auto& t : analyzer.AnalyzeToStrings(keyword)) {
      terms.push_back(std::move(t));
    }
  }
  for (const Schema& fragment : fragments_) {
    for (const Element& element : fragment.elements()) {
      for (auto& t : analyzer.AnalyzeToStrings(element.name)) {
        terms.push_back(std::move(t));
      }
    }
  }
  return terms;
}

std::string QueryGraph::ToString() const {
  std::string out = "query{keywords:[";
  for (size_t i = 0; i < keywords_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keywords_[i];
  }
  out += "], fragments:[";
  for (size_t i = 0; i < fragments_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fragments_[i].name();
    // Split concatenation: `const char* + std::string&&` trips a bogus
    // GCC 12 -Wrestrict at -O3 (PR105651) under -Werror.
    out += "(";
    out += std::to_string(fragments_[i].size());
    out += " elements)";
  }
  out += "]}";
  return out;
}

}  // namespace schemr
