// Collaboration annotations on schemas: comments, ratings, usage counts.
//
// The paper's Applications/Summary sections plan "collaboration
// functionality that provides usage statistics and comments on schemas"
// and "mechanisms for users to leave ratings and comments", feeding back
// into search quality. This module defines the annotation records and
// their binary codecs; SchemaRepository stores them next to the schemas,
// and SearchEngineOptions::annotation_boost folds them into ranking.

#ifndef SCHEMR_REPO_ANNOTATIONS_H_
#define SCHEMR_REPO_ANNOTATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace schemr {

/// A user comment on a schema.
struct SchemaComment {
  std::string author;
  std::string text;
  /// Caller-supplied timestamp (seconds since epoch); the library does not
  /// read clocks so tests and replays stay deterministic.
  uint64_t timestamp = 0;

  bool operator==(const SchemaComment&) const = default;
};

/// One user's star rating, 1..5. A later rating by the same author
/// replaces the earlier one.
struct SchemaRating {
  std::string author;
  uint8_t stars = 0;

  bool operator==(const SchemaRating&) const = default;
};

/// Aggregated rating view.
struct RatingSummary {
  size_t num_ratings = 0;
  double average = 0.0;  ///< 0 when unrated
};

/// Codecs (length-prefixed, varint; same style as the schema codec).
std::string EncodeComments(const std::vector<SchemaComment>& comments);
Result<std::vector<SchemaComment>> DecodeComments(std::string_view data);

std::string EncodeRatings(const std::vector<SchemaRating>& ratings);
Result<std::vector<SchemaRating>> DecodeRatings(std::string_view data);

}  // namespace schemr

#endif  // SCHEMR_REPO_ANNOTATIONS_H_
