#include "repo/annotations.h"

#include "util/varint.h"

namespace schemr {

std::string EncodeComments(const std::vector<SchemaComment>& comments) {
  std::string out;
  PutVarint64(&out, comments.size());
  for (const SchemaComment& c : comments) {
    PutLengthPrefixed(&out, c.author);
    PutLengthPrefixed(&out, c.text);
    PutVarint64(&out, c.timestamp);
  }
  return out;
}

Result<std::vector<SchemaComment>> DecodeComments(std::string_view data) {
  uint64_t count = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &count));
  if (count > data.size()) {
    return Status::Corruption("comment count exceeds payload");
  }
  std::vector<SchemaComment> comments;
  comments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SchemaComment c;
    std::string_view author, text;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &author));
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &text));
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &c.timestamp));
    c.author = std::string(author);
    c.text = std::string(text);
    comments.push_back(std::move(c));
  }
  if (!data.empty()) return Status::Corruption("trailing comment bytes");
  return comments;
}

std::string EncodeRatings(const std::vector<SchemaRating>& ratings) {
  std::string out;
  PutVarint64(&out, ratings.size());
  for (const SchemaRating& r : ratings) {
    PutLengthPrefixed(&out, r.author);
    out.push_back(static_cast<char>(r.stars));
  }
  return out;
}

Result<std::vector<SchemaRating>> DecodeRatings(std::string_view data) {
  uint64_t count = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &count));
  if (count > data.size()) {
    return Status::Corruption("rating count exceeds payload");
  }
  std::vector<SchemaRating> ratings;
  ratings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SchemaRating r;
    std::string_view author;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &author));
    if (data.empty()) return Status::Corruption("truncated rating");
    r.author = std::string(author);
    r.stars = static_cast<uint8_t>(data.front());
    data.remove_prefix(1);
    if (r.stars < 1 || r.stars > 5) {
      return Status::Corruption("rating out of range");
    }
    ratings.push_back(std::move(r));
  }
  if (!data.empty()) return Status::Corruption("trailing rating bytes");
  return ratings;
}

}  // namespace schemr
