#include "repo/schema_repository.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "schema/schema_codec.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace schemr {

namespace {
constexpr char kSchemaKeyPrefix[] = "s/";
constexpr char kNextIdKey[] = "m/next_id";

std::string AuxKey(char prefix, SchemaId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c/%016" PRIx64, prefix, id);
  return buf;
}
}  // namespace

// --- RepositoryView ----------------------------------------------------------

Result<Schema> RepositoryView::Get(SchemaId id) const {
  auto it = encoded_.find(id);
  if (it == encoded_.end()) {
    return Status::NotFound("schema " + std::to_string(id));
  }
  return DecodeSchema(*it->second);
}

bool RepositoryView::Contains(SchemaId id) const {
  return encoded_.find(id) != encoded_.end();
}

std::vector<SchemaId> RepositoryView::Ids() const {
  std::vector<SchemaId> ids;
  ids.reserve(encoded_.size());
  for (const auto& [id, encoded] : encoded_) ids.push_back(id);
  return ids;
}

Result<std::vector<SchemaSummary>> RepositoryView::ListAll() const {
  std::vector<SchemaSummary> out;
  out.reserve(encoded_.size());
  Status st = ForEach([&out](const Schema& schema) {
    SchemaSummary s;
    s.id = schema.id();
    s.name = schema.name();
    s.description = schema.description();
    s.num_entities = schema.NumEntities();
    s.num_attributes = schema.NumAttributes();
    out.push_back(std::move(s));
    return Status::OK();
  });
  SCHEMR_RETURN_IF_ERROR(st);
  return out;
}

Status RepositoryView::ForEach(
    const std::function<Status(const Schema&)>& fn) const {
  for (const auto& [id, encoded] : encoded_) {
    SCHEMR_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(*encoded));
    SCHEMR_RETURN_IF_ERROR(fn(schema));
  }
  return Status::OK();
}

// --- SchemaRepository --------------------------------------------------------

SchemaRepository::SchemaRepository()
    : view_(std::make_shared<const RepositoryView>()) {}

std::string SchemaRepository::KeyFor(SchemaId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%016" PRIx64, kSchemaKeyPrefix, id);
  return buf;
}

Result<std::unique_ptr<SchemaRepository>> SchemaRepository::Open(
    std::string path, KvStoreOptions options) {
  // The repository prefers degraded service over refusing to open: a
  // damaged segment costs the schemas stored in it, not the whole corpus.
  options.salvage_corrupt_segments = true;
  SCHEMR_ASSIGN_OR_RETURN(auto store, KvStore::Open(std::move(path), options));
  if (store->repair_report().AnyDamage()) {
    SCHEMR_LOG(kWarning) << "schema repository '" << store->path()
                         << "' opened degraded; "
                         << store->repair_report().ToString();
  }
  std::unique_ptr<SchemaRepository> repo(new SchemaRepository());
  repo->store_ = std::move(store);
  // Restore the id counter.
  auto next = repo->store_->Get(kNextIdKey);
  if (next.ok()) {
    uint64_t value = 0;
    for (char c : *next) {
      if (c < '0' || c > '9') {
        return Status::Corruption("bad next_id record");
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    repo->next_id_ = value;
  } else if (!next.status().IsNotFound()) {
    return next.status();
  }
  // Materialize the first published view from the replayed store, so
  // every read after Open is already snapshot-isolated.
  std::map<SchemaId, std::shared_ptr<const std::string>> initial;
  for (const auto& key : repo->store_->Keys()) {
    if (key.rfind(kSchemaKeyPrefix, 0) != 0) continue;
    SchemaId id = std::strtoull(key.c_str() + 2, nullptr, 16);
    SCHEMR_ASSIGN_OR_RETURN(std::string encoded, repo->store_->Get(key));
    initial[id] = std::make_shared<const std::string>(std::move(encoded));
  }
  std::lock_guard<std::mutex> lock(repo->mutex_);
  repo->PublishLocked([&initial](auto* records) { *records = std::move(initial); });
  return repo;
}

std::unique_ptr<SchemaRepository> SchemaRepository::OpenInMemory() {
  return std::unique_ptr<SchemaRepository>(new SchemaRepository());
}

std::shared_ptr<const RepositoryView> SchemaRepository::View() const {
  return view_.load();
}

void SchemaRepository::PublishLocked(
    const std::function<void(
        std::map<SchemaId, std::shared_ptr<const std::string>>*)>& mutate) {
  // Copy-on-write: the map is copied (shared payloads), the delta applied
  // to the copy, and the new view swapped in. Readers holding the old
  // view are untouched.
  auto next = std::make_shared<RepositoryView>();
  std::shared_ptr<const RepositoryView> current = view_.load();
  next->encoded_ = current->encoded_;
  next->version_ = current->version_ + 1;
  mutate(&next->encoded_);
  FaultInjector::Global().Perturb("repo/view/publish");
  view_.store(std::move(next));
}

Status SchemaRepository::PutLocked(SchemaId id, std::string encoded) {
  if (store_ != nullptr) {
    // Durable commit first: a view is published only once the store holds
    // the record, so a crash between the two replays to the published
    // state or earlier, never ahead of it.
    SCHEMR_RETURN_IF_ERROR(store_->Put(KeyFor(id), encoded));
    SCHEMR_RETURN_IF_ERROR(store_->Put(kNextIdKey, std::to_string(next_id_)));
  }
  auto record = std::make_shared<const std::string>(std::move(encoded));
  PublishLocked([id, &record](auto* records) { (*records)[id] = record; });
  return Status::OK();
}

Result<SchemaId> SchemaRepository::Insert(Schema schema) {
  SCHEMR_RETURN_IF_ERROR(schema.Validate());
  std::lock_guard<std::mutex> lock(mutex_);
  SchemaId id = next_id_++;
  schema.set_id(id);
  SCHEMR_RETURN_IF_ERROR(PutLocked(id, EncodeSchema(schema)));
  return id;
}

Status SchemaRepository::Update(const Schema& schema) {
  if (schema.id() == kNoSchema) {
    return Status::InvalidArgument("schema has no id; use Insert");
  }
  SCHEMR_RETURN_IF_ERROR(schema.Validate());
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ContainsLocked(schema.id())) {
    return Status::NotFound("schema " + std::to_string(schema.id()));
  }
  return PutLocked(schema.id(), EncodeSchema(schema));
}

Result<Schema> SchemaRepository::Get(SchemaId id) const {
  return View()->Get(id);
}

Status SchemaRepository::Remove(SchemaId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ContainsLocked(id)) {
    return Status::NotFound("schema " + std::to_string(id));
  }
  if (store_ != nullptr) {
    SCHEMR_RETURN_IF_ERROR(store_->Delete(KeyFor(id)));
  }
  PublishLocked([id](auto* records) { records->erase(id); });
  return Status::OK();
}

bool SchemaRepository::Contains(SchemaId id) const {
  return View()->Contains(id);
}

size_t SchemaRepository::Size() const { return View()->Size(); }

std::vector<SchemaId> SchemaRepository::Ids() const { return View()->Ids(); }

Result<std::vector<SchemaSummary>> SchemaRepository::ListAll() const {
  return View()->ListAll();
}

Status SchemaRepository::ForEach(
    const std::function<Status(const Schema&)>& fn) const {
  return View()->ForEach(fn);
}

Status SchemaRepository::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_ != nullptr) return store_->Compact();
  return Status::OK();
}

std::optional<KvStoreStats> SchemaRepository::GetStoreStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_ == nullptr) return std::nullopt;
  return store_->GetStats();
}

std::optional<KvRepairReport> SchemaRepository::GetRepairReport() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_ == nullptr) return std::nullopt;
  return store_->repair_report();
}

// --- annotations -------------------------------------------------------------

Status SchemaRepository::PutAuxLocked(const std::string& key,
                                      const std::string& value) {
  if (store_ != nullptr) return store_->Put(key, value);
  aux_[key] = value;
  return Status::OK();
}

Result<std::string> SchemaRepository::GetAuxLocked(
    const std::string& key) const {
  if (store_ != nullptr) return store_->Get(key);
  auto it = aux_.find(key);
  if (it == aux_.end()) return Status::NotFound(key);
  return it->second;
}

bool SchemaRepository::ContainsLocked(SchemaId id) const {
  return View()->Contains(id);
}

Status SchemaRepository::AddComment(SchemaId id,
                                    const SchemaComment& comment) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ContainsLocked(id)) {
    return Status::NotFound("schema " + std::to_string(id));
  }
  std::vector<SchemaComment> comments;
  auto existing = GetAuxLocked(AuxKey('c', id));
  if (existing.ok()) {
    SCHEMR_ASSIGN_OR_RETURN(comments, DecodeComments(*existing));
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  comments.push_back(comment);
  return PutAuxLocked(AuxKey('c', id), EncodeComments(comments));
}

Result<std::vector<SchemaComment>> SchemaRepository::GetComments(
    SchemaId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto existing = GetAuxLocked(AuxKey('c', id));
  if (!existing.ok()) {
    if (existing.status().IsNotFound()) {
      return std::vector<SchemaComment>{};
    }
    return existing.status();
  }
  return DecodeComments(*existing);
}

Status SchemaRepository::AddRating(SchemaId id, const SchemaRating& rating) {
  if (rating.stars < 1 || rating.stars > 5) {
    return Status::InvalidArgument("stars must be 1..5");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ContainsLocked(id)) {
    return Status::NotFound("schema " + std::to_string(id));
  }
  std::vector<SchemaRating> ratings;
  auto existing = GetAuxLocked(AuxKey('r', id));
  if (existing.ok()) {
    SCHEMR_ASSIGN_OR_RETURN(ratings, DecodeRatings(*existing));
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  bool replaced = false;
  for (SchemaRating& r : ratings) {
    if (r.author == rating.author) {
      r.stars = rating.stars;
      replaced = true;
      break;
    }
  }
  if (!replaced) ratings.push_back(rating);
  return PutAuxLocked(AuxKey('r', id), EncodeRatings(ratings));
}

Result<RatingSummary> SchemaRepository::GetRatingSummary(SchemaId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RatingSummary summary;
  auto existing = GetAuxLocked(AuxKey('r', id));
  if (!existing.ok()) {
    if (existing.status().IsNotFound()) return summary;
    return existing.status();
  }
  SCHEMR_ASSIGN_OR_RETURN(std::vector<SchemaRating> ratings,
                          DecodeRatings(*existing));
  summary.num_ratings = ratings.size();
  if (!ratings.empty()) {
    double sum = 0.0;
    for (const SchemaRating& r : ratings) sum += r.stars;
    summary.average = sum / static_cast<double>(ratings.size());
  }
  return summary;
}

Status SchemaRepository::RecordUsage(SchemaId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ContainsLocked(id)) {
    return Status::NotFound("schema " + std::to_string(id));
  }
  uint64_t count = 0;
  auto existing = GetAuxLocked(AuxKey('u', id));
  if (existing.ok()) {
    for (char c : *existing) {
      if (c < '0' || c > '9') return Status::Corruption("bad usage counter");
      count = count * 10 + static_cast<uint64_t>(c - '0');
    }
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  return PutAuxLocked(AuxKey('u', id), std::to_string(count + 1));
}

Result<uint64_t> SchemaRepository::GetUsageCount(SchemaId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto existing = GetAuxLocked(AuxKey('u', id));
  if (!existing.ok()) {
    if (existing.status().IsNotFound()) return uint64_t{0};
    return existing.status();
  }
  uint64_t count = 0;
  for (char c : *existing) {
    if (c < '0' || c > '9') return Status::Corruption("bad usage counter");
    count = count * 10 + static_cast<uint64_t>(c - '0');
  }
  return count;
}

}  // namespace schemr
