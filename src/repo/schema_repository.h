// The schema repository: Schemr's replacement for Yggdrasil (Fig. 5).
//
// Stores schemas durably (binary codec over the log-structured KV store)
// or in memory (for benchmarks and short-lived fragments), assigns stable
// SchemaIds, and provides the two access patterns the architecture needs:
// bulk scan (the offline text indexer) and point lookup (the visualization
// service resolving a clicked result's schema id).
//
// Concurrency model (DESIGN.md §9): schema reads are snapshot-isolated.
// Every successful mutation republishes an immutable RepositoryView — a
// point-in-time map of encoded schema records behind a swappable
// shared_ptr (AtomicSharedPtr, util/atomic_shared_ptr.h) — and
// Get/Contains/Size/Ids/ListAll/ForEach serve from the current view
// without taking the writer mutex. Writers
// (and the annotation endpoints, whose read-modify-write cycles need it)
// serialize on the internal mutex; durable writes commit to the store
// before the new view is published, so a published view never shows a
// record the store could lose on crash. View payloads are shared between
// generations (copy-on-write of the id map, not of the encoded bytes),
// so a republish costs O(schemas · log) pointer copies.

#ifndef SCHEMR_REPO_SCHEMA_REPOSITORY_H_
#define SCHEMR_REPO_SCHEMA_REPOSITORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "repo/annotations.h"
#include "schema/schema.h"
#include "store/kv_store.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"

namespace schemr {

/// Lightweight listing row (the search-result table shows name, entities,
/// attributes, description without materializing full schemas).
struct SchemaSummary {
  SchemaId id = kNoSchema;
  std::string name;
  std::string description;
  size_t num_entities = 0;
  size_t num_attributes = 0;
};

/// An immutable point-in-time view of the repository's schema records.
/// Acquired via SchemaRepository::View() (or inside a CorpusSnapshot) and
/// valid for as long as the caller holds the shared_ptr; later mutations
/// publish new views and never touch this one. All methods are const and
/// safe to call from any number of threads.
class RepositoryView {
 public:
  /// Decodes and returns the schema; NotFound if absent in this view.
  Result<Schema> Get(SchemaId id) const;

  bool Contains(SchemaId id) const;
  size_t Size() const { return encoded_.size(); }

  /// All schema ids in this view, ascending.
  std::vector<SchemaId> Ids() const;

  /// Summaries of all schemas in this view, ascending by id.
  Result<std::vector<SchemaSummary>> ListAll() const;

  /// Calls `fn` for every schema in this view, ascending by id; stops on
  /// first error. Unlike iterating Get() against the live repository,
  /// the iteration is point-in-time consistent.
  Status ForEach(const std::function<Status(const Schema&)>& fn) const;

  /// Monotone publication counter of the owning repository.
  uint64_t version() const { return version_; }

 private:
  friend class SchemaRepository;
  uint64_t version_ = 0;
  /// Encoded records, shared (not copied) across view generations.
  std::map<SchemaId, std::shared_ptr<const std::string>> encoded_;
};

/// Durable or in-memory collection of schemas keyed by SchemaId.
class SchemaRepository {
 public:
  /// Opens a persistent repository rooted at `path`, replaying the store.
  /// The repository opts into salvage mode
  /// (KvStoreOptions::salvage_corrupt_segments): a repository with damaged
  /// older segments opens with every still-readable schema rather than
  /// refusing service, and GetRepairReport() describes what was lost.
  static Result<std::unique_ptr<SchemaRepository>> Open(
      std::string path, KvStoreOptions options = {});

  /// Creates a volatile repository (no files touched).
  static std::unique_ptr<SchemaRepository> OpenInMemory();

  /// Adds a schema, assigning and returning a fresh id (also written into
  /// the stored schema). Validates first.
  Result<SchemaId> Insert(Schema schema);

  /// Replaces the schema with `schema.id()`. NotFound if absent.
  Status Update(const Schema& schema);

  /// Fetches a schema by id.
  Result<Schema> Get(SchemaId id) const;

  /// Deletes a schema by id. NotFound if absent.
  Status Remove(SchemaId id);

  bool Contains(SchemaId id) const;
  size_t Size() const;

  /// The current immutable snapshot of the schema records (never null).
  /// Reads through one view are point-in-time consistent; re-acquire to
  /// observe later commits.
  std::shared_ptr<const RepositoryView> View() const;

  /// Publication counter: how many views have been published.
  uint64_t version() const { return View()->version(); }

  /// All schema ids, ascending.
  std::vector<SchemaId> Ids() const;

  /// Summaries of all schemas, ascending by id.
  Result<std::vector<SchemaSummary>> ListAll() const;

  /// Calls `fn` for every schema, ascending by id; stops on first error.
  Status ForEach(const std::function<Status(const Schema&)>& fn) const;

  /// Compacts the underlying store (no-op in memory mode).
  Status Compact();

  /// Storage-engine statistics (also refreshes the schemr_store_* gauges);
  /// nullopt in memory mode.
  std::optional<KvStoreStats> GetStoreStats() const;

  /// What salvage-mode recovery had to quarantine when the store was
  /// opened (all-zero report on a clean open); nullopt in memory mode.
  std::optional<KvRepairReport> GetRepairReport() const;

  // --- Collaboration annotations (paper Applications/Summary) -------------

  /// Appends a comment to the schema. NotFound if the schema is absent.
  Status AddComment(SchemaId id, const SchemaComment& comment);

  /// All comments on the schema, oldest first. Empty list if none.
  Result<std::vector<SchemaComment>> GetComments(SchemaId id) const;

  /// Records a rating (1-5 stars); a later rating by the same author
  /// replaces the earlier one. InvalidArgument for out-of-range stars.
  Status AddRating(SchemaId id, const SchemaRating& rating);

  /// Count + average of the schema's ratings.
  Result<RatingSummary> GetRatingSummary(SchemaId id) const;

  /// Bumps the schema's usage counter (a search click / reuse event).
  Status RecordUsage(SchemaId id);

  /// Lifetime usage count (0 if never used).
  Result<uint64_t> GetUsageCount(SchemaId id) const;

 private:
  SchemaRepository();

  /// Null store = in-memory mode (the published view is then the only
  /// copy of the schema records).
  std::unique_ptr<KvStore> store_;

  SchemaId next_id_ = 1;
  /// Serializes writers and the annotation read-modify-write cycles.
  /// Schema reads do not take it — they go through view_.
  mutable std::mutex mutex_;
  /// The current immutable schema view, swapped on every mutation.
  AtomicSharedPtr<const RepositoryView> view_;

  static std::string KeyFor(SchemaId id);
  /// Commits to the store (durable first), then publishes a new view
  /// containing the record.
  Status PutLocked(SchemaId id, std::string encoded);
  /// Publishes a copy of the current view with `mutate` applied.
  void PublishLocked(
      const std::function<void(
          std::map<SchemaId, std::shared_ptr<const std::string>>*)>& mutate);

  // Auxiliary (annotation) records share the key space of the store with
  // their own prefixes; the in-memory backend keeps them in aux_.
  Status PutAuxLocked(const std::string& key, const std::string& value);
  /// NotFound when the key does not exist.
  Result<std::string> GetAuxLocked(const std::string& key) const;
  bool ContainsLocked(SchemaId id) const;

  std::map<std::string, std::string> aux_;  // in-memory annotations
};

}  // namespace schemr

#endif  // SCHEMR_REPO_SCHEMA_REPOSITORY_H_
