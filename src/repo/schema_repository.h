// The schema repository: Schemr's replacement for Yggdrasil (Fig. 5).
//
// Stores schemas durably (binary codec over the log-structured KV store)
// or in memory (for benchmarks and short-lived fragments), assigns stable
// SchemaIds, and provides the two access patterns the architecture needs:
// bulk scan (the offline text indexer) and point lookup (the visualization
// service resolving a clicked result's schema id).
//
// Thread-safe: all operations take an internal mutex.

#ifndef SCHEMR_REPO_SCHEMA_REPOSITORY_H_
#define SCHEMR_REPO_SCHEMA_REPOSITORY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "repo/annotations.h"
#include "schema/schema.h"
#include "store/kv_store.h"
#include "util/status.h"

namespace schemr {

/// Lightweight listing row (the search-result table shows name, entities,
/// attributes, description without materializing full schemas).
struct SchemaSummary {
  SchemaId id = kNoSchema;
  std::string name;
  std::string description;
  size_t num_entities = 0;
  size_t num_attributes = 0;
};

/// Durable or in-memory collection of schemas keyed by SchemaId.
class SchemaRepository {
 public:
  /// Opens a persistent repository rooted at `path`, replaying the store.
  /// The repository opts into salvage mode
  /// (KvStoreOptions::salvage_corrupt_segments): a repository with damaged
  /// older segments opens with every still-readable schema rather than
  /// refusing service, and GetRepairReport() describes what was lost.
  static Result<std::unique_ptr<SchemaRepository>> Open(
      std::string path, KvStoreOptions options = {});

  /// Creates a volatile repository (no files touched).
  static std::unique_ptr<SchemaRepository> OpenInMemory();

  /// Adds a schema, assigning and returning a fresh id (also written into
  /// the stored schema). Validates first.
  Result<SchemaId> Insert(Schema schema);

  /// Replaces the schema with `schema.id()`. NotFound if absent.
  Status Update(const Schema& schema);

  /// Fetches a schema by id.
  Result<Schema> Get(SchemaId id) const;

  /// Deletes a schema by id. NotFound if absent.
  Status Remove(SchemaId id);

  bool Contains(SchemaId id) const;
  size_t Size() const;

  /// All schema ids, ascending.
  std::vector<SchemaId> Ids() const;

  /// Summaries of all schemas, ascending by id.
  Result<std::vector<SchemaSummary>> ListAll() const;

  /// Calls `fn` for every schema, ascending by id; stops on first error.
  Status ForEach(const std::function<Status(const Schema&)>& fn) const;

  /// Compacts the underlying store (no-op in memory mode).
  Status Compact();

  /// Storage-engine statistics (also refreshes the schemr_store_* gauges);
  /// nullopt in memory mode.
  std::optional<KvStoreStats> GetStoreStats() const;

  /// What salvage-mode recovery had to quarantine when the store was
  /// opened (all-zero report on a clean open); nullopt in memory mode.
  std::optional<KvRepairReport> GetRepairReport() const;

  // --- Collaboration annotations (paper Applications/Summary) -------------

  /// Appends a comment to the schema. NotFound if the schema is absent.
  Status AddComment(SchemaId id, const SchemaComment& comment);

  /// All comments on the schema, oldest first. Empty list if none.
  Result<std::vector<SchemaComment>> GetComments(SchemaId id) const;

  /// Records a rating (1-5 stars); a later rating by the same author
  /// replaces the earlier one. InvalidArgument for out-of-range stars.
  Status AddRating(SchemaId id, const SchemaRating& rating);

  /// Count + average of the schema's ratings.
  Result<RatingSummary> GetRatingSummary(SchemaId id) const;

  /// Bumps the schema's usage counter (a search click / reuse event).
  Status RecordUsage(SchemaId id);

  /// Lifetime usage count (0 if never used).
  Result<uint64_t> GetUsageCount(SchemaId id) const;

 private:
  SchemaRepository() = default;

  // One of the two backends is set.
  std::unique_ptr<KvStore> store_;                  // persistent
  std::map<SchemaId, std::string> memory_;          // in-memory encoded

  SchemaId next_id_ = 1;
  mutable std::mutex mutex_;

  static std::string KeyFor(SchemaId id);
  Status PutLocked(SchemaId id, const std::string& encoded);
  Result<std::string> GetLocked(SchemaId id) const;

  // Auxiliary (annotation) records share the key space of the store with
  // their own prefixes; the in-memory backend keeps them in aux_.
  Status PutAuxLocked(const std::string& key, const std::string& value);
  /// NotFound when the key does not exist.
  Result<std::string> GetAuxLocked(const std::string& key) const;
  bool ContainsLocked(SchemaId id) const;

  std::map<std::string, std::string> aux_;  // in-memory annotations
};

}  // namespace schemr

#endif  // SCHEMR_REPO_SCHEMA_REPOSITORY_H_
