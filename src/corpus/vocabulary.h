// Domain vocabularies behind the synthetic schema corpus.
//
// The paper's corpus is 30,000 public schemas distilled from 10M web
// tables (WebTables, VLDB'08) -- proprietary data we substitute per
// DESIGN.md §3.1. A *concept* is a coherent mini-domain model (e.g. a
// clinic's patient/case/doctor schema); the generator derives many noisy
// schema variants from each concept, so concept identity doubles as
// relevance ground truth for the quality benchmarks.
//
// Domains were chosen to mirror the paper's motivating settings (rural
// health systems, conservation monitoring) plus typical web-table fare
// (retail, education, finance, generic web content).

#ifndef SCHEMR_CORPUS_VOCABULARY_H_
#define SCHEMR_CORPUS_VOCABULARY_H_

#include <string>
#include <vector>

#include "schema/element.h"
#include "text/lexicon.h"

namespace schemr {

/// Attribute blueprint within a concept entity.
struct ConceptAttribute {
  std::string name;
  DataType type = DataType::kString;
  /// Core attributes survive attribute dropout; they define the concept.
  bool core = false;
};

/// Entity blueprint: name, attributes, FK targets (entity names within the
/// same concept).
struct ConceptEntity {
  std::string name;
  std::vector<ConceptAttribute> attributes;
  std::vector<std::string> references;
};

/// A generatable mini-domain model.
struct DomainConcept {
  std::string id;      ///< stable identifier, e.g. "health.clinic_visits"
  std::string domain;  ///< "health", "conservation", ...
  std::string description;
  std::vector<ConceptEntity> entities;
};

/// The built-in concept library (constructed once, ~30 concepts over 6
/// domains).
const std::vector<DomainConcept>& BuiltinConcepts();

/// Concepts of one domain.
std::vector<const DomainConcept*> ConceptsInDomain(const std::string& domain);

/// Finds a concept by id; nullptr if unknown.
const DomainConcept* FindConcept(const std::string& id);

/// Generic attribute names (id, status, notes, ...) mixed into generated
/// schemas as noise.
const std::vector<ConceptAttribute>& GenericAttributePool();

// Abbreviation/synonym tables live in text/lexicon.h (shared with the
// name matcher); included here for existing callers.

}  // namespace schemr

#endif  // SCHEMR_CORPUS_VOCABULARY_H_
