#include "corpus/name_variants.h"

#include "corpus/vocabulary.h"
#include "util/string_util.h"

namespace schemr {

std::vector<std::string> CanonicalWords(const std::string& snake_name) {
  return Split(snake_name, "_");
}

std::string RenderName(const std::vector<std::string>& words,
                       NameStyle style) {
  auto capitalize = [](const std::string& w) {
    std::string out = w;
    if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
      out[0] = static_cast<char>(out[0] - 'a' + 'A');
    }
    return out;
  };
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    switch (style) {
      case NameStyle::kSnake:
        if (i > 0) out += '_';
        out += words[i];
        break;
      case NameStyle::kCamel:
        out += (i == 0) ? words[i] : capitalize(words[i]);
        break;
      case NameStyle::kPascal:
        out += capitalize(words[i]);
        break;
      case NameStyle::kKebab:
        if (i > 0) out += '-';
        out += words[i];
        break;
      case NameStyle::kDotted:
        if (i > 0) out += '.';
        out += words[i];
        break;
      case NameStyle::kUpperSnake:
        if (i > 0) out += '_';
        out += ToUpperAscii(words[i]);
        break;
      case NameStyle::kSquashed:
        out += words[i];
        break;
      case NameStyle::kSpaced:
        if (i > 0) out += ' ';
        out += words[i];
        break;
    }
  }
  return out;
}

NameStyle RandomStyle(Rng* rng) {
  return static_cast<NameStyle>(rng->NextBelow(kNumNameStyles));
}

std::string MakeNameVariant(const std::string& canonical_snake, Rng* rng,
                            const VariantOptions& options) {
  std::vector<std::string> words = CanonicalWords(canonical_snake);
  std::vector<std::string> out_words;
  for (const std::string& word : words) {
    // Connective words sometimes vanish ("date_of_birth" → "date_birth").
    if ((word == "of" || word == "the" || word == "a") && words.size() > 2 &&
        rng->NextBool(options.connective_drop_prob)) {
      continue;
    }
    std::string chosen = word;
    if (rng->NextBool(options.synonym_prob)) {
      std::vector<std::string> synonyms = SynonymsOf(word);
      if (!synonyms.empty()) {
        chosen = synonyms[rng->NextBelow(synonyms.size())];
      }
    }
    if (rng->NextBool(options.abbreviation_prob)) {
      std::vector<std::string> abbrevs = AbbreviationsOf(chosen);
      if (!abbrevs.empty()) {
        chosen = abbrevs[rng->NextBelow(abbrevs.size())];
      }
    } else if (chosen.size() > 5 && rng->NextBool(options.truncation_prob)) {
      chosen = chosen.substr(0, 3 + rng->NextBelow(2));
    }
    out_words.push_back(std::move(chosen));
  }
  if (out_words.empty()) out_words = words;  // all words were connectives
  return RenderName(out_words, options.style);
}

}  // namespace schemr
