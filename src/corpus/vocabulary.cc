#include "corpus/vocabulary.h"

#include <unordered_map>

namespace schemr {

namespace {

using CA = ConceptAttribute;
constexpr DataType kStr = DataType::kString;
constexpr DataType kTxt = DataType::kText;
constexpr DataType kI32 = DataType::kInt32;
constexpr DataType kI64 = DataType::kInt64;
constexpr DataType kDbl = DataType::kDouble;
constexpr DataType kDec = DataType::kDecimal;
constexpr DataType kBool = DataType::kBool;
constexpr DataType kDate = DataType::kDate;
constexpr DataType kDT = DataType::kDateTime;

std::vector<DomainConcept> MakeConcepts() {
  std::vector<DomainConcept> concepts;

  // ----- health ----------------------------------------------------------
  concepts.push_back(DomainConcept{
      "health.clinic_visits",
      "health",
      "patients, doctors and treatment cases at a clinic",
      {
          {"patient",
           {{"patient_id", kI64, true},
            {"first_name", kStr, true},
            {"last_name", kStr, true},
            {"gender", kStr, true},
            {"date_of_birth", kDate, true},
            {"height", kDbl, true},
            {"weight", kDbl, false},
            {"blood_type", kStr, false},
            {"phone_number", kStr, false},
            {"village", kStr, false}},
           {}},
          {"doctor",
           {{"doctor_id", kI64, true},
            {"full_name", kStr, true},
            {"gender", kStr, false},
            {"specialty", kStr, true},
            {"license_number", kStr, false}},
           {}},
          {"case",
           {{"case_id", kI64, true},
            {"patient_id", kI64, true},
            {"doctor_id", kI64, true},
            {"diagnosis", kStr, true},
            {"treatment", kStr, true},
            {"visit_date", kDate, true},
            {"follow_up", kBool, false},
            {"notes", kTxt, false}},
           {"patient", "doctor"}},
      }});

  concepts.push_back(DomainConcept{
      "health.hiv_program",
      "health",
      "HIV/AIDS treatment program enrollment and regimens",
      {
          {"client",
           {{"client_id", kI64, true},
            {"enrollment_date", kDate, true},
            {"gender", kStr, true},
            {"birth_year", kI32, true},
            {"district", kStr, true},
            {"marital_status", kStr, false}},
           {}},
          {"regimen",
           {{"regimen_id", kI64, true},
            {"regimen_name", kStr, true},
            {"line", kI32, true},
            {"daily_dose", kStr, false}},
           {}},
          {"dispensation",
           {{"dispensation_id", kI64, true},
            {"client_id", kI64, true},
            {"regimen_id", kI64, true},
            {"dispense_date", kDate, true},
            {"pill_count", kI32, true},
            {"adherence_percent", kDbl, false}},
           {"client", "regimen"}},
          {"lab_result",
           {{"result_id", kI64, true},
            {"client_id", kI64, true},
            {"test_name", kStr, true},
            {"cd4_count", kI32, true},
            {"viral_load", kI64, true},
            {"sample_date", kDate, true}},
           {"client"}},
      }});

  concepts.push_back(DomainConcept{
      "health.immunization",
      "health",
      "child immunization registry",
      {
          {"child",
           {{"child_id", kI64, true},
            {"full_name", kStr, true},
            {"gender", kStr, true},
            {"birth_date", kDate, true},
            {"mother_name", kStr, false},
            {"household", kStr, false}},
           {}},
          {"vaccine",
           {{"vaccine_id", kI64, true},
            {"vaccine_name", kStr, true},
            {"doses_required", kI32, true},
            {"manufacturer", kStr, false}},
           {}},
          {"immunization",
           {{"record_id", kI64, true},
            {"child_id", kI64, true},
            {"vaccine_id", kI64, true},
            {"dose_number", kI32, true},
            {"given_date", kDate, true},
            {"batch_number", kStr, false},
            {"health_worker", kStr, false}},
           {"child", "vaccine"}},
      }});

  concepts.push_back(DomainConcept{
      "health.hospital_admissions",
      "health",
      "hospital ward admissions and discharges",
      {
          {"ward",
           {{"ward_id", kI32, true},
            {"ward_name", kStr, true},
            {"capacity", kI32, true},
            {"floor", kI32, false}},
           {}},
          {"admission",
           {{"admission_id", kI64, true},
            {"patient_name", kStr, true},
            {"ward_id", kI32, true},
            {"admission_date", kDT, true},
            {"discharge_date", kDT, true},
            {"primary_diagnosis", kStr, true},
            {"outcome", kStr, false}},
           {"ward"}},
      }});

  // ----- conservation ----------------------------------------------------
  concepts.push_back(DomainConcept{
      "conservation.species_observation",
      "conservation",
      "field observations of species at monitoring sites",
      {
          {"site",
           {{"site_id", kI64, true},
            {"site_name", kStr, true},
            {"latitude", kDbl, true},
            {"longitude", kDbl, true},
            {"habitat_type", kStr, true},
            {"elevation", kDbl, false},
            {"protected", kBool, false}},
           {}},
          {"species",
           {{"species_id", kI64, true},
            {"scientific_name", kStr, true},
            {"common_name", kStr, true},
            {"taxon_family", kStr, false},
            {"conservation_status", kStr, true}},
           {}},
          {"observation",
           {{"observation_id", kI64, true},
            {"site_id", kI64, true},
            {"species_id", kI64, true},
            {"observed_at", kDT, true},
            {"count", kI32, true},
            {"observer_name", kStr, false},
            {"method", kStr, false},
            {"weather", kStr, false}},
           {"site", "species"}},
      }});

  concepts.push_back(DomainConcept{
      "conservation.water_quality",
      "conservation",
      "water quality sampling of rivers and lakes",
      {
          {"station",
           {{"station_id", kI64, true},
            {"station_name", kStr, true},
            {"water_body", kStr, true},
            {"latitude", kDbl, true},
            {"longitude", kDbl, true}},
           {}},
          {"sample",
           {{"sample_id", kI64, true},
            {"station_id", kI64, true},
            {"sample_date", kDate, true},
            {"temperature", kDbl, true},
            {"ph", kDbl, true},
            {"dissolved_oxygen", kDbl, true},
            {"turbidity", kDbl, false},
            {"nitrate", kDbl, false},
            {"phosphate", kDbl, false}},
           {"station"}},
      }});

  concepts.push_back(DomainConcept{
      "conservation.forest_plots",
      "conservation",
      "forest inventory plots and tree measurements",
      {
          {"plot",
           {{"plot_id", kI64, true},
            {"plot_code", kStr, true},
            {"area_hectares", kDbl, true},
            {"forest_type", kStr, true},
            {"established", kDate, false}},
           {}},
          {"tree",
           {{"tree_id", kI64, true},
            {"plot_id", kI64, true},
            {"species_name", kStr, true},
            {"diameter_cm", kDbl, true},
            {"height_m", kDbl, true},
            {"health_status", kStr, false},
            {"tag_number", kStr, false}},
           {"plot"}},
      }});

  concepts.push_back(DomainConcept{
      "conservation.ranger_patrols",
      "conservation",
      "ranger patrol logs and incident reports",
      {
          {"ranger",
           {{"ranger_id", kI64, true},
            {"ranger_name", kStr, true},
            {"station", kStr, true}},
           {}},
          {"patrol",
           {{"patrol_id", kI64, true},
            {"ranger_id", kI64, true},
            {"patrol_date", kDate, true},
            {"distance_km", kDbl, true},
            {"sector", kStr, true}},
           {"ranger"}},
          {"incident",
           {{"incident_id", kI64, true},
            {"patrol_id", kI64, true},
            {"incident_type", kStr, true},
            {"severity", kI32, true},
            {"description", kTxt, false},
            {"latitude", kDbl, false},
            {"longitude", kDbl, false}},
           {"patrol"}},
      }});

  // ----- retail -----------------------------------------------------------
  concepts.push_back(DomainConcept{
      "retail.orders",
      "retail",
      "customers, products and orders of a web shop",
      {
          {"customer",
           {{"customer_id", kI64, true},
            {"first_name", kStr, true},
            {"last_name", kStr, true},
            {"email", kStr, true},
            {"phone", kStr, false},
            {"shipping_address", kStr, true},
            {"city", kStr, false},
            {"postal_code", kStr, false}},
           {}},
          {"product",
           {{"product_id", kI64, true},
            {"product_name", kStr, true},
            {"category", kStr, true},
            {"unit_price", kDec, true},
            {"stock_quantity", kI32, true},
            {"sku", kStr, false}},
           {}},
          {"order",
           {{"order_id", kI64, true},
            {"customer_id", kI64, true},
            {"order_date", kDT, true},
            {"status", kStr, true},
            {"total_amount", kDec, true}},
           {"customer"}},
          {"order_item",
           {{"item_id", kI64, true},
            {"order_id", kI64, true},
            {"product_id", kI64, true},
            {"quantity", kI32, true},
            {"unit_price", kDec, true},
            {"discount", kDec, false}},
           {"order", "product"}},
      }});

  concepts.push_back(DomainConcept{
      "retail.inventory",
      "retail",
      "warehouse inventory and stock movements",
      {
          {"warehouse",
           {{"warehouse_id", kI32, true},
            {"warehouse_name", kStr, true},
            {"location", kStr, true},
            {"capacity", kI32, false}},
           {}},
          {"stock_item",
           {{"stock_id", kI64, true},
            {"warehouse_id", kI32, true},
            {"item_name", kStr, true},
            {"quantity_on_hand", kI32, true},
            {"reorder_level", kI32, true},
            {"last_counted", kDate, false}},
           {"warehouse"}},
          {"movement",
           {{"movement_id", kI64, true},
            {"stock_id", kI64, true},
            {"movement_type", kStr, true},
            {"quantity", kI32, true},
            {"moved_at", kDT, true},
            {"reference", kStr, false}},
           {"stock_item"}},
      }});

  concepts.push_back(DomainConcept{
      "retail.suppliers",
      "retail",
      "suppliers and purchase orders",
      {
          {"supplier",
           {{"supplier_id", kI64, true},
            {"supplier_name", kStr, true},
            {"contact_name", kStr, false},
            {"email", kStr, true},
            {"country", kStr, true},
            {"rating", kI32, false}},
           {}},
          {"purchase_order",
           {{"po_id", kI64, true},
            {"supplier_id", kI64, true},
            {"issued_date", kDate, true},
            {"expected_delivery", kDate, true},
            {"total_cost", kDec, true},
            {"currency", kStr, false},
            {"approved", kBool, false}},
           {"supplier"}},
      }});

  // ----- education --------------------------------------------------------
  concepts.push_back(DomainConcept{
      "education.enrollment",
      "education",
      "students, courses and enrollment records",
      {
          {"student",
           {{"student_id", kI64, true},
            {"first_name", kStr, true},
            {"last_name", kStr, true},
            {"gender", kStr, false},
            {"birth_date", kDate, true},
            {"grade_level", kI32, true},
            {"guardian_name", kStr, false}},
           {}},
          {"course",
           {{"course_id", kI64, true},
            {"course_name", kStr, true},
            {"subject", kStr, true},
            {"credits", kI32, true},
            {"teacher_name", kStr, false}},
           {}},
          {"enrollment",
           {{"enrollment_id", kI64, true},
            {"student_id", kI64, true},
            {"course_id", kI64, true},
            {"term", kStr, true},
            {"final_grade", kStr, true},
            {"attendance_percent", kDbl, false}},
           {"student", "course"}},
      }});

  concepts.push_back(DomainConcept{
      "education.exams",
      "education",
      "exam sessions and per-student scores",
      {
          {"exam",
           {{"exam_id", kI64, true},
            {"exam_name", kStr, true},
            {"subject", kStr, true},
            {"exam_date", kDate, true},
            {"max_score", kI32, true}},
           {}},
          {"score",
           {{"score_id", kI64, true},
            {"exam_id", kI64, true},
            {"student_name", kStr, true},
            {"points", kDbl, true},
            {"percentile", kDbl, false},
            {"passed", kBool, true}},
           {"exam"}},
      }});

  concepts.push_back(DomainConcept{
      "education.library",
      "education",
      "school library catalog and loans",
      {
          {"book",
           {{"book_id", kI64, true},
            {"title", kStr, true},
            {"author", kStr, true},
            {"isbn", kStr, true},
            {"publisher", kStr, false},
            {"publication_year", kI32, false},
            {"copies", kI32, true}},
           {}},
          {"loan",
           {{"loan_id", kI64, true},
            {"book_id", kI64, true},
            {"borrower_name", kStr, true},
            {"loan_date", kDate, true},
            {"due_date", kDate, true},
            {"returned", kBool, true}},
           {"book"}},
      }});

  // ----- finance ----------------------------------------------------------
  concepts.push_back(DomainConcept{
      "finance.accounts",
      "finance",
      "bank accounts and transactions",
      {
          {"account",
           {{"account_id", kI64, true},
            {"account_number", kStr, true},
            {"holder_name", kStr, true},
            {"account_type", kStr, true},
            {"balance", kDec, true},
            {"currency", kStr, true},
            {"opened_date", kDate, false}},
           {}},
          {"transaction",
           {{"transaction_id", kI64, true},
            {"account_id", kI64, true},
            {"amount", kDec, true},
            {"transaction_type", kStr, true},
            {"posted_at", kDT, true},
            {"counterparty", kStr, false},
            {"memo", kStr, false}},
           {"account"}},
      }});

  concepts.push_back(DomainConcept{
      "finance.payroll",
      "finance",
      "employee payroll and salary payments",
      {
          {"employee",
           {{"employee_id", kI64, true},
            {"full_name", kStr, true},
            {"department", kStr, true},
            {"position", kStr, true},
            {"hire_date", kDate, true},
            {"base_salary", kDec, true}},
           {}},
          {"payment",
           {{"payment_id", kI64, true},
            {"employee_id", kI64, true},
            {"pay_period", kStr, true},
            {"gross_amount", kDec, true},
            {"tax_withheld", kDec, true},
            {"net_amount", kDec, true},
            {"paid_date", kDate, true}},
           {"employee"}},
      }});

  concepts.push_back(DomainConcept{
      "finance.budget",
      "finance",
      "organizational budget lines and expenditures",
      {
          {"budget_line",
           {{"line_id", kI64, true},
            {"line_name", kStr, true},
            {"fiscal_year", kI32, true},
            {"allocated_amount", kDec, true},
            {"department", kStr, true}},
           {}},
          {"expenditure",
           {{"expenditure_id", kI64, true},
            {"line_id", kI64, true},
            {"amount", kDec, true},
            {"spent_date", kDate, true},
            {"vendor", kStr, false},
            {"description", kTxt, false}},
           {"budget_line"}},
      }});

  // ----- web (generic web-table fare) --------------------------------------
  concepts.push_back(DomainConcept{
      "web.movies",
      "web",
      "movie listings with cast and ratings",
      {
          {"movie",
           {{"movie_id", kI64, true},
            {"title", kStr, true},
            {"release_year", kI32, true},
            {"genre", kStr, true},
            {"director", kStr, true},
            {"runtime_minutes", kI32, false},
            {"rating", kDbl, true}},
           {}},
          {"cast_member",
           {{"cast_id", kI64, true},
            {"movie_id", kI64, true},
            {"actor_name", kStr, true},
            {"role", kStr, true}},
           {"movie"}},
      }});

  concepts.push_back(DomainConcept{
      "web.events",
      "web",
      "public event calendar with venues",
      {
          {"venue",
           {{"venue_id", kI64, true},
            {"venue_name", kStr, true},
            {"city", kStr, true},
            {"address", kStr, true},
            {"capacity", kI32, false}},
           {}},
          {"event",
           {{"event_id", kI64, true},
            {"venue_id", kI64, true},
            {"event_name", kStr, true},
            {"category", kStr, true},
            {"start_time", kDT, true},
            {"end_time", kDT, false},
            {"ticket_price", kDec, false}},
           {"venue"}},
      }});

  concepts.push_back(DomainConcept{
      "web.recipes",
      "web",
      "recipes and their ingredients",
      {
          {"recipe",
           {{"recipe_id", kI64, true},
            {"recipe_name", kStr, true},
            {"cuisine", kStr, true},
            {"prep_minutes", kI32, true},
            {"servings", kI32, true},
            {"difficulty", kStr, false}},
           {}},
          {"ingredient",
           {{"ingredient_id", kI64, true},
            {"recipe_id", kI64, true},
            {"ingredient_name", kStr, true},
            {"quantity", kDbl, true},
            {"unit", kStr, true}},
           {"recipe"}},
      }});

  concepts.push_back(DomainConcept{
      "web.real_estate",
      "web",
      "property listings with agents",
      {
          {"agent",
           {{"agent_id", kI64, true},
            {"agent_name", kStr, true},
            {"agency", kStr, true},
            {"phone", kStr, true}},
           {}},
          {"listing",
           {{"listing_id", kI64, true},
            {"agent_id", kI64, true},
            {"address", kStr, true},
            {"city", kStr, true},
            {"price", kDec, true},
            {"bedrooms", kI32, true},
            {"bathrooms", kI32, true},
            {"square_meters", kDbl, true},
            {"listed_date", kDate, false}},
           {"agent"}},
      }});

  concepts.push_back(DomainConcept{
      "web.sports_league",
      "web",
      "sports league standings and match results",
      {
          {"team",
           {{"team_id", kI64, true},
            {"team_name", kStr, true},
            {"city", kStr, true},
            {"coach", kStr, false},
            {"founded_year", kI32, false}},
           {}},
          {"match",
           {{"match_id", kI64, true},
            {"home_team_id", kI64, true},
            {"away_team_id", kI64, true},
            {"match_date", kDate, true},
            {"home_score", kI32, true},
            {"away_score", kI32, true},
            {"attendance", kI32, false}},
           {"team"}},
      }});

  return concepts;
}

std::vector<ConceptAttribute> MakeGenericPool() {
  return {
      {"id", kI64, false},          {"name", kStr, false},
      {"code", kStr, false},        {"status", kStr, false},
      {"type", kStr, false},        {"notes", kTxt, false},
      {"description", kTxt, false}, {"created_at", kDT, false},
      {"updated_at", kDT, false},   {"created_by", kStr, false},
      {"active", kBool, false},     {"version", kI32, false},
      {"comment", kTxt, false},     {"source", kStr, false},
      {"url", kStr, false},         {"rank", kI32, false},
      {"count", kI32, false},       {"value", kDbl, false},
  };
}

}  // namespace

const std::vector<DomainConcept>& BuiltinConcepts() {
  static const std::vector<DomainConcept> concepts = MakeConcepts();
  return concepts;
}

std::vector<const DomainConcept*> ConceptsInDomain(const std::string& domain) {
  std::vector<const DomainConcept*> out;
  for (const DomainConcept& dc : BuiltinConcepts()) {
    if (dc.domain == domain) out.push_back(&dc);
  }
  return out;
}

const DomainConcept* FindConcept(const std::string& id) {
  for (const DomainConcept& dc : BuiltinConcepts()) {
    if (dc.id == id) return &dc;
  }
  return nullptr;
}

const std::vector<ConceptAttribute>& GenericAttributePool() {
  static const std::vector<ConceptAttribute> pool = MakeGenericPool();
  return pool;
}

}  // namespace schemr
