#include "corpus/schema_generator.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace schemr {

namespace {

/// Schema-name suffixes seen in the wild.
const char* kSchemaNameSuffixes[] = {"",      "db",     "data",  "records",
                                     "table", "list",   "info",  "registry",
                                     "log",   "archive"};

std::string MakeSchemaName(const DomainConcept& dc, Rng* rng,
                           NameStyle style) {
  // Base the schema name on a (possibly noisy) entity or the concept's
  // last id segment ("clinic_visits").
  std::string base;
  if (rng->NextBool(0.5) && !dc.entities.empty()) {
    base = dc.entities[rng->NextBelow(dc.entities.size())].name;
  } else {
    size_t dot = dc.id.find('.');
    base = dot == std::string::npos ? dc.id : dc.id.substr(dot + 1);
  }
  std::vector<std::string> words = CanonicalWords(base);
  const char* suffix =
      kSchemaNameSuffixes[rng->NextBelow(std::size(kSchemaNameSuffixes))];
  if (*suffix != '\0') words.emplace_back(suffix);
  return RenderName(words, style);
}

}  // namespace

GeneratedSchema GenerateSchemaFromConcept(const DomainConcept& dc,
                                          Rng* rng,
                                          const CorpusOptions& options) {
  // One style per schema: real schemas are internally consistent.
  VariantOptions noise = options.name_noise;
  noise.style = RandomStyle(rng);
  // Attribute/entity names within a schema usually share the attribute
  // style; entity names keep the same style too.

  // Choose the entity subset.
  std::vector<size_t> kept_entities;
  for (size_t i = 0; i < dc.entities.size(); ++i) kept_entities.push_back(i);
  if (kept_entities.size() > 1 && rng->NextBool(options.entity_dropout)) {
    size_t victim = rng->NextBelow(kept_entities.size());
    kept_entities.erase(kept_entities.begin() + static_cast<long>(victim));
  }

  Schema schema(MakeSchemaName(dc, rng, noise.style));
  if (rng->NextBool(0.6)) {
    schema.set_description(dc.description);
  }
  schema.set_source("synthetic://" + dc.id);

  const auto& generic_pool = GenericAttributePool();
  std::unordered_map<std::string, ElementId> entity_ids;
  // First pass: entities and attributes.
  struct PendingFk {
    ElementId attribute;
    std::string target_entity;  // canonical concept entity name
  };
  std::vector<PendingFk> pending;

  for (size_t idx : kept_entities) {
    const ConceptEntity& concept_entity = dc.entities[idx];
    ElementId entity =
        schema.AddEntity(MakeNameVariant(concept_entity.name, rng, noise));
    entity_ids[concept_entity.name] = entity;

    for (const ConceptAttribute& attr : concept_entity.attributes) {
      if (!attr.core && rng->NextBool(options.attribute_dropout)) continue;
      ElementId id = schema.AddAttribute(MakeNameVariant(attr.name, rng, noise),
                                         entity, attr.type);
      // FK attributes: canonical "<target>_id" names reference targets.
      for (const std::string& target : concept_entity.references) {
        if (StartsWith(attr.name, target) && EndsWith(attr.name, "_id")) {
          pending.push_back(PendingFk{id, target});
        }
      }
    }
    // Generic noise attributes.
    double expected = options.generic_attributes_per_entity;
    while (expected > 0.0) {
      if (rng->NextDouble() < std::min(1.0, expected)) {
        const ConceptAttribute& extra =
            generic_pool[rng->NextBelow(generic_pool.size())];
        schema.AddAttribute(MakeNameVariant(extra.name, rng, noise), entity,
                            extra.type);
      }
      expected -= 1.0;
    }
  }

  // Second pass: resolve FKs among kept entities.
  for (const PendingFk& fk : pending) {
    auto it = entity_ids.find(fk.target_entity);
    if (it != entity_ids.end()) {
      schema.AddForeignKey(fk.attribute, it->second);
    }
  }

  return GeneratedSchema{std::move(schema), dc.id};
}

std::vector<GeneratedSchema> GenerateCorpus(const CorpusOptions& options) {
  const auto& concepts = BuiltinConcepts();
  Rng rng(options.seed);
  ZipfSampler sampler(concepts.size(), options.concept_skew);
  // A fixed random permutation decouples Zipf rank from declaration order.
  std::vector<size_t> order(concepts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  std::vector<GeneratedSchema> corpus;
  corpus.reserve(options.num_schemas);
  for (size_t i = 0; i < options.num_schemas; ++i) {
    const DomainConcept& dc = concepts[order[sampler.Sample(&rng)]];
    corpus.push_back(GenerateSchemaFromConcept(dc, &rng, options));
  }
  return corpus;
}

}  // namespace schemr
