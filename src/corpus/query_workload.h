// Ground-truth query workloads for the quality experiments.
//
// The demo paper reports no quantitative evaluation; to measure the
// pipeline we generate queries whose intent is known: a query derived from
// concept C is relevant exactly to the corpus schemas generated from C.
// Keyword noise (abbreviations, synonyms, delimiters) is configurable so
// experiment E3 can contrast clean and noisy query sets.

#ifndef SCHEMR_CORPUS_QUERY_WORKLOAD_H_
#define SCHEMR_CORPUS_QUERY_WORKLOAD_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/schema_generator.h"

namespace schemr {

/// One benchmark query with provenance.
struct WorkloadQuery {
  std::string concept_id;
  /// Space-separated keyword terms.
  std::string keywords;
  /// Optional DDL schema fragment ("search by example"); empty if unused.
  std::string ddl_fragment;
};

struct QueryWorkloadOptions {
  size_t num_queries = 50;
  uint64_t seed = 99;
  /// Keyword terms drawn per query (from the concept's core attribute and
  /// entity words).
  size_t keywords_per_query = 4;
  /// Probability a query also carries a DDL fragment of one concept
  /// entity.
  double fragment_prob = 0.0;
  /// Noise applied to each keyword (style is ignored; keywords are single
  /// words).
  VariantOptions keyword_noise;
};

/// Generates queries over the built-in concepts.
std::vector<WorkloadQuery> GenerateQueryWorkload(
    const QueryWorkloadOptions& options);

/// Generates one query for a specific concept.
WorkloadQuery MakeQueryForConcept(const DomainConcept& dc, Rng* rng,
                                  const QueryWorkloadOptions& options);

/// concept id → ids of corpus schemas generated from it. `ids` must be
/// parallel to `corpus` (the repository id assigned to each schema).
std::unordered_map<std::string, std::unordered_set<SchemaId>>
BuildRelevanceMap(const std::vector<GeneratedSchema>& corpus,
                  const std::vector<SchemaId>& ids);

}  // namespace schemr

#endif  // SCHEMR_CORPUS_QUERY_WORKLOAD_H_
