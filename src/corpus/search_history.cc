#include "corpus/search_history.h"

#include "corpus/vocabulary.h"
#include "schema/schema.h"

namespace schemr {

namespace {

/// Flat list of (entity name, attribute blueprint) across all concepts.
struct AttrRef {
  const ConceptEntity* entity;
  const ConceptAttribute* attribute;
};

std::vector<AttrRef> AllAttributes() {
  std::vector<AttrRef> out;
  for (const DomainConcept& dc : BuiltinConcepts()) {
    for (const ConceptEntity& entity : dc.entities) {
      for (const ConceptAttribute& attr : entity.attributes) {
        out.push_back(AttrRef{&entity, &attr});
      }
    }
  }
  return out;
}

/// Embeds one noisy attribute variant in a one-entity schema so matchers
/// that look at parents and types have something to chew on.
Schema EmbedAttribute(const AttrRef& ref, Rng* rng,
                      const VariantOptions& base_noise) {
  VariantOptions noise = base_noise;
  noise.style = RandomStyle(rng);
  Schema schema("history");
  ElementId entity =
      schema.AddEntity(MakeNameVariant(ref.entity->name, rng, noise));
  schema.AddAttribute(MakeNameVariant(ref.attribute->name, rng, noise),
                      entity, ref.attribute->type);
  return schema;
}

}  // namespace

std::vector<TrainingRecord> SimulateSearchHistory(
    const MatcherEnsemble& ensemble, const SearchHistoryOptions& options) {
  Rng rng(options.seed);
  std::vector<AttrRef> attributes = AllAttributes();
  std::vector<TrainingRecord> records;
  records.reserve(options.num_records);

  for (size_t i = 0; i < options.num_records; ++i) {
    bool positive = rng.NextBool(options.positive_fraction);
    size_t a = rng.NextBelow(attributes.size());
    size_t b = a;
    if (!positive) {
      while (b == a) b = rng.NextBelow(attributes.size());
    }
    Schema query = EmbedAttribute(attributes[a], &rng, options.name_noise);
    Schema candidate = EmbedAttribute(attributes[b], &rng, options.name_noise);

    EnsembleResult result = ensemble.Match(query, candidate);
    // The attribute is element 1 in both schemas (entity is 0).
    TrainingRecord record;
    record.features.reserve(result.per_matcher.size());
    for (const SimilarityMatrix& matrix : result.per_matcher) {
      record.features.push_back(matrix.at(1, 1));
    }
    record.relevant = positive;
    if (rng.NextBool(options.label_noise)) record.relevant = !record.relevant;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace schemr
