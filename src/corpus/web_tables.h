// Web-table corpus preparation (paper Sec. Applications).
//
// "These schemas came from a collection of 10 million HTML tables, and
// were filtered by removing schemas containing non-alphabetical
// characters, schemas that only appeared once on the web, and trivial
// schemas with three or less elements."
//
// GenerateRawWebTables produces a synthetic raw crawl with the failure
// modes that filter exists for: junk headers with symbols/digits, tiny
// tables, and a popularity distribution where most distinct schemas occur
// once; FilterWebTables applies exactly the paper's three rules and
// reports per-rule drop counts.

#ifndef SCHEMR_CORPUS_WEB_TABLES_H_
#define SCHEMR_CORPUS_WEB_TABLES_H_

#include <string>
#include <vector>

#include "schema/schema.h"
#include "util/rng.h"

namespace schemr {

/// One raw table scraped from a page: a caption and column headers.
struct RawWebTable {
  std::string caption;
  std::vector<std::string> columns;
};

struct WebTableGenOptions {
  size_t num_tables = 10000;
  uint64_t seed = 7;
  /// Fraction of junk tables (symbol/numeric headers).
  double junk_fraction = 0.25;
  /// Fraction of trivial tables (≤3 columns).
  double trivial_fraction = 0.2;
  /// Zipf exponent of table-schema popularity: high skew means a few
  /// schemas repeat across many pages while the long tail appears once.
  double popularity_skew = 1.3;
  /// Number of distinct underlying table shapes drawn from the concepts.
  /// Large relative to num_tables so the popularity tail really is
  /// singletons (the paper's second filter rule exists for a reason).
  size_t distinct_shapes = 2000;
};

/// Generates a raw crawl.
std::vector<RawWebTable> GenerateRawWebTables(const WebTableGenOptions& options);

/// Per-rule accounting of one filter run.
struct WebTableFilterStats {
  size_t input = 0;
  size_t dropped_non_alphabetic = 0;
  size_t dropped_singleton = 0;
  size_t dropped_trivial = 0;
  size_t duplicates_collapsed = 0;
  size_t kept = 0;
};

/// Applies the paper's filter and converts the survivors into
/// single-entity schemas (one table = one entity whose attributes are the
/// columns). Identical column sets collapse into one schema.
std::vector<Schema> FilterWebTables(const std::vector<RawWebTable>& tables,
                                    WebTableFilterStats* stats);

/// Rule predicates, exposed for unit tests.
bool IsNonAlphabeticTable(const RawWebTable& table);
bool IsTrivialTable(const RawWebTable& table);
/// Canonical fingerprint used for duplicate/singleton detection.
std::string TableFingerprint(const RawWebTable& table);

}  // namespace schemr

#endif  // SCHEMR_CORPUS_WEB_TABLES_H_
