#include "corpus/web_tables.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "corpus/name_variants.h"
#include "corpus/vocabulary.h"
#include "util/string_util.h"

namespace schemr {

namespace {

/// A distinct "shape": caption plus column list, derived from a concept
/// entity with name noise applied once (re-used verbatim by every page
/// that shows this table).
struct TableShape {
  RawWebTable table;
};

std::vector<TableShape> MakeShapes(const WebTableGenOptions& options,
                                   Rng* rng) {
  const auto& concepts = BuiltinConcepts();
  std::vector<TableShape> shapes;
  shapes.reserve(options.distinct_shapes);
  for (size_t i = 0; i < options.distinct_shapes; ++i) {
    const DomainConcept& dc = concepts[rng->NextBelow(concepts.size())];
    const ConceptEntity& entity =
        dc.entities[rng->NextBelow(dc.entities.size())];
    VariantOptions noise;
    // Web-table headers favour spaced and squashed styles.
    noise.style = rng->NextBool(0.5) ? NameStyle::kSpaced : RandomStyle(rng);
    TableShape shape;
    shape.table.caption = MakeNameVariant(entity.name, rng, noise);
    for (const ConceptAttribute& attr : entity.attributes) {
      if (!attr.core && rng->NextBool(0.3)) continue;
      shape.table.columns.push_back(MakeNameVariant(attr.name, rng, noise));
    }
    shapes.push_back(std::move(shape));
  }
  return shapes;
}

RawWebTable MakeJunkTable(Rng* rng) {
  static const char* kJunkHeaders[] = {
      "col#1", "col#2",  "%",     "$ amount", "n/a",    "value*",
      "1",     "2",      "3",     "id?",      "-",      "page>>",
      "a+b",   "x(y)",   "total:", "<img>",   "€ price", "«name»",
  };
  RawWebTable table;
  table.caption = "table";
  size_t cols = 2 + rng->NextBelow(5);
  for (size_t i = 0; i < cols; ++i) {
    table.columns.emplace_back(
        kJunkHeaders[rng->NextBelow(std::size(kJunkHeaders))]);
  }
  return table;
}

RawWebTable MakeTrivialTable(Rng* rng) {
  static const char* kTinyHeaders[] = {"name", "value", "rank", "score",
                                       "year", "count", "total", "item"};
  RawWebTable table;
  table.caption = "list";
  size_t cols = 1 + rng->NextBelow(3);  // 1..3 columns: always trivial
  for (size_t i = 0; i < cols; ++i) {
    table.columns.emplace_back(
        kTinyHeaders[rng->NextBelow(std::size(kTinyHeaders))]);
  }
  return table;
}

}  // namespace

std::vector<RawWebTable> GenerateRawWebTables(
    const WebTableGenOptions& options) {
  Rng rng(options.seed);
  std::vector<TableShape> shapes = MakeShapes(options, &rng);
  ZipfSampler popularity(shapes.size(), options.popularity_skew);

  std::vector<RawWebTable> tables;
  tables.reserve(options.num_tables);
  for (size_t i = 0; i < options.num_tables; ++i) {
    double roll = rng.NextDouble();
    if (roll < options.junk_fraction) {
      tables.push_back(MakeJunkTable(&rng));
    } else if (roll < options.junk_fraction + options.trivial_fraction) {
      tables.push_back(MakeTrivialTable(&rng));
    } else {
      tables.push_back(shapes[popularity.Sample(&rng)].table);
    }
  }
  rng.Shuffle(&tables);
  return tables;
}

bool IsNonAlphabeticTable(const RawWebTable& table) {
  for (const std::string& column : table.columns) {
    if (!IsMostlyAlphabetic(column)) return true;
  }
  return false;
}

bool IsTrivialTable(const RawWebTable& table) {
  return table.columns.size() <= 3;
}

std::string TableFingerprint(const RawWebTable& table) {
  std::vector<std::string> normalized;
  normalized.reserve(table.columns.size());
  for (const std::string& column : table.columns) {
    normalized.push_back(ToLowerAscii(column));
  }
  std::sort(normalized.begin(), normalized.end());
  return ToLowerAscii(table.caption) + "|" + Join(normalized, "|");
}

std::vector<Schema> FilterWebTables(const std::vector<RawWebTable>& tables,
                                    WebTableFilterStats* stats) {
  WebTableFilterStats local;
  local.input = tables.size();

  // First pass: count fingerprints of structurally acceptable tables.
  std::unordered_map<std::string, size_t> fingerprint_counts;
  for (const RawWebTable& table : tables) {
    if (IsNonAlphabeticTable(table) || IsTrivialTable(table)) continue;
    ++fingerprint_counts[TableFingerprint(table)];
  }

  // Second pass: apply the three rules in the paper's order and collapse
  // duplicates (keeping the first occurrence).
  std::vector<Schema> schemas;
  std::unordered_map<std::string, bool> emitted;
  for (const RawWebTable& table : tables) {
    if (IsNonAlphabeticTable(table)) {
      ++local.dropped_non_alphabetic;
      continue;
    }
    if (IsTrivialTable(table)) {
      ++local.dropped_trivial;
      continue;
    }
    std::string fingerprint = TableFingerprint(table);
    size_t count = fingerprint_counts[fingerprint];
    if (count <= 1) {
      ++local.dropped_singleton;
      continue;
    }
    if (emitted[fingerprint]) {
      ++local.duplicates_collapsed;
      continue;
    }
    emitted[fingerprint] = true;

    Schema schema(table.caption);
    schema.set_source("webtable://synthetic");
    ElementId entity = schema.AddEntity(table.caption);
    for (const std::string& column : table.columns) {
      schema.AddAttribute(column, entity, DataType::kString);
    }
    schemas.push_back(std::move(schema));
    ++local.kept;
  }
  if (stats != nullptr) *stats = local;
  return schemas;
}

}  // namespace schemr
