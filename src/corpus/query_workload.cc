#include "corpus/query_workload.h"

#include <algorithm>

#include "parse/ddl_writer.h"
#include "util/string_util.h"

namespace schemr {

namespace {

/// Meaningful query words of a concept: attribute and entity words that
/// are not identifiers or connectives.
std::vector<std::string> ConceptQueryWords(const DomainConcept& dc) {
  std::vector<std::string> words;
  auto add = [&words](const std::string& snake) {
    for (const std::string& word : CanonicalWords(snake)) {
      if (word == "id" || word == "of" || word == "the" || word.size() < 3) {
        continue;
      }
      if (std::find(words.begin(), words.end(), word) == words.end()) {
        words.push_back(word);
      }
    }
  };
  for (const ConceptEntity& entity : dc.entities) {
    add(entity.name);
    for (const ConceptAttribute& attr : entity.attributes) {
      if (attr.core) add(attr.name);
    }
  }
  return words;
}

}  // namespace

WorkloadQuery MakeQueryForConcept(const DomainConcept& dc, Rng* rng,
                                  const QueryWorkloadOptions& options) {
  WorkloadQuery query;
  query.concept_id = dc.id;

  std::vector<std::string> words = ConceptQueryWords(dc);
  rng->Shuffle(&words);
  size_t n = std::min(options.keywords_per_query, words.size());
  std::vector<std::string> chosen(words.begin(),
                                  words.begin() + static_cast<long>(n));
  // Apply per-keyword noise (single words; force snake so no delimiter
  // surprises inside one keyword).
  VariantOptions noise = options.keyword_noise;
  noise.style = NameStyle::kSnake;
  for (std::string& word : chosen) {
    word = MakeNameVariant(word, rng, noise);
  }
  query.keywords = Join(chosen, " ");

  if (rng->NextBool(options.fragment_prob) && !dc.entities.empty()) {
    // Fragment: one entity with a subset of its core attributes -- the
    // "partially designed schema" of the paper's example scenario.
    const ConceptEntity& entity =
        dc.entities[rng->NextBelow(dc.entities.size())];
    Schema fragment("fragment");
    ElementId eid = fragment.AddEntity(entity.name);
    for (const ConceptAttribute& attr : entity.attributes) {
      if (!attr.core) continue;
      if (rng->NextBool(0.3)) continue;  // partial design
      fragment.AddAttribute(attr.name, eid, attr.type);
    }
    if (fragment.Children(eid).empty() && !entity.attributes.empty()) {
      fragment.AddAttribute(entity.attributes[0].name, eid,
                            entity.attributes[0].type);
    }
    query.ddl_fragment = WriteDdl(fragment);
  }
  return query;
}

std::vector<WorkloadQuery> GenerateQueryWorkload(
    const QueryWorkloadOptions& options) {
  const auto& concepts = BuiltinConcepts();
  Rng rng(options.seed);
  std::vector<WorkloadQuery> queries;
  queries.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    const DomainConcept& dc = concepts[i % concepts.size()];
    queries.push_back(MakeQueryForConcept(dc, &rng, options));
  }
  return queries;
}

std::unordered_map<std::string, std::unordered_set<SchemaId>>
BuildRelevanceMap(const std::vector<GeneratedSchema>& corpus,
                  const std::vector<SchemaId>& ids) {
  std::unordered_map<std::string, std::unordered_set<SchemaId>> map;
  for (size_t i = 0; i < corpus.size() && i < ids.size(); ++i) {
    map[corpus[i].concept_id].insert(ids[i]);
  }
  return map;
}

}  // namespace schemr
