// Simulated search histories for meta-learner training (DESIGN.md
// substitution #5).
//
// The paper proposes logging real user searches to label (search term,
// schema element) pairs. We synthesize the same signal from the concept
// library: a positive pair is two independent noisy variants of the same
// canonical attribute (embedded in tiny schemas so context/structure
// matchers see realistic surroundings); a negative pair crosses two
// different attributes. Feature vectors are the per-matcher scores of the
// given ensemble, with optional label noise to model misclicks.

#ifndef SCHEMR_CORPUS_SEARCH_HISTORY_H_
#define SCHEMR_CORPUS_SEARCH_HISTORY_H_

#include <vector>

#include "corpus/name_variants.h"
#include "match/ensemble.h"
#include "match/meta_learner.h"
#include "util/rng.h"

namespace schemr {

struct SearchHistoryOptions {
  size_t num_records = 400;
  uint64_t seed = 4242;
  /// Fraction of positive (relevant) pairs.
  double positive_fraction = 0.5;
  /// Probability a label is flipped (user misclicks / noisy judgments).
  double label_noise = 0.02;
  /// Name noise applied independently to both sides of each pair.
  VariantOptions name_noise;
};

/// Generates labeled training records whose features come from running
/// `ensemble`'s matchers on pairs of single-attribute schemas.
std::vector<TrainingRecord> SimulateSearchHistory(
    const MatcherEnsemble& ensemble, const SearchHistoryOptions& options);

}  // namespace schemr

#endif  // SCHEMR_CORPUS_SEARCH_HISTORY_H_
