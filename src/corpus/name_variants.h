// Name variant generation: the noise model of the synthetic corpus.
//
// Real-world schemas express the same concept many ways -- "dateOfBirth",
// "date_of_birth", "DOB", "birth_date" -- and the paper's name matcher is
// motivated precisely by "abbreviated terms, alternate grammatical forms,
// and delimiter characters". This module renders canonical snake_case
// names into styled, abbreviated, synonym-substituted variants under a
// deterministic RNG.

#ifndef SCHEMR_CORPUS_NAME_VARIANTS_H_
#define SCHEMR_CORPUS_NAME_VARIANTS_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace schemr {

/// Rendering style of a multi-word identifier.
enum class NameStyle {
  kSnake,       ///< date_of_birth
  kCamel,       ///< dateOfBirth
  kPascal,      ///< DateOfBirth
  kKebab,       ///< date-of-birth
  kDotted,      ///< date.of.birth
  kUpperSnake,  ///< DATE_OF_BIRTH
  kSquashed,    ///< dateofbirth
  kSpaced,      ///< date of birth (web-table headers)
};

inline constexpr size_t kNumNameStyles = 8;

/// Renders lowercase words in a style.
std::string RenderName(const std::vector<std::string>& words, NameStyle style);

/// Splits a canonical snake_case name into its lowercase words.
std::vector<std::string> CanonicalWords(const std::string& snake_name);

struct VariantOptions {
  /// Per-word probability of replacing it by a known abbreviation.
  double abbreviation_prob = 0.2;
  /// Per-word probability of replacing it by a synonym.
  double synonym_prob = 0.1;
  /// Per-word probability of truncating to a 3-4 character prefix (models
  /// ad-hoc abbreviations absent from the table).
  double truncation_prob = 0.05;
  /// Probability of dropping a connective word ("of", "the") from long
  /// names ("date_of_birth" → "date_birth").
  double connective_drop_prob = 0.5;
  NameStyle style = NameStyle::kSnake;
};

/// Produces one noisy variant of a canonical snake_case name.
std::string MakeNameVariant(const std::string& canonical_snake, Rng* rng,
                            const VariantOptions& options);

/// Uniformly samples a name style.
NameStyle RandomStyle(Rng* rng);

}  // namespace schemr

#endif  // SCHEMR_CORPUS_NAME_VARIANTS_H_
