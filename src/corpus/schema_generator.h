// Synthetic schema corpus generator (DESIGN.md substitution #1).
//
// Derives noisy schema variants from the built-in domain concepts:
// concept popularity is Zipf-skewed (web vocabularies are heavy-tailed),
// non-core attributes drop out, generic attributes creep in, entity
// subsets appear, and every name passes through the variantizer. The
// concept id is recorded per schema, providing relevance ground truth.

#ifndef SCHEMR_CORPUS_SCHEMA_GENERATOR_H_
#define SCHEMR_CORPUS_SCHEMA_GENERATOR_H_

#include <string>
#include <vector>

#include "corpus/name_variants.h"
#include "corpus/vocabulary.h"
#include "schema/schema.h"
#include "util/rng.h"

namespace schemr {

/// One generated schema with its provenance.
struct GeneratedSchema {
  Schema schema;
  std::string concept_id;
};

struct CorpusOptions {
  size_t num_schemas = 1000;
  uint64_t seed = 42;
  /// Zipf exponent of concept popularity (0 = uniform).
  double concept_skew = 0.6;
  /// Probability a non-core attribute is dropped.
  double attribute_dropout = 0.25;
  /// Expected number of generic noise attributes added per entity.
  double generic_attributes_per_entity = 0.8;
  /// Probability a multi-entity concept loses one of its entities (never
  /// below one remaining entity; FKs into dropped entities disappear).
  double entity_dropout = 0.2;
  /// Name noise applied to every element.
  VariantOptions name_noise;
};

/// Generates one schema variant of `concept`.
GeneratedSchema GenerateSchemaFromConcept(const DomainConcept& dc,
                                          Rng* rng,
                                          const CorpusOptions& options);

/// Generates a whole corpus over the built-in concept library.
std::vector<GeneratedSchema> GenerateCorpus(const CorpusOptions& options);

}  // namespace schemr

#endif  // SCHEMR_CORPUS_SCHEMA_GENERATOR_H_
