#include "eval/harness.h"

#include <cstdio>

#include "core/query_parser.h"
#include "eval/ir_metrics.h"

namespace schemr {

Result<CorpusFixture> CorpusFixture::Build(const CorpusOptions& options) {
  CorpusFixture fixture;
  fixture.corpus = GenerateCorpus(options);
  fixture.repository = SchemaRepository::OpenInMemory();
  fixture.ids.reserve(fixture.corpus.size());
  for (const GeneratedSchema& generated : fixture.corpus) {
    SCHEMR_ASSIGN_OR_RETURN(SchemaId id,
                            fixture.repository->Insert(generated.schema));
    fixture.ids.push_back(id);
  }
  fixture.indexer = std::make_unique<Indexer>();
  SCHEMR_RETURN_IF_ERROR(
      fixture.indexer->RebuildFromRepository(*fixture.repository).status());
  fixture.relevance = BuildRelevanceMap(fixture.corpus, fixture.ids);
  return fixture;
}

Result<QualitySummary> EvaluateEngine(const SearchEngine& engine,
                                      const CorpusFixture& fixture,
                                      const std::vector<WorkloadQuery>& workload,
                                      const SearchEngineOptions& options) {
  std::vector<double> p5, p10, r10, mrr, ap, ndcg;
  for (const WorkloadQuery& wq : workload) {
    auto rel_it = fixture.relevance.find(wq.concept_id);
    if (rel_it == fixture.relevance.end() || rel_it->second.empty()) continue;
    RelevantSet relevant(rel_it->second.begin(), rel_it->second.end());

    SCHEMR_ASSIGN_OR_RETURN(QueryGraph query,
                            ParseQuery(wq.keywords, wq.ddl_fragment));
    SCHEMR_ASSIGN_OR_RETURN(std::vector<SearchResult> results,
                            engine.Search(query, options));
    std::vector<uint64_t> ranking;
    ranking.reserve(results.size());
    for (const SearchResult& r : results) ranking.push_back(r.schema_id);

    p5.push_back(PrecisionAtK(ranking, relevant, 5));
    p10.push_back(PrecisionAtK(ranking, relevant, 10));
    r10.push_back(RecallAtK(ranking, relevant, 10));
    mrr.push_back(ReciprocalRank(ranking, relevant));
    ap.push_back(AveragePrecision(ranking, relevant));
    ndcg.push_back(NdcgAtK(ranking, relevant, 10));
  }
  QualitySummary summary;
  summary.precision_at_5 = Mean(p5);
  summary.precision_at_10 = Mean(p10);
  summary.recall_at_10 = Mean(r10);
  summary.mrr = Mean(mrr);
  summary.map = Mean(ap);
  summary.ndcg_at_10 = Mean(ndcg);
  summary.num_queries = p5.size();
  return summary;
}

std::string FormatQuality(const QualitySummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "P@5=%.3f P@10=%.3f R@10=%.3f MRR=%.3f MAP=%.3f "
                "nDCG@10=%.3f (n=%zu)",
                summary.precision_at_5, summary.precision_at_10,
                summary.recall_at_10, summary.mrr, summary.map,
                summary.ndcg_at_10, summary.num_queries);
  return buf;
}

}  // namespace schemr
