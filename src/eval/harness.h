// Shared experiment harness: builds a generated corpus into an in-memory
// repository + index, and evaluates a search engine against a ground-truth
// query workload. Used by the quality benchmarks (E3-E9) and integration
// tests so every experiment measures the same way.

#ifndef SCHEMR_EVAL_HARNESS_H_
#define SCHEMR_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/search_engine.h"
#include "corpus/query_workload.h"
#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"

namespace schemr {

/// A ready-to-search corpus: repository, index, and relevance ground
/// truth. Move-only (owns the repository).
struct CorpusFixture {
  std::unique_ptr<SchemaRepository> repository;
  std::unique_ptr<Indexer> indexer;
  std::vector<GeneratedSchema> corpus;
  std::vector<SchemaId> ids;  ///< parallel to corpus
  std::unordered_map<std::string, std::unordered_set<SchemaId>> relevance;

  const InvertedIndex& index() const { return indexer->index(); }

  /// Generates, inserts and indexes a corpus (in-memory repository).
  static Result<CorpusFixture> Build(const CorpusOptions& options);
};

/// Mean quality metrics of one engine configuration over a workload.
struct QualitySummary {
  double precision_at_5 = 0.0;
  double precision_at_10 = 0.0;
  double recall_at_10 = 0.0;
  double mrr = 0.0;
  double map = 0.0;
  double ndcg_at_10 = 0.0;
  size_t num_queries = 0;
};

/// Runs every workload query through `engine` and averages the metrics.
/// Queries whose concept has no relevant schemas in the corpus are
/// skipped.
Result<QualitySummary> EvaluateEngine(
    const SearchEngine& engine, const CorpusFixture& fixture,
    const std::vector<WorkloadQuery>& workload,
    const SearchEngineOptions& options = {});

/// One-line rendering "P@5=0.92 P@10=0.87 R@10=0.41 MRR=0.95 MAP=0.52
/// nDCG@10=0.90 (n=50)".
std::string FormatQuality(const QualitySummary& summary);

}  // namespace schemr

#endif  // SCHEMR_EVAL_HARNESS_H_
