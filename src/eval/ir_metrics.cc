#include "eval/ir_metrics.h"

#include <algorithm>
#include <cmath>

namespace schemr {

double PrecisionAtK(const std::vector<uint64_t>& ranking,
                    const RelevantSet& relevant, size_t k) {
  if (ranking.empty() || k == 0) return 0.0;
  k = std::min(k, ranking.size());
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    if (relevant.count(ranking[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const std::vector<uint64_t>& ranking,
                 const RelevantSet& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  k = std::min(k, ranking.size());
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    if (relevant.count(ranking[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double ReciprocalRank(const std::vector<uint64_t>& ranking,
                      const RelevantSet& relevant) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (relevant.count(ranking[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double AveragePrecision(const std::vector<uint64_t>& ranking,
                        const RelevantSet& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (relevant.count(ranking[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double NdcgAtK(const std::vector<uint64_t>& ranking,
               const RelevantSet& relevant, size_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  k = std::min(k, ranking.size());
  double dcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (relevant.count(ranking[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  size_t ideal_hits = std::min(relevant.size(), k);
  double idcg = 0.0;
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg == 0.0 ? 0.0 : dcg / idcg;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace schemr
