// Standard IR quality metrics over ranked result lists.
//
// The demo paper makes only qualitative claims; these metrics quantify
// them in the benches: precision/recall at k, mean reciprocal rank,
// average precision, and nDCG with binary relevance.

#ifndef SCHEMR_EVAL_IR_METRICS_H_
#define SCHEMR_EVAL_IR_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace schemr {

/// Binary relevance set keyed by document/schema id.
using RelevantSet = std::unordered_set<uint64_t>;

/// Fraction of the first k ranked ids that are relevant. k is clamped to
/// the ranking length; returns 0 for empty rankings.
double PrecisionAtK(const std::vector<uint64_t>& ranking,
                    const RelevantSet& relevant, size_t k);

/// Fraction of relevant ids found in the first k. Returns 0 when the
/// relevant set is empty.
double RecallAtK(const std::vector<uint64_t>& ranking,
                 const RelevantSet& relevant, size_t k);

/// 1/rank of the first relevant result (0 if none appear).
double ReciprocalRank(const std::vector<uint64_t>& ranking,
                      const RelevantSet& relevant);

/// Average precision: mean of precision@i over relevant positions i,
/// normalized by |relevant| (standard AP).
double AveragePrecision(const std::vector<uint64_t>& ranking,
                        const RelevantSet& relevant);

/// Normalized discounted cumulative gain at k with binary gains.
double NdcgAtK(const std::vector<uint64_t>& ranking,
               const RelevantSet& relevant, size_t k);

/// Aggregates per-query metric values (mean); empty input yields 0.
double Mean(const std::vector<double>& values);

}  // namespace schemr

#endif  // SCHEMR_EVAL_IR_METRICS_H_
