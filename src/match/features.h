// Columnar match features: everything the name and context matchers need
// about one schema, precomputed at index time (DESIGN.md §16).
//
// The legacy matchers re-derived their inputs per candidate per query:
// NameMatcher::Match re-tokenized, re-stemmed and re-profiled every
// element name of BOTH schemas for every (query, candidate) pair, and
// ContextMatcher::Match additionally rebuilt two EntityGraphs and every
// neighborhood term set. With BENCH_base.json putting phase 2 at ~97% of
// search p50, that rework IS the latency. This module moves all of it to
// index time:
//
//   - a schema-local interned term vocabulary (name words, concatenated
//     names, context terms) with packed n-gram profiles: grams of <= 7
//     bytes pack bijectively into a uint64 (length byte + characters), so
//     profile intersection is a sorted-array merge over integers instead
//     of hash-map probes — and, because the packing is exact (no
//     collisions), the merged counts equal the legacy NgramProfile counts
//     and the Dice similarity is bit-identical;
//   - per-element NameFeatures (word ids in name order, concat id,
//     initials) mirroring NameMatcher::PreparedName;
//   - per-element neighborhood term-id lists in sorted-term order,
//     mirroring the std::set iteration order of the legacy context
//     matcher so floating-point summation order is preserved;
//   - the schema's SchemaSignature (256-bit SimHash + MinHash sketch),
//     IDF-weighted from the catalog-wide document-frequency table.
//
// A MatchFeatureCatalog is immutable and rides inside a CorpusSnapshot,
// so PR 3's copy-on-write publication and PR 5's result-cache keying
// cover it with no new machinery. Matchers verify that the catalog was
// built with their exact options and fall back to the legacy path
// otherwise — the fast path is an optimization, never a behavior change.

#ifndef SCHEMR_MATCH_FEATURES_H_
#define SCHEMR_MATCH_FEATURES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "match/context_matcher.h"
#include "match/name_matcher.h"
#include "match/signature.h"
#include "schema/schema.h"
#include "util/status.h"

namespace schemr {

/// An NgramProfile flattened into sorted arrays. Grams of at most 7 bytes
/// (every banded gram of lowercase ASCII words, and most whole words)
/// pack exactly — length byte in the top 8 bits, characters below — so
/// equality of packed keys IS equality of grams. Longer grams (whole-word
/// or concat grams past 7 chars) keep their strings in `overflow`;
/// both arrays are sorted, and intersection is a two-pointer merge.
struct PackedProfile {
  std::vector<std::pair<uint64_t, uint32_t>> packed;        // sorted by key
  std::vector<std::pair<std::string, uint32_t>> overflow;   // sorted by gram
  /// Total gram count (the multiset size |A| in Dice).
  uint64_t total = 0;
};

/// Flattens `profile`; counts carry over unchanged.
PackedProfile PackProfile(const NgramProfile& profile);

/// Dice coefficient over two packed profiles. Equals
/// DiceSimilarity(a', b') on the NgramProfiles they were packed from,
/// bit-for-bit: the packing is bijective, so intersection and sizes are
/// the same integers and the final division is the same expression.
double PackedDice(const PackedProfile& a, const PackedProfile& b);

/// One interned term of a schema's vocabulary.
struct TermFeature {
  std::string text;        ///< normalized (lowercased, stemmed) term
  PackedProfile profile;   ///< n-gram profile under the build options
};

/// Columnar mirror of NameMatcher::PreparedName, with words interned into
/// the schema vocabulary.
struct NameFeature {
  std::vector<uint32_t> words;  ///< term ids, in name order
  uint32_t concat = 0;          ///< term id of the concatenated words
  std::string initials;
};

/// The options a catalog was built under. Matchers compare these against
/// their own options before taking the fast path.
struct FeatureBuildOptions {
  NameMatcherOptions name;
  ContextMatcherOptions context;
};

bool SameOptions(const NameMatcherOptions& a, const NameMatcherOptions& b);
bool SameOptions(const ContextMatcherOptions& a, const ContextMatcherOptions& b);

/// Everything precomputed about one schema. Immutable once built.
struct SchemaFeatures {
  /// Schema-local interned vocabulary: every name word, every
  /// concatenated name, every context term, each with its packed profile.
  std::vector<TermFeature> terms;
  /// Per element id: the prepared name.
  std::vector<NameFeature> names;
  /// Per element id: neighborhood term ids, sorted by term text (the
  /// legacy std::set order, which fixes FP summation order).
  std::vector<std::vector<uint32_t>> neighborhoods;
  /// Screening signature (sealed: VerifySignature holds).
  SchemaSignature signature;
  /// Deterministic hash of the schema's matcher-visible content; keys the
  /// persisted-signature cache.
  uint64_t content_hash = 0;
  /// The options this was built under (copied per schema so a matcher can
  /// check compatibility without reaching back to the catalog).
  NameMatcherOptions name_options;
  ContextMatcherOptions context_options;
};

/// Catalog-wide document-frequency table: df(term) = schemas whose
/// vocabulary contains the term. Feeds IDF weights into SimHash bit
/// votes (rare, discriminative terms dominate the signature). Advisory
/// only — no matcher score reads it.
class DfTable {
 public:
  void AddDocument(const SchemaFeatures& features);
  void RemoveDocument(const SchemaFeatures& features);

  uint64_t documents() const { return documents_; }
  uint32_t Df(const std::string& term) const;

  /// log(1 + N / (1 + df)): always positive, larger for rarer terms.
  double Idf(const std::string& term) const;

 private:
  std::unordered_map<std::string, uint32_t> df_;
  uint64_t documents_ = 0;
};

/// Per-(query, candidate) scoring scratch owned by each scoring worker: a
/// dense lazily-filled memo of term-pair similarities, shared by the name
/// and context matchers of one ensemble invocation (they memoize the same
/// pure function of the two term strings).
struct MatchScratch {
  std::vector<double> pair_scores;  ///< row-major [query_term][cand_term]
  size_t cand_terms = 0;

  /// Marks every pair unset. Reuses capacity across candidates.
  void Reset(size_t query_terms, size_t candidate_terms);

  double* Slot(uint32_t query_term, uint32_t cand_term) {
    return &pair_scores[query_term * cand_terms + cand_term];
  }
};

/// Builds the full feature set for one schema, except the signature
/// (which wants the corpus-wide df table; see ComputeSignature). Never
/// fails: an empty schema yields empty features.
std::shared_ptr<SchemaFeatures> BuildSchemaFeatures(
    const Schema& schema, const FeatureBuildOptions& options);

/// Fills features->signature from its terms, IDF-weighted when `df` is
/// non-null, and seals the CRC.
void ComputeSignature(SchemaFeatures* features, const DfTable* df);

/// Counters from one catalog build, for `schemr stats` and metrics.
struct CatalogBuildStats {
  size_t schemas = 0;
  size_t signatures_loaded = 0;   ///< adopted from a persisted file
  size_t signatures_built = 0;    ///< computed (fresh, or rebuilt on CRC fail)
  size_t corrupt_records = 0;     ///< persisted records that failed their CRC
  double seconds = 0.0;           ///< wall time of the whole build
};

class MatchFeatureCatalog;

/// Signatures read back from a signature file. Only CRC-valid records
/// survive loading; `corpus_hash` gates adoption (a catalog built over a
/// different corpus ignores the whole file and rebuilds).
struct StoredSignatures {
  uint64_t corpus_hash = 0;
  std::unordered_map<SchemaId, SchemaSignature> signatures;
  size_t corrupt_records = 0;
};

/// Two-pass catalog builder: Add() every schema (features + df), then
/// Build() computes signatures under the final df table — so a full
/// build's signatures are independent of insertion order.
class CatalogBuilder {
 public:
  explicit CatalogBuilder(FeatureBuildOptions options = {});

  /// Pass 1: features without signature, df accumulation.
  void Add(const Schema& schema);

  /// Pass 2: signatures (adopting entries from `stored` when its
  /// corpus_hash matches this corpus), then freezes the catalog.
  std::shared_ptr<const MatchFeatureCatalog> Build(
      const StoredSignatures* stored = nullptr,
      CatalogBuildStats* stats = nullptr);

 private:
  FeatureBuildOptions options_;
  std::unordered_map<SchemaId, std::shared_ptr<SchemaFeatures>> features_;
  DfTable df_;
};

/// Immutable per-snapshot feature store: schema id → features, plus the
/// df table and build options. Shared by every search pinned to the
/// snapshot; versioned implicitly by riding inside CorpusSnapshot.
class MatchFeatureCatalog {
 public:
  MatchFeatureCatalog(
      FeatureBuildOptions options,
      std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>>
          features,
      std::shared_ptr<const DfTable> df);

  /// The features of `id`, or null when the schema is unknown (callers
  /// fall back to the legacy matcher path).
  const SchemaFeatures* Find(SchemaId id) const;

  const FeatureBuildOptions& options() const { return options_; }
  const DfTable& df() const { return *df_; }
  size_t size() const { return features_.size(); }

  /// Order-independent hash of every schema's content hash; keys the
  /// persisted-signature file to this exact corpus.
  uint64_t CorpusHash() const;

  /// The underlying map (ServingCorpus seeds its incremental working set
  /// from a full build; tests iterate it).
  const std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>>&
  features() const {
    return features_;
  }

 private:
  FeatureBuildOptions options_;
  std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>>
      features_;
  std::shared_ptr<const DfTable> df_;
};

/// Persists every signature in `catalog` to `path`:
///   "SSIG" magic, version, corpus hash, record count, then per record
///   (schema id, signature payload, record CRC). Atomic-enough for our
///   use (write then rename is overkill for an advisory cache — a torn
///   file just fails its CRCs and gets rebuilt).
Status SaveSignatures(const std::string& path,
                      const MatchFeatureCatalog& catalog);

/// Reads a signature file. Records whose CRC fails are counted in
/// `corrupt_records` and dropped — a byte flip is detected, never served.
/// IOError when the file cannot be read; ParseError on a bad header.
Result<StoredSignatures> LoadSignatures(const std::string& path);

}  // namespace schemr

#endif  // SCHEMR_MATCH_FEATURES_H_
