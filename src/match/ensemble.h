// The match engine: an ensemble of matchers with a weighting scheme.
//
// "We combine the scores from each matcher with a weighting scheme, which
// is initially uniform. As Schemr is utilized in practice, we can record
// search histories to create a training set ... we may then determine an
// appropriate weighting scheme. For instance, Madhavan et al use a
// meta-learner to compute a logistic regression over a training set of
// schemas." (paper Sec. 2)
//
// MatcherEnsemble runs every matcher, exposes the per-matcher matrices
// (feature vectors for the meta-learner) and the combined total-similarity
// matrix. Combination is a normalized weighted average by default; when a
// trained LogisticModel is installed, each cell is instead the logistic
// of the weighted feature vector (Madhavan et al's meta-learner applied
// cell-wise).

#ifndef SCHEMR_MATCH_ENSEMBLE_H_
#define SCHEMR_MATCH_ENSEMBLE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "match/matcher.h"
#include "match/meta_learner.h"

namespace schemr {

/// Synchronized graceful-degradation state for one search: which ensemble
/// members are benched (threw, hit a fault site, or blew the cumulative
/// time budget), the per-matcher wall-time totals, and the dropped-matcher
/// names. Parallel scoring workers share one instance, so a matcher that
/// fails while several workers are in flight is still benched exactly
/// once -- the bench check-and-set and the budget accounting are a single
/// critical section, never a read-then-write race.
class DegradationState {
 public:
  /// `budget_seconds` <= 0 disables the cumulative time budget.
  DegradationState(std::vector<std::string> matcher_names,
                   double budget_seconds);

  size_t num_matchers() const { return matcher_names_.size(); }

  /// Copies the current benched mask into `out` (resized to
  /// num_matchers). Workers hand the copy to Match as `skip`; working
  /// from a private copy keeps the ensemble's reads off the shared state
  /// while another worker benches.
  void SnapshotBenched(std::vector<char>* out) const;

  /// Folds one candidate's outcome in. Matchers marked in `failed` that
  /// are not yet benched (and were not in `already_skipped`, whose
  /// entries Match reports as failed without running them) are benched
  /// now; `candidate_seconds`, when non-null, is added to the cumulative
  /// per-matcher time and members over budget are benched with a
  /// "(budget)" suffix. Returns how many members this call benched.
  size_t Observe(const std::vector<char>& failed,
                 const std::vector<char>& already_skipped,
                 const std::vector<double>* candidate_seconds);

  size_t benched_count() const;

  /// Accessors for after the scoring loop (still synchronized, but by
  /// then the workers have quiesced and the values are final).
  std::vector<double> matcher_seconds() const;
  std::vector<std::string> dropped_matchers() const;

 private:
  const std::vector<std::string> matcher_names_;
  const double budget_seconds_;
  mutable std::mutex mutex_;
  std::vector<char> benched_;
  size_t benched_count_ = 0;
  std::vector<double> matcher_seconds_;
  std::vector<std::string> dropped_;
};

/// Per-matcher output for one candidate (kept for diagnostics and
/// meta-learner feature extraction).
struct EnsembleResult {
  std::vector<std::string> matcher_names;
  std::vector<SimilarityMatrix> per_matcher;
  SimilarityMatrix combined;
  /// failed[m] != 0 when matcher m threw (or its fault site fired) on this
  /// candidate; its matrix is zeroed and its weight excluded from the
  /// combination (the remaining weights renormalize automatically).
  std::vector<char> failed;
  bool any_failure = false;
};

class MatcherEnsemble {
 public:
  MatcherEnsemble() = default;

  /// Adds a matcher with the given weight (used by the weighted-average
  /// combiner; ignored when a logistic model is installed).
  void AddMatcher(std::unique_ptr<Matcher> matcher, double weight = 1.0);

  /// The paper's default ensemble: name + context matchers, uniform
  /// weights, plus low-weight type and structure tie-breakers.
  static MatcherEnsemble Default();

  /// Name + context only, exactly the two matchers the paper describes.
  static MatcherEnsemble PaperMinimal();

  /// Default ensemble plus the codebook matcher (semantic types/units; the
  /// Applications-section extension).
  static MatcherEnsemble WithCodebook();

  size_t NumMatchers() const { return matchers_.size(); }
  const std::vector<double>& weights() const { return weights_; }
  void SetWeights(std::vector<double> weights);

  /// Installs a trained logistic combiner (feature order = matcher order,
  /// so the model must have NumMatchers features).
  void SetLogisticModel(LogisticModel model);
  void ClearLogisticModel() { logistic_.reset(); }
  bool HasLogisticModel() const { return logistic_.has_value(); }

  /// Matcher names in matcher order (the feature order of the
  /// meta-learner and of Match's timing accumulator).
  std::vector<std::string> MatcherNames() const;

  /// Runs all matchers and combines. When `matcher_seconds` is non-null it
  /// must have NumMatchers entries; each matcher's wall time is *added* to
  /// its slot, so the search engine can accumulate per-matcher totals
  /// across the whole candidate pool for tracing.
  ///
  /// Matchers are isolated: one that throws is recorded in
  /// EnsembleResult::failed, contributes a zero matrix and zero weight
  /// (the rest renormalize), and never fails the search. `skip`, when
  /// non-null (NumMatchers entries), excludes already-dropped matchers —
  /// the search engine passes the matchers it has benched for earlier
  /// failures or budget overruns. Each matcher also consults the fault
  /// site "match/<name>" so tests can force failures.
  ///
  /// `context`, when non-null, carries precomputed columnar features and
  /// the per-candidate term-pair memo; matchers with a fast path use it
  /// (bit-identical scores), the rest ignore it. The scratch is reset
  /// here, once per candidate, so name and context share one memo.
  EnsembleResult Match(const Schema& query, const Schema& candidate,
                       std::vector<double>* matcher_seconds = nullptr,
                       const std::vector<char>* skip = nullptr,
                       const MatchContext* context = nullptr) const;

  /// Runs all matchers and returns only the combined matrix.
  SimilarityMatrix MatchCombined(
      const Schema& query, const Schema& candidate,
      std::vector<double>* matcher_seconds = nullptr) const;

 private:
  std::vector<std::unique_ptr<Matcher>> matchers_;
  std::vector<double> weights_;
  /// "match/<name>" per matcher, precomputed so the hot path passes a
  /// cached c_str() to the fault injector instead of allocating.
  std::vector<std::string> fault_sites_;
  std::optional<LogisticModel> logistic_;
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_ENSEMBLE_H_
