// Codebook: standardized semantic types and units for schema attributes.
//
// The paper's Applications section proposes "integrating Schemr's search
// functionality with a codebook that contains data types like units,
// date/time, and geographic location", encouraging deeper standardization
// alongside search. This module classifies attributes into semantic types
// (geographic coordinate, money, length, date, email, ...) with detected
// unit suffixes ("height_cm" → kLength/"cm"), annotates whole schemas,
// and contributes a CodebookMatcher to the ensemble: two attributes that
// both mean "a latitude" match even when their names diverge.

#ifndef SCHEMR_MATCH_CODEBOOK_H_
#define SCHEMR_MATCH_CODEBOOK_H_

#include <string>
#include <vector>

#include "match/matcher.h"
#include "schema/schema.h"

namespace schemr {

/// Standardized semantic categories of attribute values.
enum class SemanticType : uint8_t {
  kUnknown = 0,
  kIdentifier,    ///< primary/foreign key material
  kGeoLatitude,
  kGeoLongitude,
  kDate,
  kTime,
  kDateTime,
  kYear,
  kMoney,
  kPercentage,
  kLength,
  kMass,
  kTemperature,
  kCount,
  kEmail,
  kPhone,
  kUrl,
  kPersonName,
};

/// Stable lowercase name of a semantic type.
const char* SemanticTypeName(SemanticType type);

/// One classification verdict.
struct CodebookEntry {
  SemanticType semantic = SemanticType::kUnknown;
  /// Detected unit suffix ("cm", "kg", "usd", "percent"); empty if none.
  std::string unit;
  /// Heuristic confidence in [0, 1]; 0 when unknown.
  double confidence = 0.0;
};

/// A schema element together with its classification.
struct AnnotatedElement {
  ElementId element = kNoElement;
  CodebookEntry entry;
};

/// The codebook: name/type → semantic classification rules.
class Codebook {
 public:
  /// The built-in codebook (units, temporal, geographic, contact,
  /// monetary vocabulary).
  static const Codebook& Default();

  /// Classifies one attribute by its name tokens and declared data type.
  /// Entities and unclassifiable attributes return kUnknown.
  CodebookEntry Classify(const Element& element) const;

  /// Classifies every attribute of a schema; kUnknown entries are
  /// omitted.
  std::vector<AnnotatedElement> AnnotateSchema(const Schema& schema) const;

 private:
  Codebook() = default;
};

/// Ensemble matcher over codebook classifications: identical known
/// semantic types score 1 (with a small penalty for unit mismatch),
/// conflicting known types score 0, unknown pairs are neutral.
class CodebookMatcher : public Matcher {
 public:
  std::string Name() const override { return "codebook"; }

  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override;

  /// Pair score used by Match (exposed for tests).
  static double EntrySimilarity(const CodebookEntry& a,
                                const CodebookEntry& b);
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_CODEBOOK_H_
