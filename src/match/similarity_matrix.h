// Similarity matrices exchanged between matchers and the scorer.
//
// "Each matcher produces a similarity matrix between query graph elements
// and schema elements. Each (query element, schema element) pair has a
// corresponding value which describes the match quality -- a value between
// 0 and 1. For every candidate schema, the similarity matrices of the
// different matchers are combined into a single matrix containing total
// similarity scores." (paper Sec. 2)

#ifndef SCHEMR_MATCH_SIMILARITY_MATRIX_H_
#define SCHEMR_MATCH_SIMILARITY_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace schemr {

/// Dense rows×cols matrix of match qualities in [0, 1]. Rows index query
/// elements, columns index candidate-schema elements.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  SimilarityMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return values_.empty(); }

  double at(size_t row, size_t col) const {
    return values_[row * cols_ + col];
  }

  /// Stores a value, clamped into [0, 1].
  void set(size_t row, size_t col, double value) {
    if (value < 0.0) value = 0.0;
    if (value > 1.0) value = 1.0;
    values_[row * cols_ + col] = value;
  }

  /// Best match quality of candidate element `col` over all query
  /// elements -- "the maximum value of each schema element's entry in the
  /// matrix" used by tightness-of-fit.
  double ColumnMax(size_t col) const;

  /// Best match quality of query element `row` over all candidate
  /// elements.
  double RowMax(size_t row) const;

  /// Mean of all entries (diagnostics).
  double Mean() const;

  /// Weighted per-cell combination of equally shaped matrices. Weights are
  /// normalized by their sum; non-positive total weight yields zeros.
  static SimilarityMatrix WeightedCombine(
      const std::vector<const SimilarityMatrix*>& matrices,
      const std::vector<double>& weights);

  /// Debug rendering with row/column labels truncated to fit.
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_SIMILARITY_MATRIX_H_
