// Element-mapping extraction from similarity matrices.
//
// Schemr's ranking deliberately diverges from classic schema matching
// ("rather than generating mappings between elements, we use the
// similarity matrix ... to create an overall score"), but the paper's
// Applications section plans to "capture implicit semantic mappings
// between schema elements" during search-driven design. This module
// recovers that artifact: a one-to-one element correspondence extracted
// from a combined similarity matrix.

#ifndef SCHEMR_MATCH_MAPPING_H_
#define SCHEMR_MATCH_MAPPING_H_

#include <string>
#include <vector>

#include "match/similarity_matrix.h"
#include "schema/schema.h"

namespace schemr {

/// One query-element → candidate-element correspondence.
struct ElementCorrespondence {
  ElementId query_element = kNoElement;
  ElementId candidate_element = kNoElement;
  double score = 0.0;
};

struct MappingOptions {
  /// Pairs below this similarity are never mapped.
  double min_score = 0.5;
  /// Require the pair to be mutually best (stable-marriage style). When
  /// false, a greedy best-first extraction is used instead.
  bool require_mutual_best = true;
};

/// Extracts a one-to-one mapping from `similarity` (rows = query
/// elements, cols = candidate elements). With mutual-best matching, a
/// pair (q, e) is kept iff e is q's best column and q is e's best row --
/// conservative but precise. Greedy extraction sorts all cells and takes
/// the best non-conflicting pairs -- higher recall. Results are sorted by
/// descending score.
std::vector<ElementCorrespondence> ExtractMapping(
    const SimilarityMatrix& similarity, const MappingOptions& options = {});

/// Renders a mapping with element names for display/logging.
std::string FormatMapping(const std::vector<ElementCorrespondence>& mapping,
                          const Schema& query, const Schema& candidate);

}  // namespace schemr

#endif  // SCHEMR_MATCH_MAPPING_H_
