// Logistic-regression meta-learner over matcher scores.
//
// The paper (following Madhavan et al., "Corpus-based schema matching",
// ICDE 2005) proposes learning the matcher weighting scheme from recorded
// search histories: each history entry labels a (query element, schema
// element) pair as relevant or not, and the per-matcher similarity scores
// of that pair form the feature vector. We train
//   P(match | x) = sigmoid(w·x + b)
// by mini-batch gradient descent on logistic loss with L2 regularization.

#ifndef SCHEMR_MATCH_META_LEARNER_H_
#define SCHEMR_MATCH_META_LEARNER_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace schemr {

/// One labeled pair from a search history: per-matcher scores + relevance.
struct TrainingRecord {
  std::vector<double> features;
  bool relevant = false;
};

/// Trained logistic model.
struct LogisticModel {
  std::vector<double> weights;
  double bias = 0.0;

  /// P(match | features), in (0, 1).
  double Predict(const std::vector<double>& features) const;

  /// Non-negative, sum-normalized view of the weights, usable directly as
  /// ensemble weights when a simple weighted average is preferred over the
  /// logistic combiner.
  std::vector<double> NormalizedWeights() const;
};

struct MetaLearnerOptions {
  size_t epochs = 200;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  uint64_t shuffle_seed = 42;
};

/// Fits a logistic model. Requires at least one record of each label and
/// consistent feature dimensionality.
Result<LogisticModel> TrainLogisticModel(
    const std::vector<TrainingRecord>& records,
    const MetaLearnerOptions& options = {});

/// Classification accuracy of `model` on `records` at threshold 0.5.
double EvaluateAccuracy(const LogisticModel& model,
                        const std::vector<TrainingRecord>& records);

}  // namespace schemr

#endif  // SCHEMR_MATCH_META_LEARNER_H_
