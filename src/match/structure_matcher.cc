#include "match/structure_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace schemr {

SimilarityMatrix StructureMatcher::Match(const Schema& query,
                                         const Schema& candidate) const {
  SimilarityMatrix matrix(query.size(), candidate.size());
  std::vector<size_t> query_depths(query.size());
  std::vector<size_t> cand_depths(candidate.size());
  for (ElementId id = 0; id < query.size(); ++id) {
    query_depths[id] = query.Depth(id);
  }
  for (ElementId id = 0; id < candidate.size(); ++id) {
    cand_depths[id] = candidate.Depth(id);
  }

  for (size_t r = 0; r < query.size(); ++r) {
    const Element& q = query.element(static_cast<ElementId>(r));
    size_t q_fanout = query.Children(static_cast<ElementId>(r)).size();
    for (size_t c = 0; c < candidate.size(); ++c) {
      const Element& e = candidate.element(static_cast<ElementId>(c));
      if (q.kind != e.kind) {
        matrix.set(r, c, 0.0);
        continue;
      }
      long depth_diff =
          std::labs(static_cast<long>(query_depths[r]) -
                    static_cast<long>(cand_depths[c]));
      double depth_sim =
          std::pow(options_.depth_decay, static_cast<double>(depth_diff));

      double fanout_sim = 1.0;
      if (q.kind == ElementKind::kEntity) {
        size_t e_fanout = candidate.Children(static_cast<ElementId>(c)).size();
        size_t lo = std::min(q_fanout, e_fanout);
        size_t hi = std::max(q_fanout, e_fanout);
        fanout_sim = hi == 0 ? 1.0
                             : static_cast<double>(lo) /
                                   static_cast<double>(hi);
      }
      double score = (1.0 - options_.fanout_weight) * depth_sim +
                     options_.fanout_weight * fanout_sim;
      matrix.set(r, c, score);
    }
  }
  return matrix;
}

}  // namespace schemr
