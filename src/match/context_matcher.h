// Context matcher: neighborhood term-set similarity.
//
// "A context matcher builds a set of terms from neighboring elements, and
// tries to capture matches when neighboring-element sets are similar to
// each other." (paper Sec. 2, following Rahm & Bernstein's survey)
//
// The neighborhood of an element gathers terms from: the element itself,
// its parent, its children, its siblings, and -- for attributes -- the
// names of FK-linked entities of its containing entity. Two neighborhoods
// are compared with a soft Jaccard: terms align by exact equality or, when
// enabled, by n-gram similarity above a threshold (so "pat" in a query
// neighborhood still aligns with "patient").

#ifndef SCHEMR_MATCH_CONTEXT_MATCHER_H_
#define SCHEMR_MATCH_CONTEXT_MATCHER_H_

#include <string>
#include <vector>

#include "match/matcher.h"
#include "match/name_matcher.h"

namespace schemr {

struct ContextMatcherOptions {
  /// Use n-gram soft term alignment (slower, fuzzier). When false, terms
  /// align only on exact equality after normalization.
  bool soft_alignment = true;
  /// Minimum n-gram similarity for a soft alignment to count.
  double soft_threshold = 0.55;
  /// Include FK-linked entity names in an element's neighborhood.
  bool include_fk_neighbors = true;
};

/// Neighborhood term-set matcher.
class ContextMatcher : public Matcher {
 public:
  explicit ContextMatcher(ContextMatcherOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "context"; }

  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override;

  /// Columnar fast path: neighborhoods and term profiles come from the
  /// precomputed SchemaFeatures, pair similarities from the shared memo.
  /// Bit-identical to Match(): neighborhood term-id lists preserve the
  /// legacy std::set order, so the soft-Jaccard sums run over the same
  /// values in the same order. Falls back to Match() when the context is
  /// incomplete or built under different options (including a non-default
  /// name-matcher banding, which would change the term profiles).
  SimilarityMatrix MatchPrepared(const Schema& query, const Schema& candidate,
                                 const MatchContext& context) const override;

  /// The normalized term set of `id`'s neighborhood (exposed for tests).
  std::vector<std::string> NeighborhoodTerms(const Schema& schema,
                                             ElementId id) const;

 private:
  std::vector<std::string> NeighborhoodTermsWithGraph(
      const Schema& schema, const class EntityGraph& graph,
      ElementId id) const;

  double TermSetSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) const;

  /// Soft-Jaccard with a shared per-Match() profile/pair cache (opaque
  /// pointer keeps the cache type out of the header).
  double SoftTermSetSimilarity(const std::vector<std::string>& a,
                               const std::vector<std::string>& b,
                               void* cache) const;

  ContextMatcherOptions options_;
  NameMatcher name_matcher_;  // provides the soft-alignment similarity
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_CONTEXT_MATCHER_H_
