#include "match/context_matcher.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "match/features.h"
#include "schema/entity_graph.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace schemr {

namespace {

/// Adds the normalized word tokens of `name` into `terms`.
void AddTerms(const std::string& name, std::set<std::string>* terms) {
  for (const std::string& raw : TokenizeToStrings(name)) {
    terms->insert(PorterStem(ToLowerAscii(raw)));
  }
}

/// Shared per-Match() scratch: n-gram profiles for every distinct term
/// and memoized pairwise word similarities. Soft alignment compares the
/// same small vocabulary of terms over and over; without this cache the
/// context matcher is two orders of magnitude slower than the name
/// matcher.
struct SimilarityCache {
  const NameMatcher* name_matcher;
  std::unordered_map<std::string, NgramProfile> profiles;
  std::unordered_map<std::string, double> pair_scores;

  void AddTermsOf(const std::vector<std::string>& terms) {
    for (const std::string& term : terms) {
      if (!profiles.count(term)) {
        profiles.emplace(term, name_matcher->WordProfile(term));
      }
    }
  }

  double Similarity(const std::string& a, const std::string& b) {
    if (a == b) return 1.0;
    std::string key = a <= b ? a + '\x01' + b : b + '\x01' + a;
    auto it = pair_scores.find(key);
    if (it != pair_scores.end()) return it->second;
    double score = name_matcher->NormalizedWordSimilarity(
        a, profiles.at(a), b, profiles.at(b));
    pair_scores.emplace(std::move(key), score);
    return score;
  }
};

}  // namespace

std::vector<std::string> ContextMatcher::NeighborhoodTerms(
    const Schema& schema, ElementId id) const {
  EntityGraph graph(schema);
  return NeighborhoodTermsWithGraph(schema, graph, id);
}

std::vector<std::string> ContextMatcher::NeighborhoodTermsWithGraph(
    const Schema& schema, const EntityGraph& graph, ElementId id) const {
  std::set<std::string> terms;
  const Element& element = schema.element(id);
  AddTerms(element.name, &terms);

  // Parent and siblings.
  if (element.parent != kNoElement) {
    AddTerms(schema.element(element.parent).name, &terms);
    for (ElementId sibling : schema.Children(element.parent)) {
      if (sibling != id) AddTerms(schema.element(sibling).name, &terms);
    }
  }
  // Children.
  for (ElementId child : schema.Children(id)) {
    AddTerms(schema.element(child).name, &terms);
  }
  // FK-linked entities of the containing entity.
  if (options_.include_fk_neighbors) {
    ElementId entity = schema.EntityOf(id);
    if (entity != kNoElement) {
      for (ElementId neighbor : graph.Neighbors(entity)) {
        AddTerms(schema.element(neighbor).name, &terms);
      }
    }
  }
  return std::vector<std::string>(terms.begin(), terms.end());
}

double ContextMatcher::TermSetSimilarity(
    const std::vector<std::string>& a,
    const std::vector<std::string>& b) const {
  if (a.empty() || b.empty()) return 0.0;
  if (!options_.soft_alignment) {
    // Exact Jaccard on sorted unique term vectors.
    size_t i = 0, j = 0, inter = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) {
        ++inter;
        ++i;
        ++j;
      } else if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return static_cast<double>(inter) /
           static_cast<double>(a.size() + b.size() - inter);
  }
  // Soft path without a shared cache (used by tests / one-off calls).
  SimilarityCache cache{&name_matcher_, {}, {}};
  cache.AddTermsOf(a);
  cache.AddTermsOf(b);
  return SoftTermSetSimilarity(a, b, &cache);
}

double ContextMatcher::SoftTermSetSimilarity(
    const std::vector<std::string>& a, const std::vector<std::string>& b,
    void* cache_ptr) const {
  SimilarityCache& cache = *static_cast<SimilarityCache*>(cache_ptr);
  // Soft Jaccard: each term aligns with its best counterpart; alignments
  // below the threshold contribute nothing.
  auto directional = [this, &cache](const std::vector<std::string>& from,
                                    const std::vector<std::string>& to) {
    double sum = 0.0;
    for (const std::string& t : from) {
      double best = 0.0;
      for (const std::string& u : to) {
        best = std::max(best, cache.Similarity(t, u));
        if (best >= 1.0) break;
      }
      if (best >= options_.soft_threshold) sum += best;
    }
    return sum;
  };
  double inter = (directional(a, b) + directional(b, a)) / 2.0;
  double uni = static_cast<double>(a.size() + b.size()) - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

namespace {

/// Same memo contract as the name matcher's fast path: the shared
/// scratch holds one value per (query term, candidate term) pair and
/// both matchers memoize the same pure function, so whoever runs first
/// fills the cells the other reuses.
double MemoizedTermSimilarity(const NameMatcher& matcher,
                              const SchemaFeatures& qf,
                              const SchemaFeatures& cf, MatchScratch* scratch,
                              uint32_t q_term, uint32_t c_term) {
  double* slot = scratch->Slot(q_term, c_term);
  if (std::isnan(*slot)) {
    const TermFeature& a = qf.terms[q_term];
    const TermFeature& b = cf.terms[c_term];
    *slot = a.text == b.text ? 1.0 : matcher.PreparedWordSimilarity(a, b);
  }
  return *slot;
}

}  // namespace

SimilarityMatrix ContextMatcher::MatchPrepared(
    const Schema& query, const Schema& candidate,
    const MatchContext& context) const {
  const SchemaFeatures* qf = context.query_features;
  const SchemaFeatures* cf = context.candidate_features;
  // The term profiles in the catalog were built under the catalog's name
  // options; this matcher's internal NameMatcher is default-constructed,
  // so the fast path additionally requires default name banding.
  if (qf == nullptr || cf == nullptr || context.scratch == nullptr ||
      qf->neighborhoods.size() != query.size() ||
      cf->neighborhoods.size() != candidate.size() ||
      !SameOptions(qf->context_options, options_) ||
      !SameOptions(cf->context_options, options_) ||
      !SameOptions(qf->name_options, name_matcher_.options()) ||
      !SameOptions(cf->name_options, name_matcher_.options())) {
    return Match(query, candidate);
  }

  SimilarityMatrix matrix(query.size(), candidate.size());

  if (!options_.soft_alignment) {
    // Exact Jaccard over the sorted term lists, merged by term text.
    for (size_t r = 0; r < query.size(); ++r) {
      const std::vector<uint32_t>& a = qf->neighborhoods[r];
      for (size_t c = 0; c < candidate.size(); ++c) {
        const std::vector<uint32_t>& b = cf->neighborhoods[c];
        if (a.empty() || b.empty()) {
          matrix.set(r, c, 0.0);
          continue;
        }
        size_t i = 0, j = 0, inter = 0;
        while (i < a.size() && j < b.size()) {
          const int cmp = qf->terms[a[i]].text.compare(cf->terms[b[j]].text);
          if (cmp == 0) {
            ++inter;
            ++i;
            ++j;
          } else if (cmp < 0) {
            ++i;
          } else {
            ++j;
          }
        }
        matrix.set(r, c, static_cast<double>(inter) /
                             static_cast<double>(a.size() + b.size() - inter));
      }
    }
    return matrix;
  }

  // Soft Jaccard, exactly as SoftTermSetSimilarity: directional best-
  // alignment sums (thresholded), iterated in the sorted term order the
  // legacy std::set produced.
  for (size_t r = 0; r < query.size(); ++r) {
    const std::vector<uint32_t>& a = qf->neighborhoods[r];
    for (size_t c = 0; c < candidate.size(); ++c) {
      const std::vector<uint32_t>& b = cf->neighborhoods[c];
      double sum_a = 0.0;
      for (uint32_t t : a) {
        double best = 0.0;
        for (uint32_t u : b) {
          best = std::max(best, MemoizedTermSimilarity(
                                    name_matcher_, *qf, *cf, context.scratch,
                                    t, u));
          if (best >= 1.0) break;
        }
        if (best >= options_.soft_threshold) sum_a += best;
      }
      double sum_b = 0.0;
      for (uint32_t u : b) {
        double best = 0.0;
        for (uint32_t t : a) {
          best = std::max(best, MemoizedTermSimilarity(
                                    name_matcher_, *qf, *cf, context.scratch,
                                    t, u));
          if (best >= 1.0) break;
        }
        if (best >= options_.soft_threshold) sum_b += best;
      }
      const double inter = (sum_a + sum_b) / 2.0;
      const double uni = static_cast<double>(a.size() + b.size()) - inter;
      matrix.set(r, c, uni <= 0.0 ? 0.0 : inter / uni);
    }
  }
  return matrix;
}

SimilarityMatrix ContextMatcher::Match(const Schema& query,
                                       const Schema& candidate) const {
  SimilarityMatrix matrix(query.size(), candidate.size());
  std::vector<std::vector<std::string>> query_ctx(query.size());
  std::vector<std::vector<std::string>> cand_ctx(candidate.size());
  EntityGraph query_graph(query);
  EntityGraph cand_graph(candidate);
  for (ElementId id = 0; id < query.size(); ++id) {
    query_ctx[id] = NeighborhoodTermsWithGraph(query, query_graph, id);
  }
  for (ElementId id = 0; id < candidate.size(); ++id) {
    cand_ctx[id] = NeighborhoodTermsWithGraph(candidate, cand_graph, id);
  }

  if (!options_.soft_alignment) {
    for (size_t r = 0; r < query.size(); ++r) {
      for (size_t c = 0; c < candidate.size(); ++c) {
        matrix.set(r, c, TermSetSimilarity(query_ctx[r], cand_ctx[c]));
      }
    }
    return matrix;
  }

  // One shared cache across all element pairs of this schema pair:
  // neighborhoods overlap heavily, so profiles and pair scores amortize.
  SimilarityCache cache{&name_matcher_, {}, {}};
  for (const auto& terms : query_ctx) cache.AddTermsOf(terms);
  for (const auto& terms : cand_ctx) cache.AddTermsOf(terms);
  for (size_t r = 0; r < query.size(); ++r) {
    for (size_t c = 0; c < candidate.size(); ++c) {
      matrix.set(r, c,
                 SoftTermSetSimilarity(query_ctx[r], cand_ctx[c], &cache));
    }
  }
  return matrix;
}

}  // namespace schemr
