// Name matcher: normalized n-gram overlap between element names.
//
// "A name matcher normalizes terms and computes n-gram overlap between
// query terms and terms in the indexed schemas. ... We found this matcher
// to be particularly helpful for properly ranking schemas containing
// abbreviated terms, alternate grammatical forms, and delimiter characters
// not in the original query." (paper Sec. 2)
//
// Normalization lowercases and strips delimiters/case structure via the
// shared tokenizer, then the similarity of two names is the Dice
// coefficient over their character n-gram multisets. With the exhaustive
// profile (n = 1..len, the paper's formulation) a strict-prefix
// abbreviation like "pat" vs "patient" still shares a large mass of
// grams; the banded profile (default 2..4 plus the whole token) is the
// cheaper production variant. Word-level maximum alignment handles
// multi-word names.

#ifndef SCHEMR_MATCH_NAME_MATCHER_H_
#define SCHEMR_MATCH_NAME_MATCHER_H_

#include <string>
#include <vector>

#include "match/matcher.h"
#include "text/ngram.h"

namespace schemr {

struct NameMatcherOptions {
  /// Use n = 1..len(word) profiles exactly as described in the paper.
  /// Otherwise the banded profile [min_n, max_n] (+ whole word) is used.
  bool exhaustive_ngrams = false;
  size_t min_n = 2;
  size_t max_n = 4;
  /// Apply Porter stemming during normalization (conflates grammatical
  /// forms before gram extraction).
  bool stem = true;
  /// Consult the synonym lexicon: known pairs like gender↔sex (which
  /// share no character grams) score 0.85 at word level.
  bool use_synonyms = true;
};

/// Element-name similarity via character n-gram overlap.
class NameMatcher : public Matcher {
 public:
  explicit NameMatcher(NameMatcherOptions options = {}) : options_(options) {}

  std::string Name() const override { return "name"; }

  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override;

  /// Columnar fast path: scores from precomputed SchemaFeatures through
  /// the shared term-pair memo. Bit-identical to Match() — the packed
  /// Dice reproduces the NgramProfile counts exactly and the word
  /// alignment sums run in the same order. Falls back to Match() when the
  /// context is incomplete or was built under different options.
  SimilarityMatrix MatchPrepared(const Schema& query, const Schema& candidate,
                                 const MatchContext& context) const override;

  /// Similarity of two raw element names in [0, 1] (exposed for the
  /// context matcher's soft term alignment and for tests).
  double NameSimilarity(const std::string& a, const std::string& b) const;

  /// WordSimilarity on packed term features: packed Dice lifted by the
  /// same prefix/subsequence/synonym bonuses. Equals
  /// NormalizedWordSimilarity on the profiles the features were packed
  /// from. Exposed for the context matcher's shared memo.
  double PreparedWordSimilarity(const struct TermFeature& a,
                                const struct TermFeature& b) const;

  const NameMatcherOptions& options() const { return options_; }

  /// N-gram profile of one already-normalized word, honoring this
  /// matcher's banding options. Exposed so callers comparing many word
  /// pairs (the context matcher) can cache profiles.
  NgramProfile WordProfile(const std::string& word) const;

  /// Single-word similarity on precomputed profiles: n-gram Dice lifted
  /// by prefix/subsequence abbreviation bonuses. Words must already be
  /// normalized (lowercase, stemmed).
  double NormalizedWordSimilarity(const std::string& a,
                                  const NgramProfile& pa,
                                  const std::string& b,
                                  const NgramProfile& pb) const;

 private:
  /// Per-name precomputation shared by NameSimilarity and Match.
  struct PreparedName {
    std::vector<std::string> words;
    std::vector<NgramProfile> word_profiles;
    std::string concat;
    NgramProfile concat_profile;
    std::string initials;
  };

  /// Normalized word list of an element name.
  std::vector<std::string> NormalizeName(const std::string& name) const;

  NgramProfile ProfileOf(const std::string& word) const;

  PreparedName Prepare(const std::string& name) const;

  /// Single-word similarity: n-gram Dice, lifted by prefix-abbreviation
  /// ("pat" vs "patient") and subsequence-abbreviation ("qty" vs
  /// "quantity") bonuses scaled by the length ratio.
  double WordSimilarity(const std::string& a, const NgramProfile& pa,
                        const std::string& b, const NgramProfile& pb) const;

  /// The post-Dice half of WordSimilarity (prefix / subsequence / synonym
  /// lifts), shared with the packed fast path so the two can never drift.
  double LiftDice(double dice, const std::string& a,
                  const std::string& b) const;

  /// Full name-vs-name similarity on prepared forms: word alignment,
  /// concatenation rescue, acronym detection ("dob" vs "date_of_birth").
  double PairSimilarity(const PreparedName& a, const PreparedName& b) const;

  NameMatcherOptions options_;
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_NAME_MATCHER_H_
