#include "match/type_matcher.h"

namespace schemr {

namespace {

enum class TypeFamily { kNone, kIntegral, kFractional, kString, kTemporal,
                        kBool, kBinary };

TypeFamily FamilyOf(DataType t) {
  switch (t) {
    case DataType::kNone:
      return TypeFamily::kNone;
    case DataType::kInt32:
    case DataType::kInt64:
      return TypeFamily::kIntegral;
    case DataType::kFloat:
    case DataType::kDouble:
    case DataType::kDecimal:
      return TypeFamily::kFractional;
    case DataType::kString:
    case DataType::kText:
      return TypeFamily::kString;
    case DataType::kDate:
    case DataType::kTime:
    case DataType::kDateTime:
      return TypeFamily::kTemporal;
    case DataType::kBool:
      return TypeFamily::kBool;
    case DataType::kBinary:
      return TypeFamily::kBinary;
  }
  return TypeFamily::kNone;
}

/// True for the lossless widenings we recognize.
bool IsWidening(DataType a, DataType b) {
  auto widens = [](DataType narrow, DataType wide) {
    return (narrow == DataType::kInt32 && wide == DataType::kInt64) ||
           (narrow == DataType::kFloat && wide == DataType::kDouble) ||
           (narrow == DataType::kInt32 && wide == DataType::kDouble) ||
           (narrow == DataType::kInt32 && wide == DataType::kDecimal) ||
           (narrow == DataType::kInt64 && wide == DataType::kDecimal) ||
           (narrow == DataType::kString && wide == DataType::kText) ||
           (narrow == DataType::kDate && wide == DataType::kDateTime);
  };
  return widens(a, b) || widens(b, a);
}

}  // namespace

double DataTypeCompatibility(DataType a, DataType b) {
  if (a == b) return 1.0;
  if (IsWidening(a, b)) return 0.8;
  TypeFamily fa = FamilyOf(a);
  TypeFamily fb = FamilyOf(b);
  if (fa == fb) return 0.6;
  // Numeric families interconvert with rounding risk.
  if ((fa == TypeFamily::kIntegral && fb == TypeFamily::kFractional) ||
      (fa == TypeFamily::kFractional && fb == TypeFamily::kIntegral)) {
    return 0.5;
  }
  // Everything prints into a string.
  if (fa == TypeFamily::kString || fb == TypeFamily::kString) return 0.3;
  return 0.0;
}

SimilarityMatrix TypeMatcher::Match(const Schema& query,
                                    const Schema& candidate) const {
  SimilarityMatrix matrix(query.size(), candidate.size());
  for (size_t r = 0; r < query.size(); ++r) {
    const Element& q = query.element(static_cast<ElementId>(r));
    for (size_t c = 0; c < candidate.size(); ++c) {
      const Element& e = candidate.element(static_cast<ElementId>(c));
      if (q.kind != e.kind) {
        matrix.set(r, c, 0.0);
      } else if (q.kind == ElementKind::kEntity) {
        matrix.set(r, c, 1.0);  // entities have no data type to disagree on
      } else {
        matrix.set(r, c, DataTypeCompatibility(q.type, e.type));
      }
    }
  }
  return matrix;
}

}  // namespace schemr
