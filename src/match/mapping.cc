#include "match/mapping.h"

#include <algorithm>

namespace schemr {

std::vector<ElementCorrespondence> ExtractMapping(
    const SimilarityMatrix& similarity, const MappingOptions& options) {
  std::vector<ElementCorrespondence> mapping;
  const size_t rows = similarity.rows();
  const size_t cols = similarity.cols();
  if (rows == 0 || cols == 0) return mapping;

  if (options.require_mutual_best) {
    // Best column per row and best row per column (ties broken by lowest
    // index, deterministically).
    std::vector<size_t> best_col(rows, SIZE_MAX);
    std::vector<size_t> best_row(cols, SIZE_MAX);
    for (size_t r = 0; r < rows; ++r) {
      double best = -1.0;
      for (size_t c = 0; c < cols; ++c) {
        if (similarity.at(r, c) > best) {
          best = similarity.at(r, c);
          best_col[r] = c;
        }
      }
    }
    for (size_t c = 0; c < cols; ++c) {
      double best = -1.0;
      for (size_t r = 0; r < rows; ++r) {
        if (similarity.at(r, c) > best) {
          best = similarity.at(r, c);
          best_row[c] = r;
        }
      }
    }
    for (size_t r = 0; r < rows; ++r) {
      size_t c = best_col[r];
      if (c == SIZE_MAX || best_row[c] != r) continue;
      double score = similarity.at(r, c);
      if (score < options.min_score) continue;
      mapping.push_back(ElementCorrespondence{
          static_cast<ElementId>(r), static_cast<ElementId>(c), score});
    }
  } else {
    // Greedy best-first over all cells.
    struct Cell {
      size_t row, col;
      double score;
    };
    std::vector<Cell> cells;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (similarity.at(r, c) >= options.min_score) {
          cells.push_back(Cell{r, c, similarity.at(r, c)});
        }
      }
    }
    std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.row != b.row) return a.row < b.row;
      return a.col < b.col;
    });
    std::vector<bool> row_used(rows, false), col_used(cols, false);
    for (const Cell& cell : cells) {
      if (row_used[cell.row] || col_used[cell.col]) continue;
      row_used[cell.row] = true;
      col_used[cell.col] = true;
      mapping.push_back(ElementCorrespondence{
          static_cast<ElementId>(cell.row),
          static_cast<ElementId>(cell.col), cell.score});
    }
  }

  std::sort(mapping.begin(), mapping.end(),
            [](const ElementCorrespondence& a,
               const ElementCorrespondence& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.query_element < b.query_element;
            });
  return mapping;
}

std::string FormatMapping(const std::vector<ElementCorrespondence>& mapping,
                          const Schema& query, const Schema& candidate) {
  std::string out;
  char buf[32];
  for (const ElementCorrespondence& m : mapping) {
    std::snprintf(buf, sizeof(buf), " (%.3f)\n", m.score);
    out += query.Path(m.query_element);
    out += " -> ";
    out += candidate.Path(m.candidate_element);
    out += buf;
  }
  return out;
}

}  // namespace schemr
